//! Offline stand-in for the subset of `criterion` the workspace's benches
//! use. The build environment cannot reach crates.io, so the workspace
//! routes `criterion` here (see `[workspace.dependencies]`).
//!
//! It is a real (if simple) timing harness: each `Bencher::iter` does a
//! warmup pass, then times batches until it has both a minimum number of
//! iterations and a minimum measured duration, and reports mean ns/iter
//! plus derived throughput. Results print in a `name/id: ...` line format
//! that `crates/bench` parses when emitting machine-readable JSON.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_one("bench", id, n, None, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.label,
            self.sample_size,
            self.throughput,
            |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: one untimed pass so lazy init (thread spawns, pools)
        // does not land in the measurement.
        black_box(routine());

        let min_iters = self.sample_size.max(5) as u64;
        let min_time = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if iters >= min_iters && elapsed >= min_time {
                break;
            }
            // Slow benches: stop after enough samples even if under
            // min_time has not elapsed but we already spent 2s.
            if iters >= min_iters && elapsed >= Duration::from_secs(2) {
                break;
            }
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let mut line = format!("{group}/{id}: {:.1} ns/iter ({} iters)", b.mean_ns, b.iters);
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B"),
        };
        if b.mean_ns > 0.0 {
            let per_sec = n as f64 * 1e9 / b.mean_ns;
            line.push_str(&format!(", {per_sec:.0} {unit}/s"));
        }
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
