//! Std-backed stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace routes `parking_lot` to this shim (see `[workspace.dependencies]`
//! in the root manifest). Semantics match `parking_lot` where they matter
//! here: `lock()` never returns a poison error (a poisoned std mutex is
//! recovered transparently), and `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex that, like `parking_lot::Mutex`, has no poisoning in its API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard wrapping `std::sync::MutexGuard`.
///
/// The inner guard lives in an `Option` so `Condvar::wait` can take it out,
/// hand it to `std::sync::Condvar::wait`, and put the re-acquired guard back
/// — presenting parking_lot's `wait(&mut guard)` signature over std.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Condition variable with parking_lot's `wait(&mut MutexGuard)` shape.
#[derive(Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // parking_lot reports whether a thread was woken; callers here
        // ignore the value, so a constant is fine.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        t.join().unwrap();
    }
}
