//! The readers–writers database of paper §2.5.1, driven on the
//! deterministic simulator, with the safety invariants checked from the
//! event log and all four implementations (ALPS manager, monitor,
//! serializer, path expression) compared on the same workload.
//!
//! Run with: `cargo run --example readers_writers`

use std::sync::Arc;

use alps::paper::readers_writers::{
    check_rw_invariants, AlpsRw, MonitorRw, PathRw, RwConfig, RwDatabase, RwEvent, SerializerRw,
};
use alps::runtime::metrics::EventLog;
use alps::runtime::{SimRuntime, Spawn};

fn drive(which: &'static str, readers: usize, writers: usize, ops: usize) -> (u64, usize) {
    let cfg = RwConfig {
        read_max: 4,
        read_cost: 100,
        write_cost: 300,
    };
    let read_max = cfg.read_max;
    let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
    let log2 = Arc::clone(&log);
    let sim = SimRuntime::new();
    let elapsed = sim
        .run(move |rt| {
            let db: Arc<dyn RwDatabase> = match which {
                "alps" => {
                    Arc::new(AlpsRw::spawn(rt, cfg.clone(), Some(Arc::clone(&log2))).unwrap())
                }
                "monitor" => Arc::new(MonitorRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                "serializer" => Arc::new(SerializerRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                "path" => Arc::new(PathRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                _ => unreachable!(),
            };
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..readers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("reader{i}")), move || {
                    for _ in 0..ops {
                        db2.read(&rt2);
                    }
                }));
            }
            for i in 0..writers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("writer{i}")), move || {
                    for _ in 0..ops {
                        db2.write(&rt2);
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            rt.now() - t0
        })
        .expect("no deadlock");
    let events = log.snapshot();
    let peak = check_rw_invariants(&events, read_max);
    (elapsed, peak)
}

fn main() {
    println!("readers-writers, 6 readers x 20 reads + 2 writers x 20 writes");
    println!("(virtual time; smaller is better; peak = max concurrent readers)");
    println!();
    println!(
        "{:<16} {:>14} {:>6}",
        "implementation", "virtual ticks", "peak"
    );
    for which in ["alps", "monitor", "serializer", "path"] {
        let (elapsed, peak) = drive(which, 6, 2, 20);
        println!("{which:<16} {elapsed:>14} {peak:>6}");
    }
    println!();
    println!("Safety invariants (no reader/writer overlap, ReadMax bound)");
    println!("verified from the event log for every implementation.");
    println!("Note the path-expression row: basic open path expressions");
    println!("serialize readers (peak 1) — the expressiveness gap the");
    println!("ALPS manager closes.");
}
