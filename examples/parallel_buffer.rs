//! The parallel bounded buffer of paper §2.8.2 versus the serial buffer
//! of §2.4.1, as the message copy cost grows.
//!
//! The serial manager `execute`s every Deposit/Remove to completion, so
//! message copies serialize. The parallel manager hands out disjoint
//! buffer slots as hidden parameters and lets the copies overlap.
//!
//! Run with: `cargo run --example parallel_buffer`

use alps::paper::bounded_buffer::AlpsBuffer;
use alps::paper::parallel_buffer::{ParBufConfig, ParallelBuffer};
use alps::runtime::{SimRuntime, Spawn};

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const PER_PRODUCER: i64 = 8;

fn run_parallel(copy_cost: u64) -> u64 {
    let sim = SimRuntime::new();
    sim.run(move |rt| {
        let buf = ParallelBuffer::spawn(
            rt,
            ParBufConfig {
                slots: 8,
                producer_max: PRODUCERS,
                consumer_max: CONSUMERS,
                copy_cost,
            },
        )
        .unwrap();
        let t0 = rt.now();
        let mut hs = Vec::new();
        for p in 0..PRODUCERS {
            let b = buf.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("prod{p}")), move || {
                for i in 0..PER_PRODUCER {
                    b.deposit(p as i64 * 100 + i).unwrap();
                }
            }));
        }
        for c in 0..CONSUMERS {
            let b = buf.clone();
            let take = (PRODUCERS as i64 * PER_PRODUCER) / CONSUMERS as i64;
            hs.push(rt.spawn_with(Spawn::new(format!("cons{c}")), move || {
                for _ in 0..take {
                    b.remove().unwrap();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        rt.now() - t0
    })
    .unwrap()
}

fn run_serial(copy_cost: u64) -> u64 {
    // The §2.4.1 buffer executes each Deposit/Remove to completion under
    // the manager, so the message copies (inside the bodies) serialize.
    let sim = SimRuntime::new();
    sim.run(move |rt| {
        let buf = AlpsBuffer::spawn_with_copy_cost(rt, 8, copy_cost).unwrap();
        let t0 = rt.now();
        let mut hs = Vec::new();
        for p in 0..PRODUCERS {
            let (b, rt2) = (buf.clone(), rt.clone());
            hs.push(rt.spawn_with(Spawn::new(format!("prod{p}")), move || {
                for i in 0..PER_PRODUCER {
                    b.deposit(&rt2, p as i64 * 100 + i).unwrap();
                }
            }));
        }
        for c in 0..CONSUMERS {
            let (b, rt2) = (buf.clone(), rt.clone());
            let take = (PRODUCERS as i64 * PER_PRODUCER) / CONSUMERS as i64;
            hs.push(rt.spawn_with(Spawn::new(format!("cons{c}")), move || {
                for _ in 0..take {
                    b.remove(&rt2).unwrap();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        rt.now() - t0
    })
    .unwrap()
}

fn main() {
    println!(
        "parallel buffer (§2.8.2) vs serial buffer (§2.4.1): {PRODUCERS} producers, \
         {CONSUMERS} consumers, {PER_PRODUCER} msgs each"
    );
    println!();
    println!(
        "{:>10} {:>16} {:>16} {:>8}",
        "copy cost", "serial ticks", "parallel ticks", "speedup"
    );
    for copy_cost in [0u64, 50, 200, 800] {
        let serial = run_serial(copy_cost);
        let parallel = run_parallel(copy_cost);
        let speedup = serial as f64 / parallel.max(1) as f64;
        println!("{copy_cost:>10} {serial:>16} {parallel:>16} {speedup:>8.2}");
    }
    println!();
    println!("As messages get longer, overlapping the copies through hidden");
    println!("procedure arrays dominates — the paper's motivation for the");
    println!("parallel buffer design.");
}
