//! Run the paper's programs from actual ALPS source through the
//! interpreter (the `alps-lang` crate). Equivalent to:
//!
//! ```text
//! cargo run -p alps-lang --bin alps-run -- examples/alps/<name>.alps
//! ```
//!
//! Run with: `cargo run --example alps_source`

use std::sync::Arc;

use alps::lang::{check, parse, run_checked, Output};
use alps::runtime::SimRuntime;

fn main() {
    for name in [
        "bounded_buffer",
        "readers_writers",
        "dictionary",
        "spooler",
        "parallel_buffer",
    ] {
        let path = format!("examples/alps/{name}.alps");
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run from the repo root)"));
        println!("--- {path} ---");
        let checked = match parse(&src)
            .map_err(|e| e.to_string())
            .and_then(|p| check(p).map_err(|e| e.to_string()))
        {
            Ok(c) => Arc::new(c),
            Err(e) => {
                eprintln!("{path}: {e}");
                continue;
            }
        };
        let sim = SimRuntime::new();
        match sim.run(move |rt| run_checked(rt, &checked, Output::Stdout)) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => eprintln!("{path}: runtime error: {e}"),
            Err(e) => eprintln!("{path}: {e}"),
        }
        println!();
    }
    println!("All five paper programs executed on the deterministic simulator.");
}
