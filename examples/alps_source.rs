//! Run the paper's programs from actual ALPS source on the fast runtime:
//! first through the tree-walking interpreter, then through the lowering
//! compiler (`lower` → `compile`), which emits each object as a direct
//! `ObjectBuilder` product with pre-resolved entry ids and flat frames.
//!
//! Equivalent to:
//!
//! ```text
//! cargo run -p alps-lang --bin alps-run -- examples/alps/<name>.alps
//! ```
//!
//! Run with: `cargo run --example alps_source`

use std::sync::Arc;

use alps::lang::{check, parse, run_checked, run_compiled, Output};
use alps::runtime::SimRuntime;

fn main() {
    for name in [
        "bounded_buffer",
        "readers_writers",
        "dictionary",
        "spooler",
        "parallel_buffer",
    ] {
        let path = format!("examples/alps/{name}.alps");
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run from the repo root)"));
        let checked = match parse(&src)
            .map_err(|e| e.to_string())
            .and_then(|p| check(p).map_err(|e| e.to_string()))
        {
            Ok(c) => Arc::new(c),
            Err(e) => {
                eprintln!("{path}: {e}");
                continue;
            }
        };
        for (mode, compiled) in [("interpreted", false), ("compiled", true)] {
            println!("--- {path} [{mode}] ---");
            let c = Arc::clone(&checked);
            let sim = SimRuntime::new();
            let result = sim.run(move |rt| {
                if compiled {
                    run_compiled(rt, &c, Output::Stdout)
                } else {
                    run_checked(rt, &c, Output::Stdout)
                }
            });
            match result {
                Ok(Ok(())) => {}
                Ok(Err(e)) => eprintln!("{path}: runtime error: {e}"),
                Err(e) => eprintln!("{path}: {e}"),
            }
            println!();
        }
    }
    println!("All five paper programs executed on the deterministic simulator,");
    println!("interpreted and compiled, with identical observations.");
}
