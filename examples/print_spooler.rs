//! The printer spooler of paper §2.8.1 — hidden parameters and results.
//!
//! The manager owns the free-printer list. When it accepts a `Print`
//! call it pops a printer and passes the number to the body as a hidden
//! parameter; the body hands it back as a hidden result. Callers never
//! see printer numbers.
//!
//! Run with: `cargo run --example print_spooler`

use alps::paper::spooler::{Spooler, SpoolerConfig};
use alps::runtime::{SimRuntime, Spawn};

fn main() {
    let sim = SimRuntime::new();
    let (stats, elapsed, p50, p99) = sim
        .run(|rt| {
            let spooler = Spooler::spawn(
                rt,
                SpoolerConfig {
                    printers: 3,
                    print_max: 12,
                    ticks_per_byte: 1,
                },
            )
            .expect("valid definition");
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..12 {
                let (sp, rt2) = (spooler.clone(), rt.clone());
                // A mix of small and large documents.
                let bytes = if i % 3 == 0 { 4_000 } else { 500 };
                hs.push(rt.spawn_with(Spawn::new(format!("user{i}")), move || {
                    sp.print(&rt2, &format!("doc-{i}.ps"), bytes)
                        .expect("object open");
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            let lat = spooler.latency();
            (
                spooler.printer_stats(),
                rt.now() - t0,
                lat.percentile(50.0),
                lat.percentile(99.0),
            )
        })
        .expect("no deadlock");

    println!("print spooler: 12 jobs over 3 printers (virtual time)");
    println!();
    println!("{:<10} {:>6} {:>12}", "printer", "jobs", "busy ticks");
    for (p, (j, b)) in stats.jobs.iter().zip(&stats.busy).enumerate() {
        println!("printer-{p:<2} {j:>6} {b:>12}");
    }
    println!();
    println!("makespan      = {elapsed} ticks");
    println!("job latency   = p50 {p50} / p99 {p99} ticks");
    println!();
    println!("The manager never tracked which slot got which printer: the");
    println!("hidden result returns the printer number at await-time,");
    println!("\"eliminating a lot of bookkeeping for the manager\" (§2.8.1).");
}
