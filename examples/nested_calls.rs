//! Nested cross-object calls (paper §2.3): `X.P → Y.Q → X.R`.
//!
//! The asynchronous `start` lets X's manager keep accepting while `P`
//! executes, so the callback into `X.R` is served and the chain
//! completes. The equivalent nested-monitor structure deadlocks — and the
//! deterministic simulator *detects* the deadlock instead of hanging.
//!
//! Run with: `cargo run --example nested_calls`

use alps::core::vals;
use alps::paper::nested::{spawn_cross_calling_pair, NestedMonitors};
use alps::runtime::SimRuntime;

fn main() {
    // ALPS managers: the chain completes.
    let sim = SimRuntime::new();
    let v = sim
        .run(|rt| {
            let (x, _y) = spawn_cross_calling_pair(rt).expect("valid definitions");
            x.call("P", vals![5i64]).expect("completes")[0]
                .as_int()
                .expect("int")
        })
        .expect("no deadlock");
    println!("ALPS managers:   X.P(5) -> Y.Q -> X.R completed, result = {v}");

    // Nested monitors: deadlock, detected by the simulator.
    let sim = SimRuntime::new();
    let err = sim
        .run(|rt| {
            let nm = NestedMonitors::new();
            nm.nested_monitor_call(rt, 5)
        })
        .expect_err("nested monitors must deadlock");
    println!("nested monitors: {err}");
    println!();
    println!("X's manager starts P asynchronously and stays receptive to R —");
    println!("\"note that DP, Ada and SR suffer from the nested calls problem\" (§2.3).");
}
