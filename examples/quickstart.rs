//! Quickstart: build an ALPS object with a manager from scratch.
//!
//! This is the paper's bounded buffer (§2.4.1) written directly against
//! the `alps-core` API: two intercepted entries sharing a data part, and
//! a manager whose guarded `select` loop is the *entire* synchronization
//! logic of the object.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::VecDeque;
use std::sync::Arc;

use alps::core::{vals, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
use alps::runtime::{Runtime, Spawn};
use parking_lot::Mutex;

const CAPACITY: usize = 4;

fn main() {
    let rt = Runtime::threaded();

    // The object's data part: a queue shared by both entry procedures.
    let store: Arc<Mutex<VecDeque<Value>>> = Arc::new(Mutex::new(VecDeque::new()));
    let (s_dep, s_rem) = (Arc::clone(&store), Arc::clone(&store));

    let buffer = ObjectBuilder::new("Buffer")
        .entry(
            EntryDef::new("Deposit")
                .params([Ty::Int])
                .intercepted()
                .body(move |_ctx, args| {
                    s_dep.lock().push_back(args[0].clone());
                    Ok(vec![])
                }),
        )
        .entry(
            EntryDef::new("Remove")
                .results([Ty::Int])
                .intercepted()
                .body(move |_ctx, _| Ok(vec![s_rem.lock().pop_front().expect("manager-guarded")])),
        )
        .manager(move |mgr| {
            // The paper's manager: guards admit Deposit only while there
            // is room and Remove only while something is buffered;
            // `execute` runs each call to completion (monitor-style).
            let mut count = 0usize;
            loop {
                let sel = mgr.select(vec![
                    Guard::accept("Deposit").when(move |_| count < CAPACITY),
                    Guard::accept("Remove").when(move |_| count > 0),
                ])?;
                match sel {
                    Selected::Accepted { guard, call } => {
                        let was_deposit = guard == 0;
                        mgr.execute(call)?;
                        if was_deposit {
                            count += 1;
                        } else {
                            count -= 1;
                        }
                    }
                    _ => unreachable!(),
                }
            }
        })
        .spawn(&rt)
        .expect("valid object definition");

    // A producer process and a consumer (this thread) exchange items.
    let buf2 = buffer.clone();
    let producer = rt.spawn_with(Spawn::new("producer"), move || {
        for i in 0..10i64 {
            buf2.call("Deposit", vals![i]).expect("object open");
            println!("produced {i}");
        }
    });

    let mut sum = 0;
    for _ in 0..10 {
        let v = buffer.call("Remove", vals![]).expect("object open")[0]
            .as_int()
            .expect("int result");
        println!("consumed {v}");
        sum += v;
    }
    producer.join().expect("producer finished");

    println!("--");
    println!("sum = {sum} (expected 45)");
    println!("object stats: {}", buffer.stats());
    assert_eq!(sum, 45);
    buffer.shutdown();
    rt.shutdown();
}
