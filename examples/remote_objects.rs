//! Running objects across processes: the same call surface, a network
//! between the caller and the object, and partial failure handled by
//! policy instead of by hand.
//!
//! This example forks itself: the child (`remote_objects server`) hosts
//! a *supervised* key/value register behind a [`NetServer`] on an
//! ephemeral loopback TCP port; the parent connects a [`RemoteHandle`],
//! interns entry ids over the handshake, and drives calls with the same
//! `call_id_retry` it would use in-process. The register's `Put` crashes
//! on its first sight of one unlucky key, so the run demonstrates the
//! full partial-failure story: the panic kills the object's manager, the
//! restart sweep answers the in-flight remote call with the transient
//! `ObjectRestarting`, that error crosses the wire as itself, and the
//! client's retry policy rides through it — exactly once, verified by
//! reading every key back.
//!
//! Run with: `cargo run --example remote_objects`
//!
//! [`NetServer`]: alps::net::NetServer
//! [`RemoteHandle`]: alps::net::RemoteHandle

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

use alps::core::{
    vals, Backoff, EntryDef, Guard, ObjectBuilder, RestartPolicy, RetryPolicy, Selected, Ty, Value,
};
use alps::net::{NetServer, RemoteHandle, TcpConnector};
use alps::runtime::Runtime;
use parking_lot::Mutex;

const UNLUCKY: i64 = 13;

/// Child role: host the register, print the port, park until the parent
/// closes our stdin (so we never outlive it).
fn server() {
    let rt = Runtime::threaded();

    let store: Arc<Mutex<HashMap<i64, i64>>> = Arc::new(Mutex::new(HashMap::new()));
    let crashed = Arc::new(Mutex::new(false));
    let (s_put, s_get, c) = (Arc::clone(&store), store, crashed);

    let register = ObjectBuilder::new("Register")
        .entry(
            EntryDef::new("Put")
                .params([Ty::Int, Ty::Int])
                .intercepted()
                .body(move |_ctx, args| {
                    let (k, v) = (args[0].as_int()?, args[1].as_int()?);
                    // One injected fault: the first Put of the unlucky key
                    // panics BEFORE writing. The panic kills the manager
                    // below; supervision restarts it and answers the
                    // caller with the retryable ObjectRestarting.
                    if k == UNLUCKY && !std::mem::replace(&mut *c.lock(), true) {
                        panic!("injected crash on first Put({k})");
                    }
                    s_put.lock().insert(k, v);
                    Ok(vec![])
                }),
        )
        .entry(
            EntryDef::new("Get")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(move |_ctx, args| {
                    let k = args[0].as_int()?;
                    Ok(vec![Value::Int(
                        s_get.lock().get(&k).copied().unwrap_or(-1),
                    )])
                }),
        )
        .manager(|mgr| loop {
            match mgr.select(vec![Guard::accept("Put"), Guard::accept("Get")])? {
                Selected::Accepted { call, .. } => {
                    mgr.execute(call)?;
                }
                _ => unreachable!(),
            }
        })
        .supervise(RestartPolicy::RestartTransient {
            max_restarts: 4,
            window_ticks: 10_000_000,
        })
        .spawn(&rt)
        .expect("valid object definition");

    let net = NetServer::new(&rt);
    net.register(&register);
    let addr = net.listen_tcp("127.0.0.1:0").expect("bind loopback");
    println!("PORT={}", addr.port());
    std::io::stdout().flush().ok();

    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    net.shutdown();
    register.shutdown();
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("server") {
        return server();
    }

    // Fork the server process and learn its port.
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("server")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server process");
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let port: u16 = loop {
        match lines.next() {
            Some(Ok(l)) if l.starts_with("PORT=") => break l[5..].trim().parse().expect("port"),
            Some(Ok(_)) => continue,
            _ => panic!("server process died before reporting its port"),
        }
    };
    println!("server process is up on 127.0.0.1:{port}");

    // The client side: same call surface, a wire underneath.
    let rt = Runtime::threaded();
    let register = RemoteHandle::new(
        &rt,
        "Register",
        TcpConnector::new(format!("127.0.0.1:{port}")),
    );
    let put = register.entry_id("Put");
    let get = register.entry_id("Get");

    // ObjectRestarting, Overloaded, Timeout, and LinkLost are the
    // retryable taxonomy — the same policy object an in-process caller
    // would pass to call_retry.
    let policy = RetryPolicy::new(6, 2_000_000).backoff(Backoff::ExpJitter {
        base: 200,
        cap: 5_000,
    });

    for k in 10..16i64 {
        register
            .call_id_retry(&put, vals![k, k * k], policy)
            .expect("Put rides through the injected crash");
        println!("Put({k}, {}) ok", k * k);
    }

    println!("--");
    for k in 10..16i64 {
        let v = register.call_id_retry(&get, vals![k], policy).expect("Get")[0]
            .as_int()
            .expect("int result");
        println!("Get({k}) = {v}");
        assert_eq!(v, k * k, "exactly-once Put for key {k}");
    }

    let stats = register.stats();
    println!("--");
    println!(
        "remote calls: {} sent, {} replies, {} retries (the injected crash), {} link losses",
        stats.sent.get(),
        stats.replies.get(),
        stats.retries.get(),
        stats.link_losses.get()
    );
    assert!(
        stats.retries.get() >= 1,
        "the unlucky key must have forced a retry"
    );

    drop(child.stdin.take());
    let _ = child.kill();
    let _ = child.wait();
    println!("done: every key exactly once, crash included");
}
