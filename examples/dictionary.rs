//! The combining dictionary of paper §2.7.1.
//!
//! Many clients query a dictionary concurrently; when several in-flight
//! queries ask for the same word, the manager executes the search once
//! and answers all of them (`accept` … `finish` without `start`). This
//! example shows the executed-searches count and the virtual makespan
//! with combining on and off, for a workload with many duplicates.
//!
//! Run with: `cargo run --example dictionary`

use alps::paper::dictionary::{synthetic_store, DictConfig, Dictionary};
use alps::runtime::{SimRuntime, Spawn};

fn run(combining: bool) -> (u64, u64, u64) {
    let sim = SimRuntime::new();
    sim.run(move |rt| {
        let dict = Dictionary::spawn(
            rt,
            DictConfig {
                search_max: 16,
                lookup_cost: 1_000,
                combining,
            },
            synthetic_store(4),
        )
        .expect("valid definition");
        // 32 clients, but only 4 distinct words: a combining-friendly
        // burst, like a hot key in a cache.
        let t0 = rt.now();
        let mut hs = Vec::new();
        for i in 0..32 {
            let d2 = dict.clone();
            let word = format!("word-{}", i % 4);
            hs.push(rt.spawn_with(Spawn::new(format!("client{i}")), move || {
                let meaning = d2.search(&word).expect("object open");
                assert_eq!(
                    meaning,
                    format!("meaning-{}", word.trim_start_matches("word-"))
                );
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let stats = dict.object().stats();
        (rt.now() - t0, stats.starts(), stats.combines())
    })
    .expect("no deadlock")
}

fn main() {
    println!("combining dictionary: 32 concurrent queries over 4 distinct words");
    println!("(lookup cost 1000 virtual ticks each)");
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>14}",
        "mode", "executed", "combined", "virtual ticks"
    );
    for combining in [false, true] {
        let (elapsed, starts, combines) = run(combining);
        let mode = if combining { "combining" } else { "plain" };
        println!("{mode:<14} {starts:>10} {combines:>10} {elapsed:>14}");
    }
    println!();
    println!("With combining, each distinct word is searched once and the");
    println!("duplicate callers are answered from that single execution —");
    println!("the software analogue of NYU Ultracomputer memory combining.");
}
