//! End-to-end interpreter tests: ALPS source → output, on the
//! deterministic simulator.

use std::sync::Arc;

use alps_lang::check::check;
use alps_lang::interp::{run_checked, Output};
use alps_lang::parser::parse;
use alps_runtime::SimRuntime;

/// Run a program on the simulator, returning captured output lines.
fn run(src: &str) -> Vec<String> {
    try_run(src).unwrap_or_else(|e| panic!("program failed: {e}"))
}

fn try_run(src: &str) -> Result<Vec<String>, String> {
    let checked =
        Arc::new(check(parse(src).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?);
    let (out, buf) = Output::buffer();
    let sim = SimRuntime::new();
    let inner: Result<(), String> = sim
        .run(move |rt| run_checked(rt, &checked, out).map_err(|e| e.to_string()))
        .map_err(|e| e.to_string())?;
    inner?;
    let text = buf.lock().clone();
    Ok(text.lines().map(str::to_string).collect())
}

#[test]
fn hello_world() {
    assert_eq!(
        run(r#"main begin print("hello, world") end"#),
        vec!["hello, world"]
    );
}

#[test]
fn arithmetic_and_control_flow() {
    let out = run(r#"
        main
          var x: int;
          var s: string;
        begin
          x := 2 + 3 * 4;
          if x = 14 then s := "yes" else s := "no" end if;
          print(s, " ", x);
          while x > 12 do x := x - 1 end while;
          print(x);
          for x := 1 to 3 do print("i=", x) end for
        end
    "#);
    assert_eq!(out, vec!["yes 14", "12", "i=1", "i=2", "i=3"]);
}

#[test]
fn string_concat_and_builtins() {
    let out = run(r#"
        main
          var s: string;
          var xs: list(int);
        begin
          s := "a" + "b";
          print(s, len(s));
          push(xs, 10); push(xs, 20);
          print(len(xs), " ", get(xs, 1));
          set(xs, 0, 99);
          print(pop(xs));
          print(str(42) + "!")
        end
    "#);
    assert_eq!(out, vec!["ab2", "2 20", "99", "42!"]);
}

#[test]
fn channels_send_receive() {
    let out = run(r#"
        main
          var C: chan(int, string);
          var n: int;
          var s: string;
        begin
          send C(7, "seven");
          receive C(n, s);
          print(n, "=", s)
        end
    "#);
    assert_eq!(out, vec!["7=seven"]);
}

#[test]
fn simple_object_without_manager() {
    let out = run(r#"
        object Math defines
          proc Square(v: int) returns (int);
        end Math;
        object Math implements
          proc Square(v: int) returns (int);
          begin return (v * v) end Square;
        end Math;
        main var r: int; begin
          r := Math.Square(9);
          print(r)
        end
    "#);
    assert_eq!(out, vec!["81"]);
}

#[test]
fn object_shared_data_and_init() {
    let out = run(r#"
        object Counter defines
          proc Incr() returns (int);
        end Counter;
        object Counter implements
          var Count: int;
          proc Incr() returns (int);
          begin
            Count := Count + 1;
            return (Count)
          end Incr;
          begin
            Count := 100
          end Counter;
        main var a: int; var b: int; begin
          a := Counter.Incr();
          b := Counter.Incr();
          print(a, " ", b)
        end
    "#);
    assert_eq!(out, vec!["101 102"]);
}

#[test]
fn manager_execute_serializes() {
    let out = run(r#"
        object Guarded defines
          proc Get() returns (int);
        end Guarded;
        object Guarded implements
          var N: int;
          proc Get() returns (int);
          begin
            N := N + 1;
            return (N)
          end Get;
          manager
            intercepts Get;
            begin
              loop
                accept Get => execute Get
              end loop
            end;
        end Guarded;
        main var i: int; var v: int; begin
          for i := 1 to 3 do
            v := Guarded.Get();
            print(v)
          end for
        end
    "#);
    assert_eq!(out, vec!["1", "2", "3"]);
}

#[test]
fn manager_rewrites_intercepted_values() {
    let out = run(r#"
        object Adjust defines
          proc P(v: int) returns (int);
        end Adjust;
        object Adjust implements
          proc P(v: int) returns (int);
          begin return (v * 10) end P;
          manager
            intercepts P(int; int);
            begin
              loop
                accept P(v) =>
                  start P(v + 1);       { manager rewrites the parameter }
                  await P(r);
                  finish P(r + 5)       { and the result }
              end loop
            end;
        end Adjust;
        main var r: int; begin
          r := Adjust.P(3);
          print(r)
        end
    "#);
    // caller 3 -> manager 4 -> body 40 -> manager 45
    assert_eq!(out, vec!["45"]);
}

#[test]
fn pending_counts_in_guards() {
    let out = run(r#"
        object G defines
          proc A();
          proc B();
        end G;
        object G implements
          proc A();
          begin skip end A;
          proc B();
          begin skip end B;
          manager
            intercepts A, B;
            begin
              loop
                accept B => execute B; print("B served, #A=", #A)
              or
                accept A when #B = 0 => execute A; print("A served")
              end loop
            end;
        end G;
        main begin
          G.A();
          G.B();
          print("main done")
        end
    "#);
    assert_eq!(out[out.len() - 1], "main done");
}

#[test]
fn par_for_runs_indexed_family() {
    let out = run(r#"
        object W defines
          proc Work(i: int);
        end W;
        object W implements
          var Total: int;
          proc Work[1..4](i: int);
          begin
            Total := Total + i
          end Work;
          manager
            intercepts Work(int);
            begin
              loop
                (k: 1..4) accept Work[k](v) => execute Work[k](v)
              end loop
            end;
        end W;
        object Probe defines
          proc Sum() returns (int);
        end Probe;
        object Probe implements
          proc Sum() returns (int);
          begin return (0) end Sum;
        end Probe;
        main begin
          par i = 1 to 4 do W.Work(i) end par;
          print("done")
        end
    "#);
    assert_eq!(out, vec!["done"]);
}

#[test]
fn local_procedure_inlined() {
    let out = run(r#"
        object X defines
          proc Outer(v: int) returns (int);
        end X;
        object X implements
          proc Outer(v: int) returns (int);
          var h: int;
          begin
            h := Helper(v);
            return (h)
          end Outer;
          local proc Helper(v: int) returns (int);
          begin return (v + 100) end Helper;
        end X;
        main var r: int; begin
          r := X.Outer(1);
          print(r)
        end
    "#);
    assert_eq!(out, vec!["101"]);
}

#[test]
fn multi_result_call_destructures() {
    let out = run(r#"
        object P defines
          proc Pair() returns (int, string);
        end P;
        object P implements
          proc Pair() returns (int, string);
          begin return (5, "five") end Pair;
        end P;
        main var n: int; var s: string; begin
          n, s := P.Pair();
          print(n, " is ", s)
        end
    "#);
    assert_eq!(out, vec!["5 is five"]);
}

#[test]
fn select_priority_prefers_smaller_pri() {
    let out = run(r#"
        object Disk defines
          proc Request(track: int) returns (int);
        end Disk;
        object Disk implements
          proc Request[1..4](track: int) returns (int);
          begin return (track) end Request;
          manager
            intercepts Request(int; int);
            var served: int;
            begin
              { let all four requests attach before serving: shortest
                (smallest track) first }
              loop
                (i: 1..4) accept Request[i](t)
                    when #Request >= 4 or served > 0 pri t =>
                  execute Request[i](t);
                  served := served + 1;
                  print("served ", t)
              end loop
            end;
        end Disk;
        object C defines
          proc Issue(t: int);
        end C;
        object C implements
          proc Issue[1..4](t: int);
          var r: int;
          begin
            r := Disk.Request(t)
          end Issue;
        end C;
        main begin
          par C.Issue(30), C.Issue(10), C.Issue(20), C.Issue(40) end par;
          print("all served")
        end
    "#);
    assert_eq!(
        out,
        vec![
            "served 10",
            "served 20",
            "served 30",
            "served 40",
            "all served"
        ]
    );
}

#[test]
fn runtime_error_is_reported_with_position() {
    let err =
        try_run(r#"main var xs: list(int); var v: int; begin v := get(xs, 3) end"#).unwrap_err();
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn division_by_zero_reported() {
    let err = try_run(r#"main var x: int; begin x := 1 / (x - x) end"#).unwrap_err();
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn full_paper_programs_run() {
    // The checked-in example programs parse, check, and execute.
    for f in [
        "bounded_buffer",
        "readers_writers",
        "dictionary",
        "spooler",
        "parallel_buffer",
    ] {
        let path = format!(
            "{}/../../examples/alps/{f}.alps",
            env!("CARGO_MANIFEST_DIR")
        );
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let out = run(&src);
        assert!(!out.is_empty(), "{f} produced no output");
    }
}

#[test]
fn combining_in_alps_source_executes_once() {
    // A trimmed dictionary: 3 identical queries, Executions counter
    // exposed through an entry.
    let out = run(r#"
        object D defines
          proc Search(w: string) returns (string);
          proc Execs() returns (int);
        end D;
        object D implements
          var Executions: int;
          proc Search[1..4](w: string) returns (string);
          begin
            sleep(100);
            Executions := Executions + 1;
            return (w + "!")
          end Search;
          proc Execs() returns (int);
          begin return (Executions) end Execs;
          manager
            intercepts Search(string; string);
            var FlightWords: list(string);
            var FlightSlots: list(int);
            var WaitSlots: list(int);
            var WaitWords: list(string);
            var k: int;
            var w: string;
            var busy: bool;
            begin
              loop
                (i: 1..4) accept Search[i](Word) =>
                  busy := false;
                  for k := 0 to len(FlightWords) - 1 do
                    if get(FlightWords, k) = Word then busy := true end if
                  end for;
                  if busy then
                    push(WaitSlots, i); push(WaitWords, Word)
                  else
                    push(FlightSlots, i); push(FlightWords, Word);
                    start Search[i](Word)
                  end if
              or
                (i: 1..4) await Search[i](Meaning) =>
                  w := "";
                  k := 0;
                  while k < len(FlightSlots) do
                    if get(FlightSlots, k) = i then
                      w := get(FlightWords, k);
                      remove(FlightSlots, k); remove(FlightWords, k)
                    else
                      k := k + 1
                    end if
                  end while;
                  finish Search[i](Meaning);
                  k := 0;
                  while k < len(WaitSlots) do
                    if get(WaitWords, k) = w then
                      finish Search[get(WaitSlots, k)](Meaning);
                      remove(WaitSlots, k); remove(WaitWords, k)
                    else
                      k := k + 1
                    end if
                  end while
              end loop
            end;
        end D;
        object C defines
          proc Ask(w: string);
        end C;
        object C implements
          proc Ask[1..4](w: string);
          var m: string;
          begin
            m := D.Search(w)
          end Ask;
        end C;
        main var n: int; begin
          par C.Ask("hot"), C.Ask("hot"), C.Ask("hot") end par;
          n := D.Execs();
          print("executions=", n)
        end
    "#);
    assert_eq!(out, vec!["executions=1"]);
}
