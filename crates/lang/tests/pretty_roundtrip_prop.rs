//! Generative round-trip property for the pretty-printer: random ASTs,
//! rendered to canonical source, must re-parse to a program that renders
//! to *exactly the same* canonical source. Because `pretty` is
//! position-free and canonical, string fixed-point equality
//! (`pretty(parse(pretty(g))) == pretty(g)`) is the whole oracle — no
//! Debug-dump scrubbing needed.
//!
//! The build environment is offline, so instead of `proptest` this uses
//! the repo's deterministic splitmix64 generator: every case is a pure
//! function of its seed, and a failure prints the seed plus the rendered
//! program for exact reproduction.

use alps_lang::ast::*;
use alps_lang::parser::parse;
use alps_lang::pretty::pretty;
use alps_lang::token::Pos;

const CASES: u64 = 64;

/// Deterministic splitmix64 — the reproducible randomness source.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    fn pick(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn flip(&mut self) -> bool {
        self.pick(2) == 0
    }
}

fn p() -> Pos {
    Pos::default()
}

/// Identifiers drawn from fixed keyword-free pools: the parser only sees
/// syntax, so names never need to resolve — they just must not collide
/// with the (lowercase) keyword set.
fn var_name(rng: &mut Rng) -> String {
    format!("v{}", rng.pick(8))
}

fn proc_name(rng: &mut Rng) -> String {
    format!("P{}", rng.pick(4))
}

fn obj_name(rng: &mut Rng) -> String {
    format!("Obj{}", rng.pick(3))
}

fn type_expr(rng: &mut Rng, depth: u32) -> TypeExpr {
    match rng.pick(if depth == 0 { 4 } else { 6 }) {
        0 => TypeExpr::Int,
        1 => TypeExpr::Bool,
        2 => TypeExpr::Float,
        3 => TypeExpr::Str,
        4 => TypeExpr::List(Box::new(type_expr(rng, depth - 1))),
        _ => TypeExpr::Chan(
            (0..=rng.pick(2))
                .map(|_| type_expr(rng, depth - 1))
                .collect(),
        ),
    }
}

fn binop(rng: &mut Rng) -> BinOp {
    match rng.pick(13) {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        _ => BinOp::Or,
    }
}

fn expr(rng: &mut Rng, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.pick(3) == 0;
    if leaf {
        match rng.pick(5) {
            // Non-negative literals only: `-3` re-parses as
            // `Unary(Neg, 3)`, which canonicalizes to `(-3)` — a
            // different string. Negation is generated as the Unary node.
            0 => Expr::Int(rng.pick(1000) as i64, p()),
            // Quarters survive the f64 → decimal → f64 round trip
            // exactly, so `to_string` is a faithful rendering.
            1 => Expr::Float(rng.pick(64) as f64 * 0.25, p()),
            2 => Expr::Str(format!("s{} t{}", rng.pick(10), rng.pick(10)), p()),
            3 => Expr::Bool(rng.flip(), p()),
            _ => Expr::Var(var_name(rng), p()),
        }
    } else {
        match rng.pick(4) {
            0 => Expr::Unary(
                if rng.flip() { UnOp::Neg } else { UnOp::Not },
                Box::new(expr(rng, depth - 1)),
                p(),
            ),
            1 | 2 => Expr::Binary(
                binop(rng),
                Box::new(expr(rng, depth - 1)),
                Box::new(expr(rng, depth - 1)),
                p(),
            ),
            _ => Expr::Call(call_target(rng), exprs(rng, depth - 1, 3), p()),
        }
    }
}

fn exprs(rng: &mut Rng, depth: u32, max: u64) -> Vec<Expr> {
    (0..rng.pick(max + 1)).map(|_| expr(rng, depth)).collect()
}

fn call_target(rng: &mut Rng) -> CallTarget {
    if rng.flip() {
        CallTarget::Entry(obj_name(rng), proc_name(rng))
    } else {
        CallTarget::Plain(proc_name(rng))
    }
}

fn lvalues(rng: &mut Rng, max: u64) -> Vec<LValue> {
    (0..=rng.pick(max))
        .map(|_| LValue::Var(var_name(rng), p()))
        .collect()
}

fn slot(rng: &mut Rng) -> SlotRef {
    SlotRef {
        entry: proc_name(rng),
        index: rng.flip().then(|| expr(rng, 1)),
        pos: p(),
    }
}

/// A non-empty statement list (an empty `begin end` does not parse).
fn stmts(rng: &mut Rng, depth: u32, manager: bool) -> Vec<Stmt> {
    (0..=rng.pick(3))
        .map(|_| stmt(rng, depth, manager))
        .collect()
}

fn stmt(rng: &mut Rng, depth: u32, manager: bool) -> Stmt {
    // Choices 0-4 are flat, 5-10 recurse into nested statement lists,
    // 11-15 are manager primitives; at depth 0 the recursive band is
    // skipped (the pick is remapped over it) so nesting bottoms out.
    let extra = if manager { 5 } else { 0 };
    let choice = if depth == 0 {
        let r = rng.pick(5 + extra);
        if r < 5 {
            r
        } else {
            r + 6
        }
    } else {
        rng.pick(11 + extra)
    };
    match choice {
        0 => Stmt::Skip(p()),
        1 => Stmt::Assign(vec![LValue::Var(var_name(rng), p())], expr(rng, 2), p()),
        2 => Stmt::Call(call_target(rng), exprs(rng, 2, 3), p()),
        3 => Stmt::Return(exprs(rng, 1, 2), p()),
        4 => Stmt::Send(Expr::Var(var_name(rng), p()), exprs(rng, 1, 2), p()),
        5 => Stmt::If(
            (0..=rng.pick(2))
                .map(|_| (expr(rng, 2), stmts(rng, depth - 1, manager)))
                .collect(),
            if rng.flip() {
                stmts(rng, depth - 1, manager)
            } else {
                vec![]
            },
            p(),
        ),
        6 => Stmt::While(expr(rng, 2), stmts(rng, depth - 1, manager), p()),
        7 => Stmt::For(
            var_name(rng),
            expr(rng, 1),
            expr(rng, 1),
            stmts(rng, depth - 1, manager),
            p(),
        ),
        8 => Stmt::Receive(Expr::Var(var_name(rng), p()), lvalues(rng, 3), p()),
        9 => Stmt::Par(
            (0..=rng.pick(2))
                .map(|_| (call_target(rng), exprs(rng, 1, 2)))
                .collect(),
            p(),
        ),
        10 => Stmt::ParFor(
            var_name(rng),
            expr(rng, 1),
            expr(rng, 1),
            call_target(rng),
            exprs(rng, 1, 2),
            p(),
        ),
        // Manager-only statements: the parser accepts them anywhere a
        // statement goes (scoping is the checker's job), but the
        // generator keeps them inside managers so the programs stay
        // plausible.
        11 => Stmt::Accept(slot(rng), lvalues(rng, 3), p()),
        12 => Stmt::Start(slot(rng), exprs(rng, 1, 2), p()),
        13 => Stmt::AwaitStmt(slot(rng), lvalues(rng, 2), p()),
        14 => Stmt::Finish(slot(rng), exprs(rng, 1, 2), p()),
        _ => {
            let arms = (0..=rng.pick(2)).map(|_| guarded(rng, depth)).collect();
            if rng.flip() {
                Stmt::Select(arms, p())
            } else {
                Stmt::Loop(arms, p())
            }
        }
    }
}

fn guarded(rng: &mut Rng, depth: u32) -> Guarded {
    let kind = match rng.pick(4) {
        0 => GuardKind::Accept {
            slot: slot(rng),
            binds: if rng.flip() { lvalues(rng, 2) } else { vec![] },
        },
        1 => GuardKind::Await {
            slot: slot(rng),
            binds: if rng.flip() { lvalues(rng, 2) } else { vec![] },
        },
        2 => GuardKind::Receive {
            chan: Expr::Var(var_name(rng), p()),
            binds: lvalues(rng, 2),
        },
        _ => GuardKind::Plain,
    };
    // A plain guard with no `when` renders as a bare `=>`, which is not
    // grammar; every plain guard gets a condition.
    let when = if matches!(kind, GuardKind::Plain) || rng.flip() {
        Some(expr(rng, 2))
    } else {
        None
    };
    Guarded {
        quantifier: rng
            .flip()
            .then(|| ("qi".to_string(), expr(rng, 0), expr(rng, 0))),
        kind,
        when,
        pri: rng.flip().then(|| expr(rng, 1)),
        body: stmts(rng, depth.saturating_sub(1), true),
        pos: p(),
    }
}

fn params(rng: &mut Rng, max: u64) -> Vec<Param> {
    (0..rng.pick(max + 1))
        .map(|i| Param {
            name: format!("a{i}"),
            ty: type_expr(rng, 2),
            pos: p(),
        })
        .collect()
}

fn header(rng: &mut Rng, local: bool) -> ProcHeader {
    ProcHeader {
        name: proc_name(rng),
        array: rng.flip().then(|| 1 + rng.pick(8) as i64),
        params: params(rng, 3),
        results: (0..rng.pick(3)).map(|_| type_expr(rng, 2)).collect(),
        local: local && rng.flip(),
        pos: p(),
    }
}

fn program(rng: &mut Rng) -> Program {
    let defs = (0..rng.pick(3))
        .map(|i| ObjectDef {
            name: format!("Obj{i}"),
            procs: (0..=rng.pick(2)).map(|_| header(rng, false)).collect(),
            pos: p(),
        })
        .collect();
    let impls = (0..rng.pick(3))
        .map(|i| ObjectImpl {
            name: format!("Obj{i}"),
            vars: params(rng, 2),
            procs: (0..=rng.pick(2))
                .map(|_| ProcImpl {
                    header: header(rng, true),
                    vars: params(rng, 2),
                    body: stmts(rng, 2, false),
                })
                .collect(),
            manager: rng.flip().then(|| Manager {
                intercepts: (0..=rng.pick(2))
                    .map(|_| {
                        let explicit = rng.flip();
                        InterceptItem {
                            name: proc_name(rng),
                            params: if explicit {
                                (0..rng.pick(3)).map(|_| type_expr(rng, 1)).collect()
                            } else {
                                vec![]
                            },
                            results: if explicit && rng.flip() {
                                (1..=rng.pick(2) + 1).map(|_| type_expr(rng, 1)).collect()
                            } else {
                                vec![]
                            },
                            explicit,
                            pos: p(),
                        }
                    })
                    .collect(),
                vars: params(rng, 2),
                body: stmts(rng, 2, true),
                pos: p(),
            }),
            init: if rng.flip() {
                stmts(rng, 1, false)
            } else {
                vec![]
            },
            pos: p(),
        })
        .collect();
    Program {
        defs,
        impls,
        main: rng.flip().then(|| MainBlock {
            vars: params(rng, 3),
            body: stmts(rng, 3, false),
            pos: p(),
        }),
    }
}

/// The property: for every seed, rendering is a parse fixed point.
#[test]
fn pretty_parse_fixed_point_on_random_programs() {
    let mut nonempty = 0;
    for seed in 0..CASES {
        let mut rng = Rng::new(0xa1b2 + seed);
        let g = program(&mut rng);
        let s1 = pretty(&g);
        if s1.trim().is_empty() {
            continue; // a program with no defs, impls, or main
        }
        nonempty += 1;
        let reparsed = parse(&s1).unwrap_or_else(|e| {
            panic!("seed {seed}: pretty output failed to parse: {e}\n---\n{s1}")
        });
        let s2 = pretty(&reparsed);
        assert_eq!(
            s1, s2,
            "seed {seed}: canonical rendering is not a parse fixed point"
        );
    }
    assert!(
        nonempty >= CASES / 2,
        "generator produced mostly empty programs — property is vacuous"
    );
}

/// Double application adds nothing: parse∘pretty is idempotent on ASTs
/// that came from source, including every shipped example.
#[test]
fn pretty_is_idempotent_on_examples() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/alps");
    let mut count = 0;
    for e in std::fs::read_dir(dir).expect("examples/alps") {
        let path = e.expect("entry").path();
        if path.extension().is_none_or(|x| x != "alps") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read example");
        let s1 = pretty(&parse(&src).expect("example parses"));
        let s2 = pretty(&parse(&s1).expect("canonical form parses"));
        assert_eq!(s1, s2, "{}: not idempotent", path.display());
        count += 1;
    }
    assert!(count >= 7, "expected the 7 example programs");
}
