//! Seeded-interleaving sweep for the compiled backend: a select-heavy
//! compiled program (guarded accepts, an overlay-reading `when`, a
//! counting manager) under the strategy-driven schedule explorer
//! (`alps_runtime::explore`).
//!
//! Every scenario runs once per (seed, strategy) cell; seeds are split
//! round-robin across the strategy matrix. A failing cell is replayed,
//! its commit-point preemption schedule is delta-minimized, and the
//! failure is reported as a `SIM_TRACE=` string that reproduces the
//! exact schedule.
//!
//! * `SIM_SEED=<n>` — run only seed `n` (replay mode).
//! * `SIM_SWEEP_SEEDS=<n>` — sweep seeds `0..n` (default 16 as a smoke
//!   test; CI's `sim-sweep` matrix sets 64 per strategy).
//! * `SIM_STRATEGY=<list>` — strategies to sweep: `all` (default) or a
//!   comma list of `fifo`, `random`, `rr`, `pct`, `targeted`.
//! * `SIM_TRACE=<trace>` — skip the sweep and replay one minimized
//!   schedule exactly.

use std::sync::Arc;

use alps_lang::{check, parse, run_checked, run_compiled, Output};
use alps_runtime::explore::{for_each_policy, sweep_explore};
use alps_runtime::{SchedPolicy, SimRuntime};

/// A select-heavy program: a 3-slot guarded buffer whose Deposit guard
/// reads the overlaid argument (`M >= 0` forces the compiled `when`
/// closure down the overlay path, `Count < 3` alone takes the
/// precomputed path on the Remove arm), 2 producers racing 2 consumers,
/// and a tally object the consumers call back into mid-drain.
const SELECT_HEAVY: &str = r#"
object Buffer defines
  proc Deposit(M: int);
  proc Remove() returns (int);
end Buffer;
object Buffer implements
  var Store: list(int);
  proc Deposit(M: int);
  begin push(Store, M) end Deposit;
  proc Remove() returns (int);
  begin return (pop(Store)) end Remove;
  manager
    intercepts Deposit(int), Remove;
    var Count: int;
    begin
      loop
        accept Deposit(M) when (Count < 3) and (M >= 0) =>
          execute Deposit(M);
          Count := Count + 1
      or
        accept Remove when Count > 0 =>
          execute Remove;
          Count := Count - 1
      end loop
    end;
end Buffer;
object Tally defines
  proc Add(v: int);
  proc Total() returns (int);
end Tally;
object Tally implements
  var Sum: int;
  proc Add(v: int);
  begin Sum := Sum + v end Add;
  proc Total() returns (int);
  begin return (Sum) end Total;
end Tally;
object Drv defines
  proc Produce(b: int);
  proc Consume(n: int);
end Drv;
object Drv implements
  proc Produce[1..2](b: int);
  var i: int;
  begin
    for i := 1 to 6 do Buffer.Deposit(b * 100 + i) end for
  end Produce;
  proc Consume[1..2](n: int);
  var i: int;
  var v: int;
  begin
    for i := 1 to n do
      v := Buffer.Remove();
      Tally.Add(v);
      print("got ", v)
    end for
  end Consume;
end Drv;
main var t: int; begin
  par Drv.Produce(1), Drv.Produce(2), Drv.Consume(6), Drv.Consume(6) end par;
  t := Tally.Total();
  print("total=", t)
end
"#;

/// Run the select-heavy program on an already-configured sim, returning
/// the captured observations.
fn run_on(sim: SimRuntime, compiled: bool) -> Vec<String> {
    let checked = Arc::new(check(parse(SELECT_HEAVY).expect("parse")).expect("check"));
    let (out, buf) = Output::buffer();
    sim.run(move |rt| {
        if compiled {
            run_compiled(rt, &checked, out).expect("compiled run")
        } else {
            run_checked(rt, &checked, out).expect("interpreted run")
        }
    })
    .expect("sim");
    let text = buf.lock().clone();
    text.lines().map(str::to_string).collect()
}

/// [`run_on`] under a bare policy (for the multi-sim scenarios that
/// compare several runs per cell).
fn run_with_policy(policy: SchedPolicy, compiled: bool) -> Vec<String> {
    run_on(SimRuntime::with_policy(policy), compiled)
}

/// The multiset of items every schedule must deliver: each producer `b`
/// deposits `b*100 + 1 ..= b*100 + 6` exactly once.
fn expected_items() -> Vec<String> {
    let mut items: Vec<String> = (1..=2i64)
        .flat_map(|b| (1..=6i64).map(move |i| format!("got {}", b * 100 + i)))
        .collect();
    items.sort();
    items
}

/// Invariants that must hold under EVERY schedule: all 12 items are
/// consumed exactly once (no loss, no duplication across the guarded
/// hand-offs) and the commutative tally is schedule-independent.
fn assert_invariants(out: &[String], what: &str) {
    assert_eq!(out.len(), 13, "{what}: 12 items + 1 total, got {out:?}");
    assert_eq!(
        out.last().map(String::as_str),
        Some("total=1842"),
        "{what}: tally must be schedule-independent"
    );
    let mut got: Vec<String> = out[..12].to_vec();
    got.sort();
    assert_eq!(got, expected_items(), "{what}: item multiset diverged");
}

#[test]
fn compiled_select_invariants_hold_across_seeds() {
    sweep_explore("compiled-select", |sim| {
        let out = run_on(sim, true);
        assert_invariants(&out, "compiled");
    });
}

#[test]
fn compiled_run_is_deterministic_per_seed() {
    for_each_policy("compiled-determinism", |_strategy, policy, seed| {
        let a = run_with_policy(policy, true);
        let b = run_with_policy(policy, true);
        assert_eq!(
            a, b,
            "seed {seed}: two compiled runs of the same seed diverged"
        );
    });
}

#[test]
fn interpreted_and_compiled_agree_on_observables_across_seeds() {
    // The two backends take different numbers of internal steps, so the
    // same seed produces different interleavings — print order may
    // differ. What must agree under every schedule is the observable
    // outcome: the same item multiset and the same final tally.
    for_each_policy("compiled-vs-interpreted", |_strategy, policy, _seed| {
        let interpreted = run_with_policy(policy, false);
        assert_invariants(&interpreted, "interpreted");
        let compiled = run_with_policy(policy, true);
        assert_invariants(&compiled, "compiled");
    });
}
