//! # alps-lang — the ALPS language
//!
//! A frontend and interpreter for the ALPS notation of *"Synchronization
//! and Scheduling in ALPS Objects"* (ICDCS 1988): lexer, recursive-descent
//! parser, static checker (definitions vs implementations, hidden
//! parameter/result derivation, intercepts validation, types, manager-only
//! statements), and a tree-walking interpreter that maps objects onto
//! [`alps_core`] and processes onto [`alps_runtime`].
//!
//! The concrete grammar and its documented deviations from the paper's
//! informal notation are in `GRAMMAR.md` next to this crate.
//!
//! ```
//! use alps_lang::interp::{run_source, Output};
//! use alps_runtime::SimRuntime;
//!
//! let src = r#"
//!     object Greeter defines
//!       proc Greet(name: string) returns (string);
//!     end Greeter;
//!     object Greeter implements
//!       proc Greet(name: string) returns (string);
//!       begin return ("hello, " + name) end Greet;
//!       manager
//!         intercepts Greet;
//!         begin
//!           loop accept Greet => execute Greet end loop
//!         end;
//!     end Greeter;
//!     main var s: string; begin
//!       s := Greeter.Greet("world");
//!       print(s)
//!     end
//! "#;
//! let (out, buf) = Output::buffer();
//! let src = src.to_string();
//! let sim = SimRuntime::new();
//! sim.run(move |rt| run_source(rt, &src, out).unwrap()).unwrap();
//! assert_eq!(buf.lock().trim(), "hello, world");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod compile;
pub mod error;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod token;

pub use check::{check, Checked};
pub use compile::{run_compiled, run_source_compiled, spawn_compiled, Compiled};
pub use error::LangError;
pub use interp::{run_checked, run_source, Output, RunError};
pub use lower::lower;
pub use parser::parse;
pub use pretty::pretty;
