//! Resolved intermediate representation: the output of
//! [`lower`](crate::lower::lower).
//!
//! Every name in a checked program is resolved at lowering time —
//! objects to indices, entries to `(object, entry)` index pairs with a
//! precomputed position in the flat entry-id table, variables to frame
//! slots (procedure/manager/main locals), environment slots (the object's
//! shared data part) or overlay slots (guard-bound values inside
//! `when`/`pri`). The compiled executor ([`crate::compile`]) therefore
//! never hashes a string, never consults a `HashMap`, and never touches
//! the AST on the warm path: an entry call is an interned
//! `handle.call_id(entry_id, args)`, a variable access is a vector
//! index.

use alps_core::{Ty, Value};

use crate::ast::{BinOp, UnOp};
use crate::token::Pos;

/// Where a resolved variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// Slot in the current activation frame (procedure/manager/main
    /// locals, parameters, loop and guard bindings).
    Frame(usize),
    /// Slot in the object's shared data part (locked per access, like the
    /// interpreter's object environment).
    Env(usize),
    /// Slot in the guard-evaluation overlay: the quantifier value and the
    /// candidate's bound values. Only valid inside compiled `when`/`pri`
    /// expressions; never a write target.
    Overlay(usize),
}

/// Constructor for a variable's initial (default) value. Channels must be
/// constructed per activation — two invocations of a body get distinct
/// channels — so defaults are recipes, not pre-made values.
#[derive(Debug, Clone)]
pub enum DefaultVal {
    /// `0`
    Int,
    /// `false`
    Bool,
    /// `0.0`
    Float,
    /// `""`
    Str,
    /// A fresh channel named after the variable.
    Chan(String, Vec<Ty>),
    /// `[]`
    List,
}

impl DefaultVal {
    /// Build the value.
    pub fn make(&self) -> Value {
        match self {
            DefaultVal::Int => Value::Int(0),
            DefaultVal::Bool => Value::Bool(false),
            DefaultVal::Float => Value::Float(0.0),
            DefaultVal::Str => Value::str(""),
            DefaultVal::Chan(name, sig) => {
                Value::Chan(alps_core::ChanValue::new(name, sig.clone()))
            }
            DefaultVal::List => Value::List(Vec::new()),
        }
    }
}

/// Builtin operations. The mutating list builtins carry the resolved
/// variable they update in place.
#[derive(Debug, Clone)]
pub enum Builtin {
    /// `print(e, …)`
    Print,
    /// `str(e)`
    Str,
    /// `len(e)`
    Len,
    /// `get(xs, i)`
    Get,
    /// `now()`
    Now,
    /// `sleep(t)`
    Sleep,
    /// `push(xs, e)`
    Push(VarRef),
    /// `remove(xs, i)`
    Remove(VarRef),
    /// `pop(xs)`
    Pop(VarRef),
    /// `set(xs, i, e)`
    Set(VarRef),
}

/// Resolved expressions.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// A literal, pre-built (string literals are interned `Arc<str>`s, so
    /// cloning is a refcount bump).
    Const(Value),
    /// A resolved variable read.
    Var(VarRef, Pos),
    /// `#P` — resolved entry index; manager/guard scope only.
    Pending(usize, Pos),
    /// Unary operation.
    Unary(UnOp, Box<CExpr>, Pos),
    /// Binary operation (`and`/`or` short-circuit).
    Binary(BinOp, Box<CExpr>, Box<CExpr>, Pos),
    /// `X.P(…)` — an entry call through the interned handle/entry-id
    /// tables: `obj` indexes the handle table, `flat` the entry-id table.
    CallEntry {
        /// Object index.
        obj: usize,
        /// Flat entry-id table index.
        flat: usize,
        /// Argument expressions.
        args: Vec<CExpr>,
        /// Call position.
        pos: Pos,
    },
    /// A sibling *intercepted* procedure — routed through the own
    /// object's manager via `call_from_inside_id`.
    CallSelf {
        /// Flat entry-id table index (own object).
        flat: usize,
        /// Argument expressions.
        args: Vec<CExpr>,
        /// Call position.
        pos: Pos,
    },
    /// A sibling non-intercepted procedure — executed inline in the
    /// current process with a fresh frame.
    CallInline {
        /// Entry index within the current object.
        entry: usize,
        /// Argument expressions.
        args: Vec<CExpr>,
        /// Call position.
        pos: Pos,
    },
    /// A builtin.
    CallBuiltin(Builtin, Vec<CExpr>, Pos),
}

impl CExpr {
    /// Position of the expression (for runtime error messages).
    pub fn pos(&self) -> Pos {
        match self {
            CExpr::Const(_) => Pos::default(),
            CExpr::Var(_, p)
            | CExpr::Pending(_, p)
            | CExpr::Unary(_, _, p)
            | CExpr::Binary(_, _, _, p)
            | CExpr::CallEntry { pos: p, .. }
            | CExpr::CallSelf { pos: p, .. }
            | CExpr::CallInline { pos: p, .. }
            | CExpr::CallBuiltin(_, _, p) => *p,
        }
    }
}

/// One branch of a `par` / `par-for` (always an object entry call).
#[derive(Debug, Clone)]
pub struct CParBranch {
    /// Object index (handle table).
    pub obj: usize,
    /// Flat entry-id table index.
    pub flat: usize,
    /// Argument expressions.
    pub args: Vec<CExpr>,
    /// Position.
    pub pos: Pos,
}

/// Resolved guard kinds. Bind targets are resolved variable references
/// written at commit time.
#[derive(Debug, Clone)]
pub enum CGuardKind {
    /// `accept P[i](x, …)`
    Accept {
        /// Entry index.
        entry: usize,
        /// Targets for the intercepted parameter prefix.
        binds: Vec<VarRef>,
    },
    /// `await P[i](r, …)`
    Await {
        /// Entry index.
        entry: usize,
        /// Targets for intercepted + hidden results.
        binds: Vec<VarRef>,
    },
    /// `receive C(x, …)`
    Receive {
        /// Channel expression.
        chan: CExpr,
        /// Targets for message elements.
        binds: Vec<VarRef>,
    },
    /// Pure boolean guard.
    Plain,
}

/// One guarded alternative of a compiled `select`/`loop`.
#[derive(Debug, Clone)]
pub struct CGuarded {
    /// Quantifier `(i: lo..hi)`: the frame slot bound in the arm body and
    /// the bound expressions (evaluated once per select).
    pub quant: Option<(usize, CExpr, CExpr)>,
    /// The guard kind.
    pub kind: CGuardKind,
    /// Acceptance condition, compiled against the overlay scope
    /// (`Overlay(0)` = quantifier value if quantified, then the bind
    /// values in order).
    pub when: Option<CExpr>,
    /// Run-time priority, same scoping as `when`.
    pub pri: Option<CExpr>,
    /// Arm body.
    pub body: Vec<CStmt>,
    /// Position.
    pub pos: Pos,
}

/// Resolved statements.
#[derive(Debug, Clone)]
pub enum CStmt {
    /// `x, y := e`
    Assign(Vec<VarRef>, CExpr, Pos),
    /// A call for effect.
    Expr(CExpr),
    /// `if … elsif … else …`
    If(Vec<(CExpr, Vec<CStmt>)>, Vec<CStmt>),
    /// `while e do …`
    While(CExpr, Vec<CStmt>),
    /// `for i := a to b do …` — the loop variable is a frame slot.
    For(usize, CExpr, CExpr, Vec<CStmt>),
    /// `send C(e, …)`
    Send(CExpr, Vec<CExpr>, Pos),
    /// `receive C(x, …)`
    Receive(CExpr, Vec<VarRef>, Pos),
    /// `select … end select`
    Select(Vec<CGuarded>, Pos),
    /// `loop … end loop`
    LoopSel(Vec<CGuarded>, Pos),
    /// `par call and … end par`
    Par(Vec<CParBranch>, Pos),
    /// `par i = a to b do P(…) end par` — loop variable is a frame slot
    /// bound while evaluating each branch's arguments.
    ParFor {
        /// Loop-variable frame slot.
        var: usize,
        /// Lower bound.
        lo: CExpr,
        /// Upper bound.
        hi: CExpr,
        /// The branch template.
        branch: CParBranch,
        /// Position.
        pos: Pos,
    },
    /// `return (e, …)`
    Return(Vec<CExpr>, Pos),
    /// `accept P[i](x, …)` (blocking statement form).
    Accept {
        /// Entry index.
        entry: usize,
        /// Optional 1-based slot index expression.
        slot: Option<CExpr>,
        /// Bind targets.
        binds: Vec<VarRef>,
        /// Position.
        pos: Pos,
    },
    /// `await P[i](x, …)` (blocking statement form).
    Await {
        /// Entry index.
        entry: usize,
        /// Optional 1-based slot index expression.
        slot: Option<CExpr>,
        /// Bind targets.
        binds: Vec<VarRef>,
        /// Position.
        pos: Pos,
    },
    /// `start P[i](e, …)`.
    Start {
        /// Entry index.
        entry: usize,
        /// Optional 1-based slot index expression.
        slot: Option<CExpr>,
        /// Intercepted-prefix + hidden-parameter expressions (empty =
        /// start as accepted).
        args: Vec<CExpr>,
        /// How many leading args are the intercepted prefix.
        intercept_params: usize,
        /// Position.
        pos: Pos,
    },
    /// `finish P[i](e, …)`.
    Finish {
        /// Entry index.
        entry: usize,
        /// Optional 1-based slot index expression.
        slot: Option<CExpr>,
        /// Result expressions (empty = forward as-is).
        args: Vec<CExpr>,
        /// Position.
        pos: Pos,
    },
    /// `execute P[i](e, …)`.
    Execute {
        /// Entry index.
        entry: usize,
        /// Optional 1-based slot index expression.
        slot: Option<CExpr>,
        /// Intercepted-prefix + hidden-parameter expressions.
        args: Vec<CExpr>,
        /// How many leading args are the intercepted prefix.
        intercept_params: usize,
        /// Position.
        pos: Pos,
    },
    /// `skip`
    Skip,
}

/// A compiled code block with its activation-frame layout: parameter
/// slots first, declared locals (with defaults) next, then slots for loop
/// variables and guard bindings (initialised to `Unit`).
#[derive(Debug, Clone)]
pub struct CProc {
    /// Name (for error messages).
    pub name: String,
    /// Number of leading parameter slots.
    pub params: usize,
    /// Defaults for the declared-local slots `params..params+defaults`.
    pub defaults: Vec<DefaultVal>,
    /// Total frame size (≥ params + defaults).
    pub frame_size: usize,
    /// Results the block must return (public + hidden for entry bodies,
    /// 0 for manager/init/main).
    pub result_count: usize,
    /// The body.
    pub body: Vec<CStmt>,
    /// Position of the header.
    pub pos: Pos,
}

/// Static entry metadata the backend needs to build an
/// [`alps_core::EntryDef`], plus the compiled body.
#[derive(Debug, Clone)]
pub struct CEntry {
    /// Entry name.
    pub name: String,
    /// Public parameter types.
    pub public_params: Vec<Ty>,
    /// Public result types.
    pub public_results: Vec<Ty>,
    /// Hidden parameter types.
    pub hidden_params: Vec<Ty>,
    /// Hidden result types.
    pub hidden_results: Vec<Ty>,
    /// Procedure-array size.
    pub array: usize,
    /// Whether the entry is local.
    pub local: bool,
    /// Intercepted `(params, results)` prefix lengths.
    pub intercept: Option<(usize, usize)>,
    /// The compiled body.
    pub code: CProc,
}

/// A compiled object.
#[derive(Debug, Clone)]
pub struct CObject {
    /// Object name.
    pub name: String,
    /// Defaults for the shared data part (environment slots).
    pub env: Vec<DefaultVal>,
    /// Entries, in builder declaration order (= `ObjInfo::entries`
    /// order, so entry indices agree with the core's).
    pub entries: Vec<CEntry>,
    /// The compiled manager, if any.
    pub manager: Option<CProc>,
    /// Initialization code, if any.
    pub init: Option<CProc>,
    /// Base of this object's token table: per entry, the running sum of
    /// array sizes (compiled managers key accepted/ready tokens by
    /// `tok_base[entry] + slot` into a flat vector).
    pub tok_base: Vec<usize>,
    /// Total token slots (sum of array sizes).
    pub tok_len: usize,
}

/// A fully lowered program.
#[derive(Debug, Clone)]
pub struct CUnit {
    /// Objects, in implementation order (= `Checked::objects` order).
    pub objects: Vec<CObject>,
    /// The compiled `main` block, if any.
    pub main: Option<CProc>,
    /// Per object, the base index of its entries in the flat entry-id
    /// table.
    pub flat_base: Vec<usize>,
    /// Total entries across all objects (entry-id table length).
    pub total_entries: usize,
}
