//! Compiled backend: executes lowered IR ([`crate::ir`]) directly on the
//! fast runtime.
//!
//! Where the interpreter pays a `Mutex<HashMap<String, ObjectHandle>>`
//! lookup, a string-keyed entry resolution, and a `HashMap<String,
//! Value>` frame per call, the compiled executor works entirely over
//! pre-resolved indices:
//!
//! * entry calls go through interned tables —
//!   `handle.call_id(entry_id, valvec)` with zero hashing and zero locks
//!   on the lookup path (`OnceLock` reads are a plain atomic load);
//! * activation frames are flat `Vec<Value>`s indexed by slot;
//! * manager selects build guards with [`Guard::accept_idx`] /
//!   [`Guard::await_idx`] and key their accepted/ready tokens into flat
//!   vectors by `AcceptedCall::entry_index()` — no string ever crosses
//!   the select hot path;
//! * `#P` counts use [`ManagerCtx::pending_idx`] / `GuardView::pending_idx`.
//!
//! Emitted objects are ordinary `ObjectBuilder` products: supervision,
//! deadlines/retry (`call_id_deadline`/`call_id_retry` on
//! [`Compiled::handle`]), `ShardedBuilder` spread, and the SPSC lane all
//! apply unchanged.
//!
//! Observable behaviour (print output, error positions, channel and
//! default-value semantics) matches the interpreter; the equivalence is
//! pinned program-for-program by `tests/interpreter_equivalence.rs`.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use alps_core::{
    AcceptedCall, AlpsError, ChanValue, EntryDef, Guard, ManagerCtx, ObjectBuilder, ObjectHandle,
    PoolMode, ReadyEntry, Selected, ValVec, Value,
};
use alps_runtime::Runtime;
use parking_lot::Mutex;

use crate::ast::{BinOp, UnOp};
use crate::check::Checked;
use crate::interp::{binop, rerr, to_slot0, Output, RunError};
use crate::ir::*;
use crate::lower::lower;
use crate::token::Pos;

/// Interned runtime tables filled during spawn: one handle per object,
/// one [`alps_core::EntryId`] per entry (flat, `CUnit::flat_base`
/// indexed), one environment vector per object.
struct Tables {
    handles: Vec<OnceLock<ObjectHandle>>,
    ids: Vec<OnceLock<alps_core::EntryId>>,
    envs: Vec<Arc<Mutex<Vec<Value>>>>,
}

/// The compiled program plus its runtime linkage.
struct Prog {
    unit: CUnit,
    tables: Tables,
    rt: Runtime,
    out: Output,
}

/// A spawned compiled program. Objects are live; [`Compiled::handle`]
/// exposes them for direct embedded-API use (deadline calls, retry,
/// benchmarking), [`Compiled::run_main`] drives the program's `main`
/// block, [`Compiled::shutdown`] tears the objects down.
pub struct Compiled {
    prog: Arc<Prog>,
}

impl Compiled {
    /// Handle of a spawned object, for direct `call_id`/deadline/retry
    /// use from Rust.
    pub fn handle(&self, object: &str) -> Option<ObjectHandle> {
        let oi = self
            .prog
            .unit
            .objects
            .iter()
            .position(|o| o.name == object)?;
        self.prog.tables.handles[oi].get().cloned()
    }

    /// Run the program's `main` block (no-op without one).
    ///
    /// # Errors
    ///
    /// [`RunError::Run`] for runtime failures.
    pub fn run_main(&self) -> Result<(), RunError> {
        let Some(main) = &self.prog.unit.main else {
            return Ok(());
        };
        let ex = Ex {
            p: &self.prog,
            obj: None,
        };
        let mut frame = new_frame(main, std::iter::empty());
        ex.exec_block(&mut frame, &main.body, None)
            .map(|_| ())
            .map_err(RunError::Run)
    }

    /// Shut all objects down (idempotent).
    pub fn shutdown(&self) {
        for h in &self.prog.tables.handles {
            if let Some(h) = h.get() {
                h.shutdown();
            }
        }
    }
}

/// Compile and spawn a checked program's objects on the runtime,
/// without running `main`. Init code runs here, in declaration order,
/// exactly as in the interpreter.
///
/// # Errors
///
/// [`RunError::Run`] if init code fails or an object cannot spawn.
pub fn spawn_compiled(
    rt: &Runtime,
    checked: &Arc<Checked>,
    out: Output,
) -> Result<Compiled, RunError> {
    spawn_compiled_with_pool(rt, checked, out, PoolMode::PerSlot)
}

/// As [`spawn_compiled`], with an explicit process-pool strategy.
///
/// # Errors
///
/// As [`spawn_compiled`].
pub fn spawn_compiled_with_pool(
    rt: &Runtime,
    checked: &Arc<Checked>,
    out: Output,
    pool: PoolMode,
) -> Result<Compiled, RunError> {
    let unit = lower(checked);
    let n_obj = unit.objects.len();
    let total = unit.total_entries;
    let envs = unit
        .objects
        .iter()
        .map(|o| Arc::new(Mutex::new(o.env.iter().map(DefaultVal::make).collect())))
        .collect();
    let prog = Arc::new(Prog {
        unit,
        tables: Tables {
            handles: (0..n_obj).map(|_| OnceLock::new()).collect(),
            ids: (0..total).map(|_| OnceLock::new()).collect(),
            envs,
        },
        rt: rt.clone(),
        out,
    });
    for oi in 0..n_obj {
        // Initialization code first, then the manager comes up (paper:
        // "its initialization code is first executed and then its
        // manager process is implicitly created").
        if let Some(init) = &prog.unit.objects[oi].init {
            let ex = Ex {
                p: &prog,
                obj: Some(oi),
            };
            let mut frame = new_frame(init, std::iter::empty());
            ex.exec_block(&mut frame, &init.body, None)
                .map_err(RunError::Run)?;
        }
        let cobj = &prog.unit.objects[oi];
        let mut builder = ObjectBuilder::new(&cobj.name).pool(pool);
        for (ei, ce) in cobj.entries.iter().enumerate() {
            let mut def = EntryDef::new(&ce.name)
                .params(ce.public_params.iter().cloned())
                .results(ce.public_results.iter().cloned())
                .hidden_params(ce.hidden_params.iter().cloned())
                .hidden_results(ce.hidden_results.iter().cloned())
                .array(ce.array);
            if ce.local {
                def = def.local();
            }
            if let Some((kp, kr)) = ce.intercept {
                def = def.intercept_params(kp).intercept_results(kr);
            }
            let p2 = Arc::clone(&prog);
            def = def.body(move |_ctx, args| {
                let ex = Ex {
                    p: &p2,
                    obj: Some(oi),
                };
                let ce = &p2.unit.objects[oi].entries[ei];
                let mut frame = new_frame(&ce.code, args);
                match ex.exec_block(&mut frame, &ce.code.body, None)? {
                    Flow::Return(vals) => Ok(vals),
                    Flow::Normal if ce.code.result_count == 0 => Ok(vec![]),
                    Flow::Normal => Err(rerr(
                        ce.code.pos,
                        format!(
                            "procedure `{}` ended without returning {} value(s)",
                            ce.name, ce.code.result_count
                        ),
                    )),
                }
            });
            builder = builder.entry(def);
        }
        if cobj.manager.is_some() {
            let p2 = Arc::clone(&prog);
            builder = builder.manager(move |mctx| {
                let ex = Ex {
                    p: &p2,
                    obj: Some(oi),
                };
                let cobj = &p2.unit.objects[oi];
                let mgr = cobj.manager.as_ref().expect("manager present");
                let mut frame = new_frame(mgr, std::iter::empty());
                let toks = RefCell::new(Toks::new(cobj.tok_len));
                let cm = CMgr {
                    ctx: mctx,
                    toks: &toks,
                    tok_base: &cobj.tok_base,
                };
                ex.exec_block(&mut frame, &mgr.body, Some(&cm)).map(|_| ())
            });
        }
        let handle = builder.spawn(rt).map_err(RunError::Run)?;
        let base = prog.unit.flat_base[oi];
        for (ei, ce) in cobj.entries.iter().enumerate() {
            let id = handle.entry_id(&ce.name).map_err(RunError::Run)?;
            let _ = prog.tables.ids[base + ei].set(id);
        }
        let _ = prog.tables.handles[oi].set(handle);
    }
    Ok(Compiled { prog })
}

/// Compile a checked program and run it on the given runtime: lower to
/// IR, spawn the objects as direct fast-runtime objects, run `main`,
/// tear down. The compiled counterpart of
/// [`crate::interp::run_checked`].
///
/// # Errors
///
/// [`RunError::Run`] for runtime failures.
pub fn run_compiled(rt: &Runtime, checked: &Arc<Checked>, out: Output) -> Result<(), RunError> {
    run_compiled_with_pool(rt, checked, out, PoolMode::PerSlot)
}

/// As [`run_compiled`], with an explicit process-pool strategy.
///
/// # Errors
///
/// As [`run_compiled`].
pub fn run_compiled_with_pool(
    rt: &Runtime,
    checked: &Arc<Checked>,
    out: Output,
    pool: PoolMode,
) -> Result<(), RunError> {
    let c = spawn_compiled_with_pool(rt, checked, out, pool)?;
    let result = c.run_main();
    c.shutdown();
    result
}

/// Parse, check, compile, and run an ALPS source string.
///
/// # Errors
///
/// [`RunError::Lang`] for syntax/type errors, [`RunError::Run`] for
/// runtime failures.
pub fn run_source_compiled(rt: &Runtime, src: &str, out: Output) -> Result<(), RunError> {
    let checked = Arc::new(crate::check::check(crate::parser::parse(src)?)?);
    run_compiled(rt, &checked, out)
}

// ---- executor ----------------------------------------------------------

/// Build an activation frame: argument slots, declared-local defaults,
/// `Unit` fillers for loop/bind slots.
fn new_frame(cp: &CProc, args: impl IntoIterator<Item = Value>) -> Vec<Value> {
    let mut f = Vec::with_capacity(cp.frame_size);
    f.extend(args);
    f.truncate(cp.params);
    while f.len() < cp.params {
        f.push(Value::Unit);
    }
    for d in &cp.defaults {
        f.push(d.make());
    }
    while f.len() < cp.frame_size {
        f.push(Value::Unit);
    }
    f
}

/// How the current frame is borrowed: statement execution writes;
/// guard-condition closures read only.
enum Fr<'a> {
    Mut(&'a mut Vec<Value>),
    Ref(&'a [Value]),
}

/// Source for `#P` evaluation.
enum Pd<'a> {
    None,
    Mgr(&'a ManagerCtx),
    View(&'a alps_core::GuardView<'a>),
}

/// Manager-side token tables, flat over `tok_base[entry] + slot`.
struct Toks {
    accepted: Vec<Option<AcceptedCall>>,
    ready: Vec<Option<ReadyEntry>>,
}

impl Toks {
    fn new(len: usize) -> Toks {
        Toks {
            accepted: (0..len).map(|_| None).collect(),
            ready: (0..len).map(|_| None).collect(),
        }
    }
}

struct CMgr<'a> {
    ctx: &'a ManagerCtx,
    toks: &'a RefCell<Toks>,
    tok_base: &'a [usize],
}

enum Flow {
    Normal,
    Return(Vec<Value>),
}

enum SelOut {
    Ran(Flow),
    AllClosed,
}

/// The executor: a program reference plus the current object (if any).
#[derive(Clone, Copy)]
struct Ex<'p> {
    p: &'p Prog,
    obj: Option<usize>,
}

impl<'p> Ex<'p> {
    fn cobj(&self) -> &'p CObject {
        &self.p.unit.objects[self.obj.expect("object scope")]
    }

    fn env(&self) -> &'p Arc<Mutex<Vec<Value>>> {
        &self.p.tables.envs[self.obj.expect("object scope")]
    }

    fn handle(&self, oi: usize, pos: Pos) -> Result<&'p ObjectHandle, AlpsError> {
        self.p.tables.handles[oi].get().ok_or_else(|| {
            rerr(
                pos,
                format!("object `{}` is not available", self.p.unit.objects[oi].name),
            )
        })
    }

    fn entry_id(&self, flat: usize, pos: Pos) -> Result<alps_core::EntryId, AlpsError> {
        self.p.tables.ids[flat]
            .get()
            .copied()
            .ok_or_else(|| rerr(pos, "entry is not available yet"))
    }

    // ---- variables -----------------------------------------------------

    fn read(
        &self,
        fr: &Fr<'_>,
        ov: Option<&[Value]>,
        r: VarRef,
        pos: Pos,
    ) -> Result<Value, AlpsError> {
        match r {
            VarRef::Overlay(i) => ov
                .and_then(|o| o.get(i))
                .cloned()
                .ok_or_else(|| rerr(pos, "guard value not available")),
            VarRef::Frame(i) => Ok(match fr {
                Fr::Mut(f) => f[i].clone(),
                Fr::Ref(f) => f[i].clone(),
            }),
            VarRef::Env(i) => Ok(self.env().lock()[i].clone()),
        }
    }

    fn write(&self, fr: &mut Fr<'_>, r: VarRef, v: Value, pos: Pos) -> Result<(), AlpsError> {
        match r {
            VarRef::Frame(i) => match fr {
                Fr::Mut(f) => {
                    f[i] = v;
                    Ok(())
                }
                Fr::Ref(_) => Err(rerr(pos, "cannot assign inside a guard condition")),
            },
            VarRef::Env(i) => {
                self.env().lock()[i] = v;
                Ok(())
            }
            VarRef::Overlay(_) => Err(rerr(pos, "cannot assign inside a guard condition")),
        }
    }

    /// Mutate the value behind a resolved variable in place (no
    /// read-clone-write round trip). Guard-condition contexts only hold
    /// the frame read-only and reject the write, matching the
    /// interpreter's guard-assignment rule.
    fn mutate<R>(
        &self,
        fr: &mut Fr<'_>,
        r: VarRef,
        pos: Pos,
        f: impl FnOnce(&mut Value) -> Result<R, AlpsError>,
    ) -> Result<R, AlpsError> {
        match r {
            VarRef::Frame(i) => match fr {
                Fr::Mut(fm) => f(&mut fm[i]),
                Fr::Ref(_) => Err(rerr(pos, "cannot assign inside a guard condition")),
            },
            VarRef::Env(i) => f(&mut self.env().lock()[i]),
            VarRef::Overlay(_) => Err(rerr(pos, "cannot assign inside a guard condition")),
        }
    }

    /// Borrow the value behind a resolved variable in place. Read-only
    /// counterpart of [`Self::mutate`]: `get`/`len` on a list variable
    /// inspect the slot directly instead of cloning the whole list the
    /// way a by-value read would.
    fn peek<R>(
        &self,
        fr: &Fr<'_>,
        ov: Option<&[Value]>,
        r: VarRef,
        pos: Pos,
        f: impl FnOnce(&Value) -> Result<R, AlpsError>,
    ) -> Result<R, AlpsError> {
        match r {
            VarRef::Overlay(i) => match ov.and_then(|o| o.get(i)) {
                Some(v) => f(v),
                None => Err(rerr(pos, "guard value not available")),
            },
            VarRef::Frame(i) => match fr {
                Fr::Mut(fm) => f(&fm[i]),
                Fr::Ref(fm) => f(&fm[i]),
            },
            VarRef::Env(i) => f(&self.env().lock()[i]),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn eval(
        &self,
        fr: &mut Fr<'_>,
        ov: Option<&[Value]>,
        pd: &Pd<'_>,
        e: &CExpr,
    ) -> Result<Value, AlpsError> {
        match e {
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Var(r, pos) => self.read(fr, ov, *r, *pos),
            CExpr::Pending(entry, pos) => {
                let n = match pd {
                    Pd::Mgr(m) => m
                        .pending_idx(*entry)
                        .map_err(|e| rerr(*pos, e.to_string()))?,
                    Pd::View(v) => v.pending_idx(*entry),
                    Pd::None => return Err(rerr(*pos, "`#P` outside the manager")),
                };
                Ok(Value::Int(n as i64))
            }
            CExpr::Unary(op, inner, pos) => {
                let v = self.eval(fr, ov, pd, inner)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(rerr(*pos, format!("bad operand {v} for {op:?}"))),
                }
            }
            CExpr::Binary(op, a, b, pos) => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    let va = self.eval(fr, ov, pd, a)?.as_bool()?;
                    let short = match op {
                        BinOp::And => !va,
                        BinOp::Or => va,
                        _ => unreachable!(),
                    };
                    if short {
                        return Ok(Value::Bool(va));
                    }
                    let vb = self.eval(fr, ov, pd, b)?.as_bool()?;
                    return Ok(Value::Bool(vb));
                }
                let va = self.eval(fr, ov, pd, a)?;
                let vb = self.eval(fr, ov, pd, b)?;
                binop(*op, va, vb, *pos)
            }
            // Builtins with a statically single-valued result evaluate
            // straight to a `Value`; the zero-valued ones still run (for
            // their effect) before the arity error, like the generic path.
            CExpr::CallBuiltin(b, args, pos) => {
                if let Some(v) = self.eval_builtin1(fr, ov, pd, b, args, *pos)? {
                    return Ok(v);
                }
                let vs = self.eval_builtin(fr, ov, pd, b, args, *pos)?;
                Err(rerr(*pos, format!("expected one value, got {}", vs.len())))
            }
            CExpr::CallEntry {
                obj,
                flat,
                args,
                pos,
            } => {
                let vv = self.eval_args(fr, ov, pd, args)?;
                let h = self.handle(*obj, *pos)?;
                let id = self.entry_id(*flat, *pos)?;
                one(h.call_id(id, vv)?, *pos)
            }
            CExpr::CallSelf { flat, args, pos } => {
                let vv = self.eval_args(fr, ov, pd, args)?;
                let h = self.handle(self.obj.expect("object scope"), *pos)?;
                let id = self.entry_id(*flat, *pos)?;
                one(h.call_from_inside_id(id, vv)?, *pos)
            }
            CExpr::CallInline { pos, .. } => {
                let vs = self.eval_call(fr, ov, pd, e)?;
                match vs.len() {
                    1 => Ok(vs.into_iter().next().expect("len checked")),
                    n => Err(rerr(*pos, format!("expected one value, got {n}"))),
                }
            }
        }
    }

    fn eval_args(
        &self,
        fr: &mut Fr<'_>,
        ov: Option<&[Value]>,
        pd: &Pd<'_>,
        args: &[CExpr],
    ) -> Result<ValVec, AlpsError> {
        let mut vv = ValVec::new();
        for a in args {
            vv.push(self.eval(fr, ov, pd, a)?);
        }
        Ok(vv)
    }

    /// Evaluate a call expression to its (possibly multi-valued) result
    /// list. Non-call expressions yield a single value.
    fn eval_call(
        &self,
        fr: &mut Fr<'_>,
        ov: Option<&[Value]>,
        pd: &Pd<'_>,
        e: &CExpr,
    ) -> Result<Vec<Value>, AlpsError> {
        match e {
            CExpr::CallEntry {
                obj,
                flat,
                args,
                pos,
            } => {
                let vv = self.eval_args(fr, ov, pd, args)?;
                let h = self.handle(*obj, *pos)?;
                let id = self.entry_id(*flat, *pos)?;
                Ok(h.call_id(id, vv)?.into_iter().collect())
            }
            CExpr::CallSelf { flat, args, pos } => {
                let vv = self.eval_args(fr, ov, pd, args)?;
                let h = self.handle(self.obj.expect("object scope"), *pos)?;
                let id = self.entry_id(*flat, *pos)?;
                Ok(h.call_from_inside_id(id, vv)?.into_iter().collect())
            }
            CExpr::CallInline { entry, args, pos } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(fr, ov, pd, a)?);
                }
                self.run_inline(*entry, vals, *pos)
            }
            CExpr::CallBuiltin(b, args, pos) => self.eval_builtin(fr, ov, pd, b, args, *pos),
            other => Ok(vec![self.eval(fr, ov, pd, other)?]),
        }
    }

    /// Run a non-intercepted sibling procedure inline in the current
    /// process.
    fn run_inline(
        &self,
        entry: usize,
        args: Vec<Value>,
        _pos: Pos,
    ) -> Result<Vec<Value>, AlpsError> {
        let ce = &self.cobj().entries[entry];
        let mut frame = new_frame(&ce.code, args);
        match self.exec_block(&mut frame, &ce.code.body, None)? {
            Flow::Return(vals) => Ok(vals),
            Flow::Normal if ce.code.result_count == 0 => Ok(vec![]),
            Flow::Normal => Err(rerr(
                ce.code.pos,
                format!(
                    "procedure `{}` ended without returning {} value(s)",
                    ce.name, ce.code.result_count
                ),
            )),
        }
    }

    /// Evaluate a statically single-valued builtin straight to its
    /// `Value` — no intermediate `Vec` — or return `None` for the
    /// zero-valued ones (`print`, `sleep`, `push`, `set`).
    ///
    /// `get`/`len` on a plain variable borrow the list in place via
    /// [`Self::peek`]; evaluating the operand by value would clone the
    /// whole list per access, which is exactly the O(len) round trip the
    /// interpreter's string-keyed frames cannot avoid.
    fn eval_builtin1(
        &self,
        fr: &mut Fr<'_>,
        ov: Option<&[Value]>,
        pd: &Pd<'_>,
        b: &Builtin,
        args: &[CExpr],
        pos: Pos,
    ) -> Result<Option<Value>, AlpsError> {
        Ok(Some(match b {
            Builtin::Str => {
                let v = self.eval(fr, ov, pd, &args[0])?;
                Value::str(v.to_string())
            }
            Builtin::Len => {
                let count = |v: &Value| match v {
                    Value::List(xs) => Ok(xs.len() as i64),
                    Value::Str(s) => Ok(s.chars().count() as i64),
                    other => Err(rerr(pos, format!("len of {other}"))),
                };
                let n = match &args[0] {
                    CExpr::Var(r, vpos) => self.peek(fr, ov, *r, *vpos, count)?,
                    e => count(&self.eval(fr, ov, pd, e)?)?,
                };
                Value::Int(n)
            }
            Builtin::Get => {
                // A variable operand never errors and has no effects, so
                // hoisting the index evaluation is unobservable and lets
                // the list stay borrowed in place instead of being cloned.
                if let CExpr::Var(r, vpos) = &args[0] {
                    let i = self.eval(fr, ov, pd, &args[1])?.as_int()?;
                    self.peek(fr, ov, *r, *vpos, |v| match v {
                        Value::List(xs) => {
                            let idx = list_index(i, xs.len(), pos)?;
                            Ok(xs[idx].clone())
                        }
                        other => Err(rerr(pos, format!("get from {other}"))),
                    })?
                } else {
                    let list = self.eval(fr, ov, pd, &args[0])?;
                    let i = self.eval(fr, ov, pd, &args[1])?.as_int()?;
                    match list {
                        Value::List(xs) => {
                            let idx = list_index(i, xs.len(), pos)?;
                            xs[idx].clone()
                        }
                        other => return Err(rerr(pos, format!("get from {other}"))),
                    }
                }
            }
            Builtin::Now => Value::Int(self.p.rt.now() as i64),
            Builtin::Remove(target) => {
                let i = self.eval(fr, ov, pd, &args[0])?.as_int()?;
                self.mutate(fr, *target, pos, |list| match list {
                    Value::List(xs) => {
                        let idx = list_index(i, xs.len(), pos)?;
                        Ok(xs.remove(idx))
                    }
                    other => Err(rerr(pos, format!("remove from {other}"))),
                })?
            }
            Builtin::Pop(target) => self.mutate(fr, *target, pos, |list| match list {
                Value::List(xs) => {
                    if xs.is_empty() {
                        return Err(rerr(pos, "pop from an empty list"));
                    }
                    Ok(xs.remove(0))
                }
                other => Err(rerr(pos, format!("pop from {other}"))),
            })?,
            Builtin::Print | Builtin::Sleep | Builtin::Push(_) | Builtin::Set(_) => {
                return Ok(None)
            }
        }))
    }

    fn eval_builtin(
        &self,
        fr: &mut Fr<'_>,
        ov: Option<&[Value]>,
        pd: &Pd<'_>,
        b: &Builtin,
        args: &[CExpr],
        pos: Pos,
    ) -> Result<Vec<Value>, AlpsError> {
        if let Some(v) = self.eval_builtin1(fr, ov, pd, b, args, pos)? {
            return Ok(vec![v]);
        }
        match b {
            Builtin::Print => {
                let mut line = String::new();
                for a in args {
                    use std::fmt::Write as _;
                    let _ = write!(line, "{}", self.eval(fr, ov, pd, a)?);
                }
                self.p.out.line(&line);
                Ok(vec![])
            }
            Builtin::Sleep => {
                let t = self.eval(fr, ov, pd, &args[0])?.as_int()?;
                self.p.rt.sleep(t.max(0) as u64);
                Ok(vec![])
            }
            // The mutating list builtins write through the resolved slot
            // in place. The interpreter's string-keyed frames force a
            // read-clone-modify-write round trip (a full list copy per
            // op); resolved `VarRef`s make the aliasing obvious, so the
            // compiled path skips the copy entirely.
            Builtin::Push(target) => {
                let item = self.eval(fr, ov, pd, &args[0])?;
                self.mutate(fr, *target, pos, |list| match list {
                    Value::List(xs) => {
                        xs.push(item);
                        Ok(vec![])
                    }
                    other => Err(rerr(pos, format!("push to {other}"))),
                })
            }
            Builtin::Set(target) => {
                let i = self.eval(fr, ov, pd, &args[0])?.as_int()?;
                let item = self.eval(fr, ov, pd, &args[1])?;
                self.mutate(fr, *target, pos, |list| match list {
                    Value::List(xs) => {
                        let idx = list_index(i, xs.len(), pos)?;
                        xs[idx] = item;
                        Ok(vec![])
                    }
                    other => Err(rerr(pos, format!("set on {other}"))),
                })
            }
            Builtin::Str
            | Builtin::Len
            | Builtin::Get
            | Builtin::Now
            | Builtin::Remove(_)
            | Builtin::Pop(_) => {
                unreachable!("single-valued builtins are handled by eval_builtin1")
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn exec_block(
        &self,
        frame: &mut Vec<Value>,
        stmts: &[CStmt],
        mgr: Option<&CMgr<'_>>,
    ) -> Result<Flow, AlpsError> {
        for s in stmts {
            match self.exec_stmt(frame, s, mgr)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_stmt(
        &self,
        frame: &mut Vec<Value>,
        s: &CStmt,
        mgr: Option<&CMgr<'_>>,
    ) -> Result<Flow, AlpsError> {
        let pd = match mgr {
            Some(m) => Pd::Mgr(m.ctx),
            None => Pd::None,
        };
        match s {
            CStmt::Skip => Ok(Flow::Normal),
            CStmt::Assign(targets, e, pos) => {
                // Single-target assignment from a statically single-valued
                // expression skips the Vec round trip. Entry/inline calls
                // stay on the generic path so multi-value arity mismatches
                // keep their "n value(s) for m target(s)" report.
                if targets.len() == 1 && single_valued(e) {
                    let v = self.eval(&mut Fr::Mut(frame), None, &pd, e)?;
                    self.write(&mut Fr::Mut(frame), targets[0], v, *pos)?;
                    return Ok(Flow::Normal);
                }
                let vals = self.eval_call(&mut Fr::Mut(frame), None, &pd, e)?;
                if vals.len() != targets.len() {
                    return Err(rerr(
                        *pos,
                        format!("{} value(s) for {} target(s)", vals.len(), targets.len()),
                    ));
                }
                for (t, v) in targets.iter().zip(vals) {
                    self.write(&mut Fr::Mut(frame), *t, v, *pos)?;
                }
                Ok(Flow::Normal)
            }
            CStmt::Expr(e) => {
                // Builtins in statement position run through the
                // single-value evaluator when they can (`pop`, `remove`
                // with a discarded result), falling back for the
                // zero-valued ones; either way no result Vec is built.
                if let CExpr::CallBuiltin(b, args, pos) = e {
                    let fast = self.eval_builtin1(&mut Fr::Mut(frame), None, &pd, b, args, *pos)?;
                    if fast.is_none() {
                        let _ = self.eval_builtin(&mut Fr::Mut(frame), None, &pd, b, args, *pos)?;
                    }
                    return Ok(Flow::Normal);
                }
                let _ = self.eval_call(&mut Fr::Mut(frame), None, &pd, e)?;
                Ok(Flow::Normal)
            }
            CStmt::If(arms, els) => {
                for (c, body) in arms {
                    if self.eval(&mut Fr::Mut(frame), None, &pd, c)?.as_bool()? {
                        return self.exec_block(frame, body, mgr);
                    }
                }
                self.exec_block(frame, els, mgr)
            }
            CStmt::While(c, body) => loop {
                if !self.eval(&mut Fr::Mut(frame), None, &pd, c)?.as_bool()? {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(frame, body, mgr)? {
                    Flow::Normal => {}
                    ret => return Ok(ret),
                }
            },
            CStmt::For(slot, lo, hi, body) => {
                let a = self.eval(&mut Fr::Mut(frame), None, &pd, lo)?.as_int()?;
                let b = self.eval(&mut Fr::Mut(frame), None, &pd, hi)?.as_int()?;
                for i in a..=b {
                    frame[*slot] = Value::Int(i);
                    match self.exec_block(frame, body, mgr)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Send(chan, args, pos) => {
                let c = self
                    .eval(&mut Fr::Mut(frame), None, &pd, chan)?
                    .as_chan()
                    .map_err(|_| rerr(*pos, "send on a non-channel"))?
                    .clone();
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(&mut Fr::Mut(frame), None, &pd, a)?);
                }
                c.send(&self.p.rt, vals)?;
                Ok(Flow::Normal)
            }
            CStmt::Receive(chan, binds, pos) => {
                let c = self
                    .eval(&mut Fr::Mut(frame), None, &pd, chan)?
                    .as_chan()
                    .map_err(|_| rerr(*pos, "receive on a non-channel"))?
                    .clone();
                let msg = match mgr {
                    Some(m) => m.ctx.receive(&c)?,
                    None => c.recv(&self.p.rt)?,
                };
                for (t, v) in binds.iter().zip(msg) {
                    self.write(&mut Fr::Mut(frame), *t, v, *pos)?;
                }
                Ok(Flow::Normal)
            }
            CStmt::Select(arms, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "select outside manager"))?;
                match self.run_select(frame, arms, m)? {
                    SelOut::Ran(flow) => Ok(flow),
                    SelOut::AllClosed => Err(rerr(*pos, "select failed: every guard closed")),
                }
            }
            CStmt::LoopSel(arms, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "loop outside manager"))?;
                loop {
                    match self.run_select(frame, arms, m)? {
                        SelOut::Ran(Flow::Normal) => {}
                        SelOut::Ran(ret) => return Ok(ret),
                        SelOut::AllClosed => return Ok(Flow::Normal),
                    }
                }
            }
            CStmt::Par(branches, pos) => {
                let mut calls: Vec<Box<dyn FnOnce() -> Result<(), AlpsError> + Send>> =
                    Vec::with_capacity(branches.len());
                for br in branches {
                    calls.push(self.par_call(frame, &pd, br, *pos)?);
                }
                let results = alps_runtime::par(&self.p.rt, calls).map_err(AlpsError::Runtime)?;
                for r in results {
                    r?;
                }
                Ok(Flow::Normal)
            }
            CStmt::ParFor {
                var,
                lo,
                hi,
                branch,
                pos,
            } => {
                let a = self.eval(&mut Fr::Mut(frame), None, &pd, lo)?.as_int()?;
                let b = self.eval(&mut Fr::Mut(frame), None, &pd, hi)?.as_int()?;
                let mut calls: Vec<Box<dyn FnOnce() -> Result<(), AlpsError> + Send>> = Vec::new();
                for i in a..=b {
                    frame[*var] = Value::Int(i);
                    calls.push(self.par_call(frame, &pd, branch, *pos)?);
                }
                let results = alps_runtime::par(&self.p.rt, calls).map_err(AlpsError::Runtime)?;
                for r in results {
                    r?;
                }
                Ok(Flow::Normal)
            }
            CStmt::Return(args, _) => {
                // `return` unwinds to the end of the body and the frame
                // dies with it, so distinct returned frame variables move
                // out of their slots instead of being cloned — a long
                // message flows back to the caller without an O(len) copy.
                if let Some(slots) = distinct_frame_vars(args) {
                    let mut vals = Vec::with_capacity(slots.len());
                    for s in slots {
                        vals.push(std::mem::replace(&mut frame[s], Value::Unit));
                    }
                    return Ok(Flow::Return(vals));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(&mut Fr::Mut(frame), None, &pd, a)?);
                }
                Ok(Flow::Return(vals))
            }
            CStmt::Accept {
                entry,
                slot,
                binds,
                pos,
            } => {
                let m = mgr.ok_or_else(|| rerr(*pos, "accept outside manager"))?;
                let name = &self.cobj().entries[*entry].name;
                let acc = match slot {
                    Some(ix) => {
                        let i = self.eval(&mut Fr::Mut(frame), None, &pd, ix)?.as_int()?;
                        m.ctx.accept_slot(name, to_slot0(i, *pos)?)?
                    }
                    None => m.ctx.accept(name)?,
                };
                for (t, v) in binds.iter().zip(acc.params().to_vec()) {
                    self.write(&mut Fr::Mut(frame), *t, v, *pos)?;
                }
                let ti = m.tok_base[*entry] + acc.slot();
                m.toks.borrow_mut().accepted[ti] = Some(acc);
                Ok(Flow::Normal)
            }
            CStmt::Await {
                entry,
                slot,
                binds,
                pos,
            } => {
                let m = mgr.ok_or_else(|| rerr(*pos, "await outside manager"))?;
                let name = &self.cobj().entries[*entry].name;
                let done = match slot {
                    Some(ix) => {
                        let i = self.eval(&mut Fr::Mut(frame), None, &pd, ix)?.as_int()?;
                        m.ctx.await_slot(name, to_slot0(i, *pos)?)?
                    }
                    None => m.ctx.await_done(name)?,
                };
                let mut vals = done.results().to_vec();
                vals.extend(done.hidden().iter().cloned());
                for (t, v) in binds.iter().zip(vals) {
                    self.write(&mut Fr::Mut(frame), *t, v, *pos)?;
                }
                let ti = m.tok_base[*entry] + done.slot();
                m.toks.borrow_mut().ready[ti] = Some(done);
                Ok(Flow::Normal)
            }
            CStmt::Start {
                entry,
                slot,
                args,
                intercept_params,
                pos,
            } => {
                let m = mgr.ok_or_else(|| rerr(*pos, "start outside manager"))?;
                let s0 = self.resolve_tok(frame, &pd, m, *entry, slot.as_ref(), true, *pos)?;
                let acc = m.toks.borrow_mut().accepted[m.tok_base[*entry] + s0]
                    .take()
                    .ok_or_else(|| {
                        rerr(
                            *pos,
                            format!("no accepted call on `{}`", self.cobj().entries[*entry].name),
                        )
                    })?;
                if args.is_empty() {
                    m.ctx.start_as_is(acc)?;
                } else {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(&mut Fr::Mut(frame), None, &pd, a)?);
                    }
                    let hidden = vals.split_off(*intercept_params);
                    m.ctx.start(acc, vals, hidden)?;
                }
                Ok(Flow::Normal)
            }
            CStmt::Finish {
                entry,
                slot,
                args,
                pos,
            } => {
                let m = mgr.ok_or_else(|| rerr(*pos, "finish outside manager"))?;
                let s0 = self.resolve_tok(frame, &pd, m, *entry, slot.as_ref(), false, *pos)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(&mut Fr::Mut(frame), None, &pd, a)?);
                }
                let ti = m.tok_base[*entry] + s0;
                let maybe_ready = m.toks.borrow_mut().ready[ti].take();
                if let Some(done) = maybe_ready {
                    if vals.is_empty() {
                        m.ctx.finish_as_is(done)?;
                    } else {
                        m.ctx.finish(done, vals)?;
                    }
                    return Ok(Flow::Normal);
                }
                let maybe_acc = m.toks.borrow_mut().accepted[ti].take();
                if let Some(acc) = maybe_acc {
                    // Combining: answer without executing.
                    m.ctx.finish_accepted(acc, vals)?;
                    return Ok(Flow::Normal);
                }
                Err(rerr(
                    *pos,
                    format!(
                        "no awaited or accepted call on `{}` to finish",
                        self.cobj().entries[*entry].name
                    ),
                ))
            }
            CStmt::Execute {
                entry,
                slot,
                args,
                intercept_params,
                pos,
            } => {
                let m = mgr.ok_or_else(|| rerr(*pos, "execute outside manager"))?;
                let s0 = self.resolve_tok(frame, &pd, m, *entry, slot.as_ref(), true, *pos)?;
                let acc = m.toks.borrow_mut().accepted[m.tok_base[*entry] + s0]
                    .take()
                    .ok_or_else(|| {
                        rerr(
                            *pos,
                            format!("no accepted call on `{}`", self.cobj().entries[*entry].name),
                        )
                    })?;
                if args.is_empty() {
                    m.ctx.execute(acc)?;
                } else {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(&mut Fr::Mut(frame), None, &pd, a)?);
                    }
                    let hidden = vals.split_off(*intercept_params);
                    m.ctx.execute_with(acc, vals, hidden)?;
                }
                Ok(Flow::Normal)
            }
        }
    }

    /// Package one `par` branch as a runnable call through the interned
    /// tables.
    fn par_call(
        &self,
        frame: &mut Vec<Value>,
        pd: &Pd<'_>,
        br: &CParBranch,
        pos: Pos,
    ) -> Result<Box<dyn FnOnce() -> Result<(), AlpsError> + Send>, AlpsError> {
        let vv = self.eval_args(&mut Fr::Mut(frame), None, pd, &br.args)?;
        let h = self.handle(br.obj, pos)?.clone();
        let id = self.entry_id(br.flat, pos)?;
        Ok(Box::new(move || h.call_id(id, vv).map(|_| ())))
    }

    /// Resolve which 0-based slot a `start/finish/execute P[i]` refers
    /// to. Without an index, the token table must hold exactly one token
    /// for the entry.
    #[allow(clippy::too_many_arguments)]
    fn resolve_tok(
        &self,
        frame: &mut Vec<Value>,
        pd: &Pd<'_>,
        m: &CMgr<'_>,
        entry: usize,
        slot: Option<&CExpr>,
        accepted_only: bool,
        pos: Pos,
    ) -> Result<usize, AlpsError> {
        if let Some(ix) = slot {
            let i = self.eval(&mut Fr::Mut(frame), None, pd, ix)?.as_int()?;
            return to_slot0(i, pos);
        }
        let base = m.tok_base[entry];
        let array = self.cobj().entries[entry].array;
        let toks = m.toks.borrow();
        let mut found: Option<usize> = None;
        let mut count = 0usize;
        for s in 0..array {
            let hits = usize::from(!accepted_only && toks.ready[base + s].is_some())
                + usize::from(toks.accepted[base + s].is_some());
            if hits > 0 {
                count += hits;
                found = Some(s);
            }
        }
        let name = &self.cobj().entries[entry].name;
        match (count, found) {
            (1, Some(s)) => Ok(s),
            (0, _) => Err(rerr(pos, format!("no pending token for `{name}`"))),
            _ => Err(rerr(
                pos,
                format!(
                    "ambiguous `{name}`: several array elements are in progress; write `{name}[i]`"
                ),
            )),
        }
    }

    // ---- select --------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_select(
        &self,
        frame: &mut Vec<Value>,
        arms: &[CGuarded],
        m: &CMgr<'_>,
    ) -> Result<SelOut, AlpsError> {
        // Phase 1: pre-evaluate quantifier bounds, plain-guard
        // conditions, and channel expressions (they may not depend on
        // bound values), with write access to the frame.
        struct Meta {
            bounds: Option<(i64, i64)>,
            chan: Option<ChanValue>,
            plain: bool,
            /// Pre-evaluated acceptance condition for arms whose `when`
            /// is [`const_during_select`]: decided once per round, not
            /// once per pending candidate.
            when_pre: Option<bool>,
        }
        let pd = Pd::Mgr(m.ctx);
        let mut metas = Vec::with_capacity(arms.len());
        for arm in arms {
            let bounds = match &arm.quant {
                Some((_, lo, hi)) => Some((
                    self.eval(&mut Fr::Mut(frame), None, &pd, lo)?.as_int()?,
                    self.eval(&mut Fr::Mut(frame), None, &pd, hi)?.as_int()?,
                )),
                None => None,
            };
            let chan = match &arm.kind {
                CGuardKind::Receive { chan, .. } => Some(
                    self.eval(&mut Fr::Mut(frame), None, &pd, chan)?
                        .as_chan()
                        .map_err(|_| rerr(chan.pos(), "receive on a non-channel"))?
                        .clone(),
                ),
                _ => None,
            };
            let plain = if matches!(arm.kind, CGuardKind::Plain) {
                let w = arm.when.as_ref().expect("parser enforced");
                self.eval(&mut Fr::Mut(frame), None, &pd, w)?.as_bool()?
            } else {
                false
            };
            let when_pre = match &arm.when {
                Some(w) if !matches!(arm.kind, CGuardKind::Plain) && const_during_select(w) => {
                    Some(
                        self.eval(&mut Fr::Mut(frame), None, &pd, w)
                            .and_then(|v| v.as_bool())
                            .unwrap_or(false),
                    )
                }
                _ => None,
            };
            metas.push(Meta {
                bounds,
                chan,
                plain,
                when_pre,
            });
        }
        // Phase 2: build the guards, borrowing the frame read-only for
        // the acceptance-condition and priority closures. The overlay is
        // a flat vector: quantifier value (if any), then the candidate's
        // bound values in order — matching the Overlay slots assigned at
        // lowering time.
        let fro: &[Value] = frame;
        let ex = *self;
        let mut guards: Vec<Guard<'_>> = Vec::with_capacity(arms.len());
        for (arm, meta) in arms.iter().zip(&metas) {
            let quantified = arm.quant.is_some();
            let mk_overlay = move |view: &alps_core::GuardView<'_>| -> Vec<Value> {
                let vals = view.values();
                let mut ov = Vec::with_capacity(usize::from(quantified) + vals.len());
                if quantified {
                    ov.push(Value::Int(view.slot() as i64 + 1));
                }
                ov.extend(vals.iter().cloned());
                ov
            };
            let bounds = meta.bounds;
            let in_bounds = move |view: &alps_core::GuardView<'_>| -> bool {
                match bounds {
                    Some((lo, hi)) => {
                        let i = view.slot() as i64 + 1;
                        i >= lo && i <= hi
                    }
                    None => true,
                }
            };
            let mut g = match &arm.kind {
                CGuardKind::Accept { entry, .. } => Guard::accept_idx(*entry),
                CGuardKind::Await { entry, .. } => Guard::await_idx(*entry),
                CGuardKind::Receive { .. } => {
                    Guard::receive(meta.chan.as_ref().expect("receive meta"))
                }
                CGuardKind::Plain => Guard::cond(meta.plain),
            };
            if !matches!(arm.kind, CGuardKind::Plain) {
                g = match &arm.when {
                    Some(_) if meta.when_pre.is_some() => {
                        let pre = meta.when_pre.expect("checked is_some");
                        g.when(move |view| pre && in_bounds(view))
                    }
                    Some(w) => {
                        let needs_ov = uses_overlay(w);
                        g.when(move |view| {
                            if !in_bounds(view) {
                                return false;
                            }
                            let ov = if needs_ov {
                                Some(mk_overlay(view))
                            } else {
                                None
                            };
                            ex.eval(&mut Fr::Ref(fro), ov.as_deref(), &Pd::View(view), w)
                                .and_then(|v| v.as_bool())
                                .unwrap_or(false)
                        })
                    }
                    None => g.when(in_bounds),
                };
            }
            if let Some(pe) = &arm.pri {
                let needs_ov = uses_overlay(pe);
                g = g.pri(move |view| {
                    let ov = if needs_ov {
                        Some(mk_overlay(view))
                    } else {
                        None
                    };
                    ex.eval(&mut Fr::Ref(fro), ov.as_deref(), &Pd::View(view), pe)
                        .and_then(|v| v.as_int())
                        .unwrap_or(0)
                });
            }
            guards.push(g);
        }
        let sel = match m.ctx.select(guards) {
            Ok(s) => s,
            Err(AlpsError::SelectFailed) => return Ok(SelOut::AllClosed),
            Err(e) => return Err(e),
        };
        // Phase 3: commit — bind the quantifier and values, record the
        // token by (entry_index, slot), run the arm body.
        let gi = sel.guard_index();
        let arm = &arms[gi];
        let pos = arm.pos;
        match sel {
            Selected::Accepted { call, .. } => {
                if let Some((q, _, _)) = &arm.quant {
                    frame[*q] = Value::Int(call.slot() as i64 + 1);
                }
                if let CGuardKind::Accept { binds, .. } = &arm.kind {
                    for (t, v) in binds.iter().zip(call.params().to_vec()) {
                        self.write(&mut Fr::Mut(frame), *t, v, pos)?;
                    }
                }
                let ti = m.tok_base[call.entry_index()] + call.slot();
                m.toks.borrow_mut().accepted[ti] = Some(call);
            }
            Selected::Ready { done, .. } => {
                if let Some((q, _, _)) = &arm.quant {
                    frame[*q] = Value::Int(done.slot() as i64 + 1);
                }
                if let CGuardKind::Await { binds, .. } = &arm.kind {
                    let mut vals = done.results().to_vec();
                    vals.extend(done.hidden().iter().cloned());
                    for (t, v) in binds.iter().zip(vals) {
                        self.write(&mut Fr::Mut(frame), *t, v, pos)?;
                    }
                }
                let ti = m.tok_base[done.entry_index()] + done.slot();
                m.toks.borrow_mut().ready[ti] = Some(done);
            }
            Selected::Received { msg, .. } => {
                if let CGuardKind::Receive { binds, .. } = &arm.kind {
                    for (t, v) in binds.iter().zip(msg) {
                        self.write(&mut Fr::Mut(frame), *t, v, pos)?;
                    }
                }
            }
            Selected::Cond { .. } => {}
        }
        let flow = self.exec_block(frame, &arm.body, Some(m))?;
        Ok(SelOut::Ran(flow))
    }
}

/// The frame slots of `args` when every element is a plain frame
/// variable and no slot repeats — the precondition for moving the values
/// out of the frame on `return` instead of cloning them.
fn distinct_frame_vars(args: &[CExpr]) -> Option<Vec<usize>> {
    let mut slots = Vec::with_capacity(args.len());
    for a in args {
        match a {
            CExpr::Var(VarRef::Frame(i), _) if !slots.contains(i) => slots.push(*i),
            _ => return None,
        }
    }
    Some(slots)
}

/// Whether `e` is constant for the duration of one `select` round: only
/// manager-frame variables and literals, no bound values, no `#E`
/// pending counts, no environment reads (a started body may mutate the
/// environment concurrently), no calls. Such a guard condition is
/// evaluated once per round instead of once per pending candidate — the
/// same semantics as an embedded manager capturing its state by value in
/// the `when` closure. Only resolved `VarRef`s make this analysis
/// possible; the interpreter's string-keyed frames cannot tell a frozen
/// manager variable from a live environment variable.
fn const_during_select(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Var(VarRef::Frame(_), _) => true,
        CExpr::Var(_, _) | CExpr::Pending(_, _) => false,
        CExpr::Unary(_, a, _) => const_during_select(a),
        CExpr::Binary(_, a, b, _) => const_during_select(a) && const_during_select(b),
        CExpr::CallEntry { .. }
        | CExpr::CallSelf { .. }
        | CExpr::CallInline { .. }
        | CExpr::CallBuiltin(_, _, _) => false,
    }
}

/// Whether evaluating `e` can read an overlay slot (a guard-bound value
/// or the arm's quantifier). Guard conditions that never do skip
/// building the overlay, which would otherwise clone every bound value —
/// long message payloads included — once per candidate evaluation.
fn uses_overlay(e: &CExpr) -> bool {
    match e {
        CExpr::Var(VarRef::Overlay(_), _) => true,
        CExpr::Const(_) | CExpr::Var(_, _) | CExpr::Pending(_, _) => false,
        CExpr::Unary(_, a, _) => uses_overlay(a),
        CExpr::Binary(_, a, b, _) => uses_overlay(a) || uses_overlay(b),
        CExpr::CallEntry { args, .. }
        | CExpr::CallSelf { args, .. }
        | CExpr::CallInline { args, .. }
        | CExpr::CallBuiltin(_, args, _) => args.iter().any(uses_overlay),
    }
}

/// Whether the expression yields exactly one value on every successful
/// evaluation, so `eval` can replace `eval_call` without changing any
/// arity diagnostics.
fn single_valued(e: &CExpr) -> bool {
    match e {
        CExpr::CallEntry { .. } | CExpr::CallSelf { .. } | CExpr::CallInline { .. } => false,
        CExpr::CallBuiltin(b, _, _) => matches!(
            b,
            Builtin::Str
                | Builtin::Len
                | Builtin::Get
                | Builtin::Now
                | Builtin::Remove(_)
                | Builtin::Pop(_)
        ),
        _ => true,
    }
}

/// Unwrap a call reply that must carry exactly one value, without
/// collecting the `ValVec` into a heap `Vec` first.
fn one(vv: ValVec, pos: Pos) -> Result<Value, AlpsError> {
    match vv.as_slice().len() {
        1 => Ok(vv.into_iter().next().expect("len checked")),
        n => Err(rerr(pos, format!("expected one value, got {n}"))),
    }
}

fn list_index(i: i64, len: usize, pos: Pos) -> Result<usize, AlpsError> {
    usize::try_from(i)
        .ok()
        .filter(|&k| k < len)
        .ok_or_else(|| rerr(pos, format!("index {i} out of bounds (len {len})")))
}
