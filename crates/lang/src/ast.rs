//! Abstract syntax of the ALPS language (see `GRAMMAR.md` in this crate
//! for the concrete grammar and the documented deviations from the
//! paper's informal notation).

use crate::token::Pos;

/// A type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `float`
    Float,
    /// `string`
    Str,
    /// `chan(T1, …, Tn)`
    Chan(Vec<TypeExpr>),
    /// `list(T)`
    List(Box<TypeExpr>),
}

/// `name: Type` formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Position of the name.
    pub pos: Pos,
}

/// A procedure header as written in a definition or implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcHeader {
    /// Procedure name.
    pub name: String,
    /// Hidden-array size: `proc P[1..N](…)`; `None` for a plain proc.
    pub array: Option<i64>,
    /// Formal parameters (in an implementation these may extend the
    /// definition's list with hidden parameters).
    pub params: Vec<Param>,
    /// Result types (`returns (T1, …)`); implementation may append hidden
    /// results.
    pub results: Vec<TypeExpr>,
    /// `local proc …` — not exported (implementation only).
    pub local: bool,
    /// Position of the `proc` keyword.
    pub pos: Pos,
}

/// The definition part of an object: exported headers only.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDef {
    /// Object name.
    pub name: String,
    /// Exported entry headers.
    pub procs: Vec<ProcHeader>,
    /// Position.
    pub pos: Pos,
}

/// One `intercepts` clause item: `P(params; results)` with *counts* of
/// intercepted prefix types resolved during checking.
#[derive(Debug, Clone, PartialEq)]
pub struct InterceptItem {
    /// Entry name.
    pub name: String,
    /// Intercepted parameter prefix types, as written.
    pub params: Vec<TypeExpr>,
    /// Intercepted result prefix types, as written.
    pub results: Vec<TypeExpr>,
    /// Whether a parenthesized list was written at all.
    pub explicit: bool,
    /// Position.
    pub pos: Pos,
}

/// The manager process of an object implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Manager {
    /// The intercepts clause.
    pub intercepts: Vec<InterceptItem>,
    /// Manager-local variables.
    pub vars: Vec<Param>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// A procedure implementation: header + locals + body.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcImpl {
    /// The header (with hidden params/results appended).
    pub header: ProcHeader,
    /// Local variables.
    pub vars: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// The implementation part of an object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectImpl {
    /// Object name (must match a definition).
    pub name: String,
    /// Shared data part (object-level variables).
    pub vars: Vec<Param>,
    /// Procedure implementations (entries and locals).
    pub procs: Vec<ProcImpl>,
    /// Optional manager.
    pub manager: Option<Manager>,
    /// Optional initialization code (`begin …` before `end Name`).
    pub init: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// The `main` block driving a program (an addition over the paper, which
/// never shows a program entry point).
#[derive(Debug, Clone, PartialEq)]
pub struct MainBlock {
    /// Main-local variables.
    pub vars: Vec<Param>,
    /// Statements.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Object definitions.
    pub defs: Vec<ObjectDef>,
    /// Object implementations.
    pub impls: Vec<ObjectImpl>,
    /// The main block, if any.
    pub main: Option<MainBlock>,
}

/// An l-value (assignment / receive target).
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A variable.
    Var(String, Pos),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Float literal.
    Float(f64, Pos),
    /// String literal.
    Str(String, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// `#P` — pending-call count (manager scope).
    Pending(String, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Builtin or object call used as an expression:
    /// `len(xs)`, `X.P(a, b)` (yields the single result or a tuple for
    /// multi-assignment).
    Call(CallTarget, Vec<Expr>, Pos),
}

impl Expr {
    /// Position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Float(_, p)
            | Expr::Str(_, p)
            | Expr::Bool(_, p)
            | Expr::Var(_, p)
            | Expr::Pending(_, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Call(_, _, p) => *p,
        }
    }
}

/// What a call statement/expression targets.
#[derive(Debug, Clone, PartialEq)]
pub enum CallTarget {
    /// `X.P` — entry `P` of object `X`.
    Entry(String, String),
    /// `P` — a local/sibling procedure, or a builtin.
    Plain(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean `not`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (also string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

/// A slot designator on a manager primitive: `P`, or `P[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRef {
    /// Entry name.
    pub entry: String,
    /// Optional index expression (variable bound by a guard quantifier or
    /// any int expression).
    pub index: Option<Expr>,
    /// Position.
    pub pos: Pos,
}

/// Guard kinds in `select`/`loop`.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardKind {
    /// `accept P[i](x, y)` — binds the intercepted parameter prefix.
    Accept {
        /// Entry and optional slot.
        slot: SlotRef,
        /// Targets for intercepted parameters.
        binds: Vec<LValue>,
    },
    /// `await P[i](r, h)` — binds intercepted results then hidden results.
    Await {
        /// Entry and optional slot.
        slot: SlotRef,
        /// Targets for intercepted + hidden results.
        binds: Vec<LValue>,
    },
    /// `receive C(x, y)`.
    Receive {
        /// Channel expression.
        chan: Expr,
        /// Targets for message elements.
        binds: Vec<LValue>,
    },
    /// Pure boolean guard (the `when` expression is in [`Guarded::when`]).
    Plain,
}

/// One guarded alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct Guarded {
    /// Optional quantifier `(i: lo..hi)` over array slots.
    pub quantifier: Option<(String, Expr, Expr)>,
    /// The guard kind.
    pub kind: GuardKind,
    /// Optional acceptance condition `when B` (may use bound values).
    pub when: Option<Expr>,
    /// Optional run-time priority `pri E`.
    pub pri: Option<Expr>,
    /// Statements to run when selected.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x := e` or multi-assignment `x, y := X.P(…)`.
    Assign(Vec<LValue>, Expr, Pos),
    /// A call for effect: `X.P(a)` or `helper(a)` or `print(…)`.
    Call(CallTarget, Vec<Expr>, Pos),
    /// `if … then … elsif … else … end if`.
    If(Vec<(Expr, Vec<Stmt>)>, Vec<Stmt>, Pos),
    /// `while e do … end while`.
    While(Expr, Vec<Stmt>, Pos),
    /// `for i := a to b do … end for`.
    For(String, Expr, Expr, Vec<Stmt>, Pos),
    /// `send C(e1, …)`.
    Send(Expr, Vec<Expr>, Pos),
    /// `receive C(x, …)`.
    Receive(Expr, Vec<LValue>, Pos),
    /// `select G1 => S1 or … end select`.
    Select(Vec<Guarded>, Pos),
    /// `loop G1 => S1 or … end loop` (repeats until all guards closed).
    Loop(Vec<Guarded>, Pos),
    /// `par call and call … end par`.
    Par(Vec<(CallTarget, Vec<Expr>)>, Pos),
    /// `par i = a to b do P(i) end par`.
    ParFor(String, Expr, Expr, CallTarget, Vec<Expr>, Pos),
    /// `return (e1, …)`.
    Return(Vec<Expr>, Pos),
    /// Manager primitive `accept P[i](x, …)` (blocking form).
    Accept(SlotRef, Vec<LValue>, Pos),
    /// Manager primitive `start P[i](e1, …)` — intercepted prefix values
    /// then hidden parameters.
    Start(SlotRef, Vec<Expr>, Pos),
    /// Manager primitive `await P[i](x, …)` (blocking form).
    AwaitStmt(SlotRef, Vec<LValue>, Pos),
    /// Manager primitive `finish P[i](e1, …)` — intercepted result prefix
    /// (or, for combining, the full public result list).
    Finish(SlotRef, Vec<Expr>, Pos),
    /// Manager primitive `execute P[i](e…)` ≡ start; await; finish.
    Execute(SlotRef, Vec<Expr>, Pos),
    /// `skip`.
    Skip(Pos),
}

impl Stmt {
    /// Position of the statement.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Assign(_, _, p)
            | Stmt::Call(_, _, p)
            | Stmt::If(_, _, p)
            | Stmt::While(_, _, p)
            | Stmt::For(_, _, _, _, p)
            | Stmt::Send(_, _, p)
            | Stmt::Receive(_, _, p)
            | Stmt::Select(_, p)
            | Stmt::Loop(_, p)
            | Stmt::Par(_, p)
            | Stmt::ParFor(_, _, _, _, _, p)
            | Stmt::Return(_, p)
            | Stmt::Accept(_, _, p)
            | Stmt::Start(_, _, p)
            | Stmt::AwaitStmt(_, _, p)
            | Stmt::Finish(_, _, p)
            | Stmt::Execute(_, _, p)
            | Stmt::Skip(p) => *p,
        }
    }
}
