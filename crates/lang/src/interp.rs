//! Tree-walking interpreter: executes a checked ALPS program by building
//! `alps-core` objects (one per `object … implements`), translating each
//! procedure body into an entry-body closure and the manager into a
//! manager closure, then running the `main` block.
//!
//! Slot indices in source are 1-based (`P[1..N]`, `(i: 1..N)`), matching
//! the paper; the core API is 0-based, so the interpreter converts at the
//! boundary.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use alps_core::{
    AcceptedCall, AlpsError, ChanValue, EntryDef, EntryId, Guard, ManagerCtx, ObjectBuilder,
    ObjectHandle, PoolMode, ReadyEntry, Selected, Ty, Value,
};
use alps_runtime::Runtime;
use parking_lot::Mutex;

use crate::ast::*;
use crate::check::{Checked, EntryInfo, ObjInfo};
use crate::error::LangError;
use crate::token::Pos;

/// Where `print` output goes.
#[derive(Clone)]
pub enum Output {
    /// Standard output.
    Stdout,
    /// An in-memory buffer (used by tests and the benchmarks).
    Buffer(Arc<Mutex<String>>),
}

impl fmt::Debug for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::Stdout => write!(f, "Output::Stdout"),
            Output::Buffer(_) => write!(f, "Output::Buffer"),
        }
    }
}

impl Output {
    /// New capture buffer.
    pub fn buffer() -> (Output, Arc<Mutex<String>>) {
        let b = Arc::new(Mutex::new(String::new()));
        (Output::Buffer(Arc::clone(&b)), b)
    }

    pub(crate) fn line(&self, s: &str) {
        match self {
            Output::Stdout => println!("{s}"),
            Output::Buffer(b) => {
                let mut g = b.lock();
                g.push_str(s);
                g.push('\n');
            }
        }
    }
}

/// Errors from running an ALPS program: front-end or runtime.
#[derive(Debug)]
pub enum RunError {
    /// Lex/parse/check error.
    Lang(LangError),
    /// Runtime failure.
    Run(AlpsError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Lang(e) => write!(f, "{e}"),
            RunError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<LangError> for RunError {
    fn from(e: LangError) -> Self {
        RunError::Lang(e)
    }
}

impl From<AlpsError> for RunError {
    fn from(e: AlpsError) -> Self {
        RunError::Run(e)
    }
}

pub(crate) fn conv_ty(t: &TypeExpr) -> Ty {
    match t {
        TypeExpr::Int => Ty::Int,
        TypeExpr::Bool => Ty::Bool,
        TypeExpr::Float => Ty::Float,
        TypeExpr::Str => Ty::Str,
        TypeExpr::Chan(sig) => Ty::Chan(sig.iter().map(conv_ty).collect()),
        TypeExpr::List(e) => Ty::List(Box::new(conv_ty(e))),
    }
}

fn default_value(t: &TypeExpr, name: &str) -> Value {
    match t {
        TypeExpr::Int => Value::Int(0),
        TypeExpr::Bool => Value::Bool(false),
        TypeExpr::Float => Value::Float(0.0),
        TypeExpr::Str => Value::str(""),
        TypeExpr::Chan(sig) => Value::Chan(ChanValue::new(name, sig.iter().map(conv_ty).collect())),
        TypeExpr::List(_) => Value::List(Vec::new()),
    }
}

pub(crate) fn rerr(pos: Pos, msg: impl Into<String>) -> AlpsError {
    AlpsError::Custom(format!("{pos}: {}", msg.into()))
}

/// Shared state of a running program.
struct Vm {
    checked: Arc<Checked>,
    /// Spawned handles indexed by object index (`Checked::obj_idx` order).
    /// A `OnceLock` read is a plain atomic load, so warm-path calls no
    /// longer take a global mutex or hash the object name against a
    /// `HashMap<String, ObjectHandle>` on every entry call.
    objects: Vec<OnceLock<ObjectHandle>>,
    /// Interned entry ids, flat over `flat_base[obj] + entry_index`;
    /// filled right after each object spawns. Lets entry calls go through
    /// `call_id` instead of re-hashing the entry name in the core.
    entry_ids: Vec<OnceLock<EntryId>>,
    flat_base: Vec<usize>,
    envs: Vec<Arc<Mutex<HashMap<String, Value>>>>,
    rt: Runtime,
    out: Output,
}

/// How the current frame is borrowed during evaluation: guard closures
/// evaluate read-only; statement execution evaluates with write access.
enum FrameRef<'a> {
    Mut(&'a mut HashMap<String, Value>),
    Ref(&'a HashMap<String, Value>),
}

struct Scope<'a> {
    frame: FrameRef<'a>,
    overlay: Option<&'a HashMap<String, Value>>,
}

impl Scope<'_> {
    fn read(&self, name: &str) -> Option<Value> {
        if let Some(ov) = self.overlay {
            if let Some(v) = ov.get(name) {
                return Some(v.clone());
            }
        }
        match &self.frame {
            FrameRef::Mut(m) => m.get(name).cloned(),
            FrameRef::Ref(m) => m.get(name).cloned(),
        }
    }
}

/// Source for `#P` evaluation.
enum Pend<'a> {
    None,
    Mgr(&'a ManagerCtx),
    View(&'a alps_core::GuardView<'a>),
}

/// Manager-side state: the primitive tokens keyed by (entry, 0-based
/// slot).
#[derive(Default)]
struct Tokens {
    accepted: HashMap<(usize, usize), AcceptedCall>,
    ready: HashMap<(usize, usize), ReadyEntry>,
}

struct MgrEnv<'a> {
    ctx: &'a ManagerCtx,
    tokens: &'a Mutex<Tokens>,
}

enum Flow {
    Normal,
    Return(Vec<Value>),
}

struct Interp<'v> {
    vm: &'v Vm,
    cur_obj: Option<usize>,
}

impl<'v> Interp<'v> {
    fn info(&self) -> Option<&ObjInfo> {
        self.cur_obj.map(|i| &self.vm.checked.objects[i])
    }

    fn entry_info(&self, name: &str, pos: Pos) -> Result<&EntryInfo, AlpsError> {
        let info = self.info().ok_or_else(|| rerr(pos, "no current object"))?;
        info.entry_idx
            .get(name)
            .map(|i| &info.entries[*i])
            .ok_or_else(|| rerr(pos, format!("unknown procedure `{name}`")))
    }

    fn object_env(&self) -> Option<&Arc<Mutex<HashMap<String, Value>>>> {
        self.cur_obj.map(|i| &self.vm.envs[i])
    }

    fn handle_at(&self, oi: usize, pos: Pos) -> Result<&ObjectHandle, AlpsError> {
        self.vm.objects[oi].get().ok_or_else(|| {
            rerr(
                pos,
                format!(
                    "object `{}` is not available",
                    self.vm.checked.objects[oi].name
                ),
            )
        })
    }

    /// Interned id of `obj.entry`; falls back to an error only before the
    /// object has spawned (same availability rule as [`Interp::handle`]).
    fn entry_id_of(&self, oi: usize, entry: &str, pos: Pos) -> Result<EntryId, AlpsError> {
        let info = &self.vm.checked.objects[oi];
        let ei = info
            .entry_idx
            .get(entry)
            .copied()
            .ok_or_else(|| rerr(pos, format!("unknown procedure `{}.{entry}`", info.name)))?;
        self.vm.entry_ids[self.vm.flat_base[oi] + ei]
            .get()
            .copied()
            .ok_or_else(|| rerr(pos, format!("object `{}` is not available", info.name)))
    }

    /// Resolve an `Obj.Entry` call target to its handle and interned id.
    fn resolve_entry(
        &self,
        obj: &str,
        entry: &str,
        pos: Pos,
    ) -> Result<(&ObjectHandle, EntryId), AlpsError> {
        let oi = self
            .vm
            .checked
            .obj_idx
            .get(obj)
            .copied()
            .ok_or_else(|| rerr(pos, format!("object `{obj}` is not available")))?;
        Ok((self.handle_at(oi, pos)?, self.entry_id_of(oi, entry, pos)?))
    }

    // ---- variables ----------------------------------------------------

    fn read_var(&self, sc: &Scope<'_>, name: &str, pos: Pos) -> Result<Value, AlpsError> {
        if let Some(v) = sc.read(name) {
            return Ok(v);
        }
        if let Some(env) = self.object_env() {
            if let Some(v) = env.lock().get(name) {
                return Ok(v.clone());
            }
        }
        Err(rerr(pos, format!("variable `{name}` not found")))
    }

    fn write_var(
        &self,
        sc: &mut Scope<'_>,
        name: &str,
        v: Value,
        pos: Pos,
    ) -> Result<(), AlpsError> {
        match &mut sc.frame {
            FrameRef::Mut(m) => {
                if m.contains_key(name) {
                    m.insert(name.to_string(), v);
                    return Ok(());
                }
            }
            FrameRef::Ref(m) => {
                if m.contains_key(name) {
                    return Err(rerr(
                        pos,
                        format!("cannot assign `{name}` inside a guard condition"),
                    ));
                }
            }
        }
        if let Some(env) = self.object_env() {
            let mut g = env.lock();
            if g.contains_key(name) {
                g.insert(name.to_string(), v);
                return Ok(());
            }
        }
        // Implicit declaration (guard binds in arm scope).
        match &mut sc.frame {
            FrameRef::Mut(m) => {
                m.insert(name.to_string(), v);
                Ok(())
            }
            FrameRef::Ref(_) => Err(rerr(pos, format!("variable `{name}` not found"))),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn eval1(&self, sc: &mut Scope<'_>, pend: &Pend<'_>, e: &Expr) -> Result<Value, AlpsError> {
        let vs = self.eval_multi(sc, pend, e)?;
        match vs.len() {
            1 => Ok(vs.into_iter().next().expect("len checked")),
            n => Err(rerr(e.pos(), format!("expected one value, got {n}"))),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_multi(
        &self,
        sc: &mut Scope<'_>,
        pend: &Pend<'_>,
        e: &Expr,
    ) -> Result<Vec<Value>, AlpsError> {
        Ok(match e {
            Expr::Int(v, _) => vec![Value::Int(*v)],
            Expr::Float(v, _) => vec![Value::Float(*v)],
            Expr::Str(s, _) => vec![Value::str(s)],
            Expr::Bool(b, _) => vec![Value::Bool(*b)],
            Expr::Var(name, pos) => vec![self.read_var(sc, name, *pos)?],
            Expr::Pending(entry, pos) => {
                let n = match pend {
                    Pend::Mgr(m) => m.pending(entry).map_err(|e| rerr(*pos, e.to_string()))?,
                    Pend::View(v) => v.pending(entry),
                    Pend::None => {
                        return Err(rerr(*pos, "`#P` outside the manager"));
                    }
                };
                vec![Value::Int(n as i64)]
            }
            Expr::Unary(op, inner, pos) => {
                let v = self.eval1(sc, pend, inner)?;
                vec![match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Value::Int(-i),
                    (UnOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (op, v) => return Err(rerr(*pos, format!("bad operand {v} for {op:?}"))),
                }]
            }
            Expr::Binary(op, a, b, pos) => {
                // Short-circuit booleans first.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let va = self.eval1(sc, pend, a)?.as_bool()?;
                    let short = match op {
                        BinOp::And => !va,
                        BinOp::Or => va,
                        _ => unreachable!(),
                    };
                    if short {
                        return Ok(vec![Value::Bool(va)]);
                    }
                    let vb = self.eval1(sc, pend, b)?.as_bool()?;
                    return Ok(vec![Value::Bool(vb)]);
                }
                let va = self.eval1(sc, pend, a)?;
                let vb = self.eval1(sc, pend, b)?;
                vec![binop(*op, va, vb, *pos)?]
            }
            Expr::Call(target, args, pos) => self.eval_call(sc, pend, target, args, *pos)?,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn eval_call(
        &self,
        sc: &mut Scope<'_>,
        pend: &Pend<'_>,
        target: &CallTarget,
        args: &[Expr],
        pos: Pos,
    ) -> Result<Vec<Value>, AlpsError> {
        match target {
            CallTarget::Entry(obj, entry) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval1(sc, pend, a)?);
                }
                let (h, id) = self.resolve_entry(obj, entry, pos)?;
                Ok(h.call_id(id, vals)?.into_iter().collect())
            }
            CallTarget::Plain(name) => {
                if let Some(r) = self.eval_builtin(sc, pend, name, args, pos)? {
                    return Ok(r);
                }
                // Sibling procedure of the current object.
                let e = self.entry_info(name, pos)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval1(sc, pend, a)?);
                }
                if e.intercept.is_some() {
                    // Goes through the manager (paper §2.3: intercepting
                    // local procedures).
                    let oi = self.cur_obj.expect("entry_info succeeded");
                    let h = self.handle_at(oi, pos)?;
                    let id = self.entry_id_of(oi, name, pos)?;
                    Ok(h.call_from_inside_id(id, vals)?.into_iter().collect())
                } else {
                    // Inline interpretation in the current process.
                    self.run_proc_inline(name, vals, pos)
                }
            }
        }
    }

    fn run_proc_inline(
        &self,
        name: &str,
        args: Vec<Value>,
        pos: Pos,
    ) -> Result<Vec<Value>, AlpsError> {
        let info = self.info().ok_or_else(|| rerr(pos, "no current object"))?;
        let e = info.entry_idx[name];
        let einfo = &info.entries[e];
        let imp = &self.vm.checked.program.impls[info.impl_idx];
        let p = &imp.procs[einfo.impl_idx];
        let mut frame = HashMap::new();
        for (prm, v) in p.header.params.iter().zip(args) {
            frame.insert(prm.name.clone(), v);
        }
        for l in &p.vars {
            frame.insert(l.name.clone(), default_value(&l.ty, &l.name));
        }
        let flow = self.exec_block(&mut frame, &p.body, None)?;
        let expected = einfo.public_results.len() + einfo.hidden_results.len();
        match flow {
            Flow::Return(vals) => Ok(vals),
            Flow::Normal if expected == 0 => Ok(vec![]),
            Flow::Normal => Err(rerr(
                p.header.pos,
                format!("procedure `{name}` ended without returning {expected} value(s)"),
            )),
        }
    }

    fn eval_builtin(
        &self,
        sc: &mut Scope<'_>,
        pend: &Pend<'_>,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> Result<Option<Vec<Value>>, AlpsError> {
        match name {
            "print" => {
                let mut parts = Vec::new();
                for a in args {
                    parts.push(self.eval1(sc, pend, a)?.to_string());
                }
                self.vm.out.line(&parts.join(""));
                Ok(Some(vec![]))
            }
            "str" => {
                let v = self.eval1(sc, pend, &args[0])?;
                Ok(Some(vec![Value::str(v.to_string())]))
            }
            "len" => {
                let v = self.eval1(sc, pend, &args[0])?;
                let n = match v {
                    Value::List(xs) => xs.len(),
                    Value::Str(s) => s.chars().count(),
                    other => return Err(rerr(pos, format!("len of {other}"))),
                };
                Ok(Some(vec![Value::Int(n as i64)]))
            }
            "push" => {
                let Expr::Var(var, vpos) = &args[0] else {
                    return Err(rerr(pos, "`push` needs a list variable"));
                };
                let item = self.eval1(sc, pend, &args[1])?;
                let mut list = self.read_var(sc, var, *vpos)?;
                match &mut list {
                    Value::List(xs) => xs.push(item),
                    other => return Err(rerr(pos, format!("push to {other}"))),
                }
                self.write_var(sc, var, list, *vpos)?;
                Ok(Some(vec![]))
            }
            "remove" => {
                let Expr::Var(var, vpos) = &args[0] else {
                    return Err(rerr(pos, "`remove` needs a list variable"));
                };
                let i = self.eval1(sc, pend, &args[1])?.as_int()?;
                let mut list = self.read_var(sc, var, *vpos)?;
                let out = match &mut list {
                    Value::List(xs) => {
                        let idx = usize::try_from(i)
                            .ok()
                            .filter(|&k| k < xs.len())
                            .ok_or_else(|| {
                                rerr(pos, format!("index {i} out of bounds (len {})", xs.len()))
                            })?;
                        xs.remove(idx)
                    }
                    other => return Err(rerr(pos, format!("remove from {other}"))),
                };
                self.write_var(sc, var, list, *vpos)?;
                Ok(Some(vec![out]))
            }
            "pop" => {
                let Expr::Var(var, vpos) = &args[0] else {
                    return Err(rerr(pos, "`pop` needs a list variable"));
                };
                let mut list = self.read_var(sc, var, *vpos)?;
                let out = match &mut list {
                    Value::List(xs) => {
                        if xs.is_empty() {
                            return Err(rerr(pos, "pop from an empty list"));
                        }
                        xs.remove(0)
                    }
                    other => return Err(rerr(pos, format!("pop from {other}"))),
                };
                self.write_var(sc, var, list, *vpos)?;
                Ok(Some(vec![out]))
            }
            "get" => {
                let list = self.eval1(sc, pend, &args[0])?;
                let i = self.eval1(sc, pend, &args[1])?.as_int()?;
                match list {
                    Value::List(xs) => {
                        let idx = usize::try_from(i)
                            .ok()
                            .filter(|&k| k < xs.len())
                            .ok_or_else(|| {
                                rerr(pos, format!("index {i} out of bounds (len {})", xs.len()))
                            })?;
                        Ok(Some(vec![xs[idx].clone()]))
                    }
                    other => Err(rerr(pos, format!("get from {other}"))),
                }
            }
            "set" => {
                let Expr::Var(var, vpos) = &args[0] else {
                    return Err(rerr(pos, "`set` needs a list variable"));
                };
                let i = self.eval1(sc, pend, &args[1])?.as_int()?;
                let item = self.eval1(sc, pend, &args[2])?;
                let mut list = self.read_var(sc, var, *vpos)?;
                match &mut list {
                    Value::List(xs) => {
                        let idx = usize::try_from(i)
                            .ok()
                            .filter(|&k| k < xs.len())
                            .ok_or_else(|| {
                                rerr(pos, format!("index {i} out of bounds (len {})", xs.len()))
                            })?;
                        xs[idx] = item;
                    }
                    other => return Err(rerr(pos, format!("set on {other}"))),
                }
                self.write_var(sc, var, list, *vpos)?;
                Ok(Some(vec![]))
            }
            "now" => Ok(Some(vec![Value::Int(self.vm.rt.now() as i64)])),
            "sleep" => {
                let t = self.eval1(sc, pend, &args[0])?.as_int()?;
                self.vm.rt.sleep(t.max(0) as u64);
                Ok(Some(vec![]))
            }
            _ => Ok(None),
        }
    }

    // ---- statements ----------------------------------------------------

    fn exec_block(
        &self,
        frame: &mut HashMap<String, Value>,
        stmts: &[Stmt],
        mgr: Option<&MgrEnv<'_>>,
    ) -> Result<Flow, AlpsError> {
        for s in stmts {
            match self.exec_stmt(frame, s, mgr)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_stmt(
        &self,
        frame: &mut HashMap<String, Value>,
        s: &Stmt,
        mgr: Option<&MgrEnv<'_>>,
    ) -> Result<Flow, AlpsError> {
        fn pend_of<'a>(m: Option<&'a MgrEnv<'a>>) -> Option<&'a ManagerCtx> {
            m.map(|m| m.ctx)
        }
        macro_rules! scope {
            () => {
                Scope {
                    frame: FrameRef::Mut(frame),
                    overlay: None,
                }
            };
        }
        macro_rules! pend {
            () => {
                match pend_of(mgr) {
                    Some(c) => Pend::Mgr(c),
                    None => Pend::None,
                }
            };
        }
        match s {
            Stmt::Skip(_) => Ok(Flow::Normal),
            Stmt::Assign(lvs, e, pos) => {
                let vals = {
                    let mut sc = scope!();
                    self.eval_multi(&mut sc, &pend!(), e)?
                };
                if vals.len() != lvs.len() {
                    return Err(rerr(
                        *pos,
                        format!("{} value(s) for {} target(s)", vals.len(), lvs.len()),
                    ));
                }
                let mut sc = scope!();
                for (lv, v) in lvs.iter().zip(vals) {
                    let LValue::Var(name, vpos) = lv;
                    self.write_var(&mut sc, name, v, *vpos)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Call(target, args, pos) => {
                let mut sc = scope!();
                let _ = self.eval_call(&mut sc, &pend!(), target, args, *pos)?;
                Ok(Flow::Normal)
            }
            Stmt::If(arms, els, _) => {
                for (c, body) in arms {
                    let cond = {
                        let mut sc = scope!();
                        self.eval1(&mut sc, &pend!(), c)?.as_bool()?
                    };
                    if cond {
                        return self.exec_block(frame, body, mgr);
                    }
                }
                self.exec_block(frame, els, mgr)
            }
            Stmt::While(c, body, _) => loop {
                let cond = {
                    let mut sc = scope!();
                    self.eval1(&mut sc, &pend!(), c)?.as_bool()?
                };
                if !cond {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(frame, body, mgr)? {
                    Flow::Normal => {}
                    ret => return Ok(ret),
                }
            },
            Stmt::For(v, lo, hi, body, _) => {
                let (a, b) = {
                    let mut sc = scope!();
                    (
                        self.eval1(&mut sc, &pend!(), lo)?.as_int()?,
                        self.eval1(&mut sc, &pend!(), hi)?.as_int()?,
                    )
                };
                let had = frame.contains_key(v);
                for i in a..=b {
                    frame.insert(v.clone(), Value::Int(i));
                    match self.exec_block(frame, body, mgr)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                if !had {
                    frame.remove(v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Send(chan, args, pos) => {
                let mut sc = scope!();
                let c = self.eval1(&mut sc, &pend!(), chan)?;
                let c = c
                    .as_chan()
                    .map_err(|_| rerr(*pos, "send on a non-channel"))?
                    .clone();
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval1(&mut sc, &pend!(), a)?);
                }
                c.send(&self.vm.rt, vals)?;
                Ok(Flow::Normal)
            }
            Stmt::Receive(chan, binds, pos) => {
                let c = {
                    let mut sc = scope!();
                    self.eval1(&mut sc, &pend!(), chan)?
                        .as_chan()
                        .map_err(|_| rerr(*pos, "receive on a non-channel"))?
                        .clone()
                };
                let msg = match mgr {
                    Some(m) => m.ctx.receive(&c)?,
                    None => c.recv(&self.vm.rt)?,
                };
                let mut sc = scope!();
                for (b, v) in binds.iter().zip(msg) {
                    let LValue::Var(name, vpos) = b;
                    self.write_var(&mut sc, name, v, *vpos)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Select(arms, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "select outside manager"))?;
                match self.run_select(frame, arms, m)? {
                    SelectOutcome::Ran(flow) => Ok(flow),
                    SelectOutcome::AllClosed => {
                        Err(rerr(*pos, "select failed: every guard closed"))
                    }
                }
            }
            Stmt::Loop(arms, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "loop outside manager"))?;
                loop {
                    match self.run_select(frame, arms, m)? {
                        SelectOutcome::Ran(Flow::Normal) => {}
                        SelectOutcome::Ran(ret) => return Ok(ret),
                        SelectOutcome::AllClosed => return Ok(Flow::Normal),
                    }
                }
            }
            Stmt::Par(calls, pos) => {
                let mut branches: Vec<Box<dyn FnOnce() -> Result<(), AlpsError> + Send>> =
                    Vec::new();
                for (target, args) in calls {
                    let CallTarget::Entry(obj, entry) = target else {
                        return Err(rerr(*pos, "par branches must be entry calls"));
                    };
                    let mut vals = Vec::new();
                    {
                        let mut sc = scope!();
                        for a in args {
                            vals.push(self.eval1(&mut sc, &pend!(), a)?);
                        }
                    }
                    let (h, id) = self.resolve_entry(obj, entry, *pos)?;
                    let h = h.clone();
                    branches.push(Box::new(move || h.call_id(id, vals).map(|_| ())));
                }
                let results =
                    alps_runtime::par(&self.vm.rt, branches).map_err(AlpsError::Runtime)?;
                for r in results {
                    r?;
                }
                Ok(Flow::Normal)
            }
            Stmt::ParFor(v, lo, hi, target, args, pos) => {
                let CallTarget::Entry(obj, entry) = target else {
                    return Err(rerr(*pos, "par branches must be entry calls"));
                };
                let (a, b) = {
                    let mut sc = scope!();
                    (
                        self.eval1(&mut sc, &pend!(), lo)?.as_int()?,
                        self.eval1(&mut sc, &pend!(), hi)?.as_int()?,
                    )
                };
                let mut branches: Vec<Box<dyn FnOnce() -> Result<(), AlpsError> + Send>> =
                    Vec::new();
                for i in a..=b {
                    // Bind the loop variable and evaluate the arguments.
                    let mut overlay = HashMap::new();
                    overlay.insert(v.clone(), Value::Int(i));
                    let mut vals = Vec::new();
                    {
                        let mut sc = Scope {
                            frame: FrameRef::Mut(frame),
                            overlay: Some(&overlay),
                        };
                        for arg in args {
                            vals.push(self.eval1(&mut sc, &pend!(), arg)?);
                        }
                    }
                    let (h, id) = self.resolve_entry(obj, entry, *pos)?;
                    let h = h.clone();
                    branches.push(Box::new(move || h.call_id(id, vals).map(|_| ())));
                }
                let results =
                    alps_runtime::par(&self.vm.rt, branches).map_err(AlpsError::Runtime)?;
                for r in results {
                    r?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(args, _) => {
                let mut vals = Vec::new();
                let mut sc = scope!();
                for a in args {
                    vals.push(self.eval1(&mut sc, &pend!(), a)?);
                }
                Ok(Flow::Return(vals))
            }
            Stmt::Accept(slot, binds, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "accept outside manager"))?;
                let e = self.entry_info(&slot.entry, slot.pos)?;
                let eidx = self.info().expect("checked").entry_idx[&e.name];
                let acc = match &slot.index {
                    Some(ix) => {
                        let i = {
                            let mut sc = scope!();
                            self.eval1(&mut sc, &pend!(), ix)?.as_int()?
                        };
                        m.ctx.accept_slot(&slot.entry, to_slot0(i, *pos)?)?
                    }
                    None => m.ctx.accept(&slot.entry)?,
                };
                let mut sc = scope!();
                for (b, v) in binds.iter().zip(acc.params().to_vec()) {
                    let LValue::Var(name, vpos) = b;
                    self.write_var(&mut sc, name, v, *vpos)?;
                }
                m.tokens.lock().accepted.insert((eidx, acc.slot()), acc);
                Ok(Flow::Normal)
            }
            Stmt::AwaitStmt(slot, binds, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "await outside manager"))?;
                let e = self.entry_info(&slot.entry, slot.pos)?;
                let eidx = self.info().expect("checked").entry_idx[&e.name];
                let done = match &slot.index {
                    Some(ix) => {
                        let i = {
                            let mut sc = scope!();
                            self.eval1(&mut sc, &pend!(), ix)?.as_int()?
                        };
                        m.ctx.await_slot(&slot.entry, to_slot0(i, *pos)?)?
                    }
                    None => m.ctx.await_done(&slot.entry)?,
                };
                let mut vals = done.results().to_vec();
                vals.extend(done.hidden().iter().cloned());
                let mut sc = scope!();
                for (b, v) in binds.iter().zip(vals) {
                    let LValue::Var(name, vpos) = b;
                    self.write_var(&mut sc, name, v, *vpos)?;
                }
                m.tokens.lock().ready.insert((eidx, done.slot()), done);
                Ok(Flow::Normal)
            }
            Stmt::Start(slot, args, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "start outside manager"))?;
                let (eidx, s0) = self.resolve_token_slot(frame, mgr, slot, *pos, true, m)?;
                let acc = m
                    .tokens
                    .lock()
                    .accepted
                    .remove(&(eidx, s0))
                    .ok_or_else(|| rerr(*pos, format!("no accepted call on `{}`", slot.entry)))?;
                let e = &self.info().expect("checked").entries[eidx];
                if args.is_empty() {
                    m.ctx.start_as_is(acc)
                } else {
                    let mut vals = Vec::new();
                    {
                        let mut sc = scope!();
                        for a in args {
                            vals.push(self.eval1(&mut sc, &pend!(), a)?);
                        }
                    }
                    let k = e.intercept.map(|(p, _)| p).unwrap_or(0);
                    let hidden = vals.split_off(k);
                    m.ctx.start(acc, vals, hidden)
                }
                .map(|()| Flow::Normal)
            }
            Stmt::Finish(slot, args, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "finish outside manager"))?;
                let (eidx, s0) = self.resolve_token_slot(frame, mgr, slot, *pos, false, m)?;
                let mut vals = Vec::new();
                {
                    let mut sc = scope!();
                    for a in args {
                        vals.push(self.eval1(&mut sc, &pend!(), a)?);
                    }
                }
                let maybe_ready = m.tokens.lock().ready.remove(&(eidx, s0));
                if let Some(done) = maybe_ready {
                    if vals.is_empty() {
                        m.ctx.finish_as_is(done)?;
                    } else {
                        m.ctx.finish(done, vals)?;
                    }
                    return Ok(Flow::Normal);
                }
                let maybe_acc = m.tokens.lock().accepted.remove(&(eidx, s0));
                if let Some(acc) = maybe_acc {
                    // Combining: answer without executing.
                    m.ctx.finish_accepted(acc, vals)?;
                    return Ok(Flow::Normal);
                }
                Err(rerr(
                    *pos,
                    format!("no awaited or accepted call on `{}` to finish", slot.entry),
                ))
            }
            Stmt::Execute(slot, args, pos) => {
                let m = mgr.ok_or_else(|| rerr(*pos, "execute outside manager"))?;
                let (eidx, s0) = self.resolve_token_slot(frame, mgr, slot, *pos, true, m)?;
                let acc = m
                    .tokens
                    .lock()
                    .accepted
                    .remove(&(eidx, s0))
                    .ok_or_else(|| rerr(*pos, format!("no accepted call on `{}`", slot.entry)))?;
                let e = &self.info().expect("checked").entries[eidx];
                if args.is_empty() {
                    m.ctx.execute(acc)?;
                } else {
                    let mut vals = Vec::new();
                    {
                        let mut sc = scope!();
                        for a in args {
                            vals.push(self.eval1(&mut sc, &pend!(), a)?);
                        }
                    }
                    let k = e.intercept.map(|(p, _)| p).unwrap_or(0);
                    let hidden = vals.split_off(k);
                    m.ctx.execute_with(acc, vals, hidden)?;
                }
                Ok(Flow::Normal)
            }
        }
    }

    /// Resolve which (entry, 0-based slot) a `start/finish/execute P[i]`
    /// refers to. Without an index, the token table must hold exactly one
    /// token for the entry.
    fn resolve_token_slot(
        &self,
        frame: &mut HashMap<String, Value>,
        mgr: Option<&MgrEnv<'_>>,
        slot: &SlotRef,
        pos: Pos,
        accepted_table: bool,
        m: &MgrEnv<'_>,
    ) -> Result<(usize, usize), AlpsError> {
        let e = self.entry_info(&slot.entry, slot.pos)?;
        let eidx = self.info().expect("checked").entry_idx[&e.name];
        if let Some(ix) = &slot.index {
            let i = {
                let mut sc = Scope {
                    frame: FrameRef::Mut(frame),
                    overlay: None,
                };
                let pend = match mgr.map(|m| m.ctx) {
                    Some(c) => Pend::Mgr(c),
                    None => Pend::None,
                };
                self.eval1(&mut sc, &pend, ix)?.as_int()?
            };
            return Ok((eidx, to_slot0(i, pos)?));
        }
        let tokens = m.tokens.lock();
        let keys: Vec<usize> = if accepted_table {
            tokens
                .accepted
                .keys()
                .filter(|(ei, _)| *ei == eidx)
                .map(|(_, s)| *s)
                .collect()
        } else {
            tokens
                .ready
                .keys()
                .chain(tokens.accepted.keys())
                .filter(|(ei, _)| *ei == eidx)
                .map(|(_, s)| *s)
                .collect()
        };
        match keys.as_slice() {
            [one] => Ok((eidx, *one)),
            [] => Err(rerr(pos, format!("no pending token for `{}`", slot.entry))),
            _ => Err(rerr(
                pos,
                format!(
                    "ambiguous `{}`: several array elements are in progress; write `{}[i]`",
                    slot.entry, slot.entry
                ),
            )),
        }
    }

    // ---- select --------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_select(
        &self,
        frame: &mut HashMap<String, Value>,
        arms: &[Guarded],
        m: &MgrEnv<'_>,
    ) -> Result<SelectOutcome, AlpsError> {
        let info = self.info().expect("manager scope").clone();
        // Pre-evaluate quantifier bounds, plain-guard conditions, and
        // channel expressions (they may not depend on bound values).
        struct ArmMeta {
            bounds: Option<(i64, i64)>,
            chan: Option<ChanValue>,
            bind_names: Vec<String>,
            quant_name: Option<String>,
        }
        let mut metas = Vec::with_capacity(arms.len());
        let mut plain_conds = Vec::with_capacity(arms.len());
        for arm in arms {
            let bounds = match &arm.quantifier {
                Some((_, lo, hi)) => {
                    let mut sc = Scope {
                        frame: FrameRef::Mut(frame),
                        overlay: None,
                    };
                    let a = self.eval1(&mut sc, &Pend::Mgr(m.ctx), lo)?.as_int()?;
                    let b = self.eval1(&mut sc, &Pend::Mgr(m.ctx), hi)?.as_int()?;
                    Some((a, b))
                }
                None => None,
            };
            let chan = match &arm.kind {
                GuardKind::Receive { chan, .. } => {
                    let mut sc = Scope {
                        frame: FrameRef::Mut(frame),
                        overlay: None,
                    };
                    Some(
                        self.eval1(&mut sc, &Pend::Mgr(m.ctx), chan)?
                            .as_chan()
                            .map_err(|_| rerr(chan.pos(), "receive on a non-channel"))?
                            .clone(),
                    )
                }
                _ => None,
            };
            let bind_names: Vec<String> = match &arm.kind {
                GuardKind::Accept { binds, .. }
                | GuardKind::Await { binds, .. }
                | GuardKind::Receive { binds, .. } => {
                    binds.iter().map(|LValue::Var(n, _)| n.clone()).collect()
                }
                GuardKind::Plain => Vec::new(),
            };
            let quant_name = arm.quantifier.as_ref().map(|(n, _, _)| n.clone());
            let plain_cond = if matches!(arm.kind, GuardKind::Plain) {
                let mut sc = Scope {
                    frame: FrameRef::Mut(frame),
                    overlay: None,
                };
                let w = arm.when.as_ref().expect("parser enforced");
                self.eval1(&mut sc, &Pend::Mgr(m.ctx), w)?.as_bool()?
            } else {
                false
            };
            plain_conds.push(plain_cond);
            metas.push(ArmMeta {
                bounds,
                chan,
                bind_names,
                quant_name,
            });
        }
        // Build the guards, borrowing the frame read-only for the
        // acceptance-condition closures.
        let frame_ro: &HashMap<String, Value> = frame;
        let mut guards: Vec<Guard<'_>> = Vec::with_capacity(arms.len());
        for (arm, (meta, plain)) in arms.iter().zip(metas.iter().zip(&plain_conds)) {
            let mk_overlay = |v: &alps_core::GuardView<'_>| -> HashMap<String, Value> {
                let mut ov = HashMap::new();
                if let Some(q) = &meta.quant_name {
                    ov.insert(q.clone(), Value::Int(v.slot() as i64 + 1));
                }
                for (n, val) in meta.bind_names.iter().zip(v.values()) {
                    ov.insert(n.clone(), val.clone());
                }
                ov
            };
            let eval_when = move |view: &alps_core::GuardView<'_>, when: &Expr| -> bool {
                if let Some((lo, hi)) = meta.bounds {
                    let i = view.slot() as i64 + 1;
                    if i < lo || i > hi {
                        return false;
                    }
                }
                let ov = mk_overlay(view);
                let sub = Interp {
                    vm: self.vm,
                    cur_obj: self.cur_obj,
                };
                let mut sc = Scope {
                    frame: FrameRef::Ref(frame_ro),
                    overlay: Some(&ov),
                };
                sub.eval1(&mut sc, &Pend::View(view), when)
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false)
            };
            let bounds_only = move |view: &alps_core::GuardView<'_>| -> bool {
                if let Some((lo, hi)) = meta.bounds {
                    let i = view.slot() as i64 + 1;
                    i >= lo && i <= hi
                } else {
                    true
                }
            };
            let mut g = match &arm.kind {
                GuardKind::Accept { slot, .. } => Guard::accept(&slot.entry),
                GuardKind::Await { slot, .. } => Guard::await_done(&slot.entry),
                GuardKind::Receive { .. } => {
                    Guard::receive(meta.chan.as_ref().expect("receive meta"))
                }
                GuardKind::Plain => Guard::cond(*plain),
            };
            if !matches!(arm.kind, GuardKind::Plain) {
                g = match &arm.when {
                    Some(w) => g.when(move |view| eval_when(view, w)),
                    None => g.when(bounds_only),
                };
            }
            if let Some(pe) = &arm.pri {
                let meta2: &ArmMeta = meta;
                let pri_fn = move |view: &alps_core::GuardView<'_>| -> i64 {
                    let mut ov = HashMap::new();
                    if let Some(q) = &meta2.quant_name {
                        ov.insert(q.clone(), Value::Int(view.slot() as i64 + 1));
                    }
                    for (n, val) in meta2.bind_names.iter().zip(view.values()) {
                        ov.insert(n.clone(), val.clone());
                    }
                    let sub = Interp {
                        vm: self.vm,
                        cur_obj: self.cur_obj,
                    };
                    let mut sc = Scope {
                        frame: FrameRef::Ref(frame_ro),
                        overlay: Some(&ov),
                    };
                    sub.eval1(&mut sc, &Pend::View(view), pe)
                        .and_then(|v| v.as_int())
                        .unwrap_or(0)
                };
                g = g.pri(pri_fn);
            }
            guards.push(g);
        }
        let sel = match m.ctx.select(guards) {
            Ok(s) => s,
            Err(AlpsError::SelectFailed) => return Ok(SelectOutcome::AllClosed),
            Err(e) => return Err(e),
        };
        // Commit: bind values, record tokens, run the arm body.
        let gi = sel.guard_index();
        let arm = &arms[gi];
        let meta = &metas[gi];
        match sel {
            Selected::Accepted { call, .. } => {
                if let Some(q) = &meta.quant_name {
                    frame.insert(q.clone(), Value::Int(call.slot() as i64 + 1));
                }
                for (n, v) in meta.bind_names.iter().zip(call.params().to_vec()) {
                    frame.insert(n.clone(), v);
                }
                let eidx = info.entry_idx[call.entry_name()];
                m.tokens.lock().accepted.insert((eidx, call.slot()), call);
            }
            Selected::Ready { done, .. } => {
                if let Some(q) = &meta.quant_name {
                    frame.insert(q.clone(), Value::Int(done.slot() as i64 + 1));
                }
                let mut vals = done.results().to_vec();
                vals.extend(done.hidden().iter().cloned());
                for (n, v) in meta.bind_names.iter().zip(vals) {
                    frame.insert(n.clone(), v);
                }
                let eidx = info.entry_idx[done.entry_name()];
                m.tokens.lock().ready.insert((eidx, done.slot()), done);
            }
            Selected::Received { msg, .. } => {
                for (n, v) in meta.bind_names.iter().zip(msg) {
                    frame.insert(n.clone(), v);
                }
            }
            Selected::Cond { .. } => {}
        }
        let flow = self.exec_block(frame, &arm.body, Some(m))?;
        Ok(SelectOutcome::Ran(flow))
    }
}

enum SelectOutcome {
    Ran(Flow),
    AllClosed,
}

pub(crate) fn to_slot0(i: i64, pos: Pos) -> Result<usize, AlpsError> {
    if i < 1 {
        return Err(rerr(pos, format!("slot index {i} out of range (1-based)")));
    }
    Ok((i - 1) as usize)
}

pub(crate) fn binop(op: BinOp, a: Value, b: Value, pos: Pos) -> Result<Value, AlpsError> {
    use BinOp::*;
    Ok(match (op, &a, &b) {
        (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
        (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(*y)),
        (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(*y)),
        (Div, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                return Err(rerr(pos, "division by zero"));
            }
            Value::Int(x / y)
        }
        (Mod, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                return Err(rerr(pos, "modulo by zero"));
            }
            Value::Int(x.rem_euclid(*y))
        }
        (Add, Value::Float(x), Value::Float(y)) => Value::Float(x + y),
        (Sub, Value::Float(x), Value::Float(y)) => Value::Float(x - y),
        (Mul, Value::Float(x), Value::Float(y)) => Value::Float(x * y),
        (Div, Value::Float(x), Value::Float(y)) => Value::Float(x / y),
        (Add, Value::Str(x), Value::Str(y)) => Value::str(format!("{x}{y}")),
        (Eq, _, _) => Value::Bool(a == b),
        (Ne, _, _) => Value::Bool(a != b),
        (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
        (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
        (Lt, Value::Float(x), Value::Float(y)) => Value::Bool(x < y),
        (Le, Value::Float(x), Value::Float(y)) => Value::Bool(x <= y),
        (Gt, Value::Float(x), Value::Float(y)) => Value::Bool(x > y),
        (Ge, Value::Float(x), Value::Float(y)) => Value::Bool(x >= y),
        (Lt, Value::Str(x), Value::Str(y)) => Value::Bool(x < y),
        (Le, Value::Str(x), Value::Str(y)) => Value::Bool(x <= y),
        (Gt, Value::Str(x), Value::Str(y)) => Value::Bool(x > y),
        (Ge, Value::Str(x), Value::Str(y)) => Value::Bool(x >= y),
        (op, a, b) => return Err(rerr(pos, format!("bad operands {a} {op:?} {b}"))),
    })
}

/// Run a checked program on the given runtime. Object managers and pool
/// workers are daemons; the call returns when `main` finishes (or
/// immediately after object setup when there is no `main`).
///
/// # Errors
///
/// [`RunError::Run`] for runtime failures (body errors, shutdowns,
/// protocol violations surfaced by the core).
pub fn run_checked(rt: &Runtime, checked: &Arc<Checked>, out: Output) -> Result<(), RunError> {
    run_checked_with_pool(rt, checked, out, PoolMode::PerSlot)
}

/// As [`run_checked`], with an explicit process-pool strategy (paper §3's
/// compiler switch).
///
/// # Errors
///
/// As [`run_checked`].
pub fn run_checked_with_pool(
    rt: &Runtime,
    checked: &Arc<Checked>,
    out: Output,
    pool: PoolMode,
) -> Result<(), RunError> {
    let flat_base: Vec<usize> = checked
        .objects
        .iter()
        .scan(0usize, |acc, info| {
            let base = *acc;
            *acc += info.entries.len();
            Some(base)
        })
        .collect();
    let total_entries: usize = checked.objects.iter().map(|o| o.entries.len()).sum();
    let vm = Arc::new(Vm {
        checked: Arc::clone(checked),
        objects: (0..checked.objects.len())
            .map(|_| OnceLock::new())
            .collect(),
        entry_ids: (0..total_entries).map(|_| OnceLock::new()).collect(),
        flat_base,
        envs: checked
            .objects
            .iter()
            .map(|info| {
                let imp = &checked.program.impls[info.impl_idx];
                let env: HashMap<String, Value> = imp
                    .vars
                    .iter()
                    .map(|v| (v.name.clone(), default_value(&v.ty, &v.name)))
                    .collect();
                Arc::new(Mutex::new(env))
            })
            .collect(),
        rt: rt.clone(),
        out,
    });
    // Build and spawn every object.
    for (oi, info) in checked.objects.iter().enumerate() {
        let imp = &checked.program.impls[info.impl_idx];
        // Run initialization code first (paper: "its initialization code
        // is first executed and then its manager process is implicitly
        // created").
        {
            let interp = Interp {
                vm: &vm,
                cur_obj: Some(oi),
            };
            let mut frame = HashMap::new();
            interp
                .exec_block(&mut frame, &imp.init, None)
                .map_err(RunError::Run)?;
        }
        let mut builder = ObjectBuilder::new(&info.name).pool(pool);
        for e in &info.entries {
            let mut def = EntryDef::new(&e.name)
                .params(e.public_params.iter().map(conv_ty))
                .results(e.public_results.iter().map(conv_ty))
                .hidden_params(e.hidden_params.iter().map(conv_ty))
                .hidden_results(e.hidden_results.iter().map(conv_ty))
                .array(e.array);
            if e.local {
                def = def.local();
            }
            if let Some((kp, kr)) = e.intercept {
                def = def.intercept_params(kp).intercept_results(kr);
            }
            let vm2 = Arc::clone(&vm);
            let impl_idx = e.impl_idx;
            def = def.body(move |_ctx, args| {
                let interp = Interp {
                    vm: &vm2,
                    cur_obj: Some(oi),
                };
                let info = &vm2.checked.objects[oi];
                let imp = &vm2.checked.program.impls[info.impl_idx];
                let p = &imp.procs[impl_idx];
                let mut frame = HashMap::new();
                for (prm, v) in p.header.params.iter().zip(args) {
                    frame.insert(prm.name.clone(), v);
                }
                for l in &p.vars {
                    frame.insert(l.name.clone(), default_value(&l.ty, &l.name));
                }
                let expected = p.header.results.len();
                match interp.exec_block(&mut frame, &p.body, None)? {
                    Flow::Return(vals) => Ok(vals),
                    Flow::Normal if expected == 0 => Ok(vec![]),
                    Flow::Normal => Err(rerr(
                        p.header.pos,
                        format!(
                            "procedure `{}` ended without returning {expected} value(s)",
                            p.header.name
                        ),
                    )),
                }
            });
            builder = builder.entry(def);
        }
        if let Some(mgr_ast) = &imp.manager {
            let vm2 = Arc::clone(&vm);
            let mgr_vars: Vec<Param> = mgr_ast.vars.clone();
            builder = builder.manager(move |mctx| {
                let interp = Interp {
                    vm: &vm2,
                    cur_obj: Some(oi),
                };
                let info = &vm2.checked.objects[oi];
                let imp = &vm2.checked.program.impls[info.impl_idx];
                let mgr_ast = imp.manager.as_ref().expect("manager present");
                let mut frame = HashMap::new();
                for v in &mgr_vars {
                    frame.insert(v.name.clone(), default_value(&v.ty, &v.name));
                }
                let tokens = Mutex::new(Tokens::default());
                let env = MgrEnv {
                    ctx: mctx,
                    tokens: &tokens,
                };
                interp
                    .exec_block(&mut frame, &mgr_ast.body, Some(&env))
                    .map(|_| ())
            });
        }
        let handle = builder.spawn(rt).map_err(RunError::Run)?;
        // Intern the entry ids first: the handle `OnceLock` gates
        // availability, so ids are always present once the handle is.
        let base = vm.flat_base[oi];
        for (ei, e) in info.entries.iter().enumerate() {
            let id = handle.entry_id(&e.name).map_err(RunError::Run)?;
            let _ = vm.entry_ids[base + ei].set(id);
        }
        let _ = vm.objects[oi].set(handle);
    }
    // Run main.
    let result = if let Some(main) = &checked.program.main {
        let interp = Interp {
            vm: &vm,
            cur_obj: None,
        };
        let mut frame: HashMap<String, Value> = main
            .vars
            .iter()
            .map(|v| (v.name.clone(), default_value(&v.ty, &v.name)))
            .collect();
        interp
            .exec_block(&mut frame, &main.body, None)
            .map(|_| ())
            .map_err(RunError::Run)
    } else {
        Ok(())
    };
    // Tear the objects down.
    for slot in &vm.objects {
        if let Some(h) = slot.get() {
            h.shutdown();
        }
    }
    result
}

/// Parse, check, and run an ALPS source string.
///
/// # Errors
///
/// [`RunError::Lang`] for syntax/type errors, [`RunError::Run`] for
/// runtime failures.
pub fn run_source(rt: &Runtime, src: &str, out: Output) -> Result<(), RunError> {
    let checked = Arc::new(crate::check::check(crate::parser::parse(src)?)?);
    run_checked(rt, &checked, out)
}
