//! Tokens of the ALPS surface language.

use std::fmt;

/// Source location (byte offset, 1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds. Keywords are case-sensitive lowercase, as in the paper's
/// examples (`object Buffer defines … end Buffer`).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // token names are self-describing
pub enum Tok {
    // Literals and names
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Keywords
    KwObject,
    KwDefines,
    KwImplements,
    KwProc,
    KwReturns,
    KwManager,
    KwIntercepts,
    KwBegin,
    KwEnd,
    KwVar,
    KwConst,
    KwIf,
    KwThen,
    KwElsif,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwTo,
    KwPar,
    KwAnd,
    KwOr,
    KwNot,
    KwSelect,
    KwLoop,
    KwWhen,
    KwPri,
    KwAccept,
    KwStart,
    KwAwait,
    KwFinish,
    KwExecute,
    KwSend,
    KwReceive,
    KwReturn,
    KwSkip,
    KwTrue,
    KwFalse,
    KwMod,
    KwMain,
    KwLocal,
    // Types
    KwInt,
    KwBool,
    KwFloat,
    KwString,
    KwChan,
    KwList,
    // Punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    DotDot,
    Assign, // :=
    Arrow,  // =>
    Hash,   // #
    Plus,
    Minus,
    Star,
    Slash,
    Eq, // =
    Ne, // <>
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::KwObject => "object",
                    Tok::KwDefines => "defines",
                    Tok::KwImplements => "implements",
                    Tok::KwProc => "proc",
                    Tok::KwReturns => "returns",
                    Tok::KwManager => "manager",
                    Tok::KwIntercepts => "intercepts",
                    Tok::KwBegin => "begin",
                    Tok::KwEnd => "end",
                    Tok::KwVar => "var",
                    Tok::KwConst => "const",
                    Tok::KwIf => "if",
                    Tok::KwThen => "then",
                    Tok::KwElsif => "elsif",
                    Tok::KwElse => "else",
                    Tok::KwWhile => "while",
                    Tok::KwDo => "do",
                    Tok::KwFor => "for",
                    Tok::KwTo => "to",
                    Tok::KwPar => "par",
                    Tok::KwAnd => "and",
                    Tok::KwOr => "or",
                    Tok::KwNot => "not",
                    Tok::KwSelect => "select",
                    Tok::KwLoop => "loop",
                    Tok::KwWhen => "when",
                    Tok::KwPri => "pri",
                    Tok::KwAccept => "accept",
                    Tok::KwStart => "start",
                    Tok::KwAwait => "await",
                    Tok::KwFinish => "finish",
                    Tok::KwExecute => "execute",
                    Tok::KwSend => "send",
                    Tok::KwReceive => "receive",
                    Tok::KwReturn => "return",
                    Tok::KwSkip => "skip",
                    Tok::KwTrue => "true",
                    Tok::KwFalse => "false",
                    Tok::KwMod => "mod",
                    Tok::KwMain => "main",
                    Tok::KwLocal => "local",
                    Tok::KwInt => "int",
                    Tok::KwBool => "bool",
                    Tok::KwFloat => "float",
                    Tok::KwString => "string",
                    Tok::KwChan => "chan",
                    Tok::KwList => "list",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Dot => ".",
                    Tok::DotDot => "..",
                    Tok::Assign => ":=",
                    Tok::Arrow => "=>",
                    Tok::Hash => "#",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Eq => "=",
                    Tok::Ne => "<>",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

pub(crate) fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "object" => Tok::KwObject,
        "defines" => Tok::KwDefines,
        "implements" => Tok::KwImplements,
        "proc" => Tok::KwProc,
        "returns" => Tok::KwReturns,
        "manager" => Tok::KwManager,
        "intercepts" => Tok::KwIntercepts,
        "begin" => Tok::KwBegin,
        "end" => Tok::KwEnd,
        "var" => Tok::KwVar,
        "const" => Tok::KwConst,
        "if" => Tok::KwIf,
        "then" => Tok::KwThen,
        "elsif" => Tok::KwElsif,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "do" => Tok::KwDo,
        "for" => Tok::KwFor,
        "to" => Tok::KwTo,
        "par" => Tok::KwPar,
        "and" => Tok::KwAnd,
        "or" => Tok::KwOr,
        "not" => Tok::KwNot,
        "select" => Tok::KwSelect,
        "loop" => Tok::KwLoop,
        "when" => Tok::KwWhen,
        "pri" => Tok::KwPri,
        "accept" => Tok::KwAccept,
        "start" => Tok::KwStart,
        "await" => Tok::KwAwait,
        "finish" => Tok::KwFinish,
        "execute" => Tok::KwExecute,
        "send" => Tok::KwSend,
        "receive" => Tok::KwReceive,
        "return" => Tok::KwReturn,
        "skip" => Tok::KwSkip,
        "true" => Tok::KwTrue,
        "false" => Tok::KwFalse,
        "mod" => Tok::KwMod,
        "main" => Tok::KwMain,
        "local" => Tok::KwLocal,
        "int" => Tok::KwInt,
        "bool" => Tok::KwBool,
        "float" => Tok::KwFloat,
        "string" => Tok::KwString,
        "chan" => Tok::KwChan,
        "list" => Tok::KwList,
        _ => return None,
    })
}
