//! Diagnostics for the ALPS language frontend.

use std::fmt;

use crate::token::Pos;

/// A lex, parse, or type error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Position the error was detected at.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// Build an error at a position.
    pub fn at(pos: Pos, message: impl Into<String>) -> LangError {
        LangError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::at(
            Pos {
                offset: 3,
                line: 2,
                col: 1,
            },
            "boom",
        );
        assert_eq!(e.to_string(), "2:1: boom");
    }
}
