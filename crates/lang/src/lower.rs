//! Lowering: checked AST → resolved IR ([`crate::ir`]).
//!
//! Lowering performs every name resolution the interpreter pays for at
//! run time, once, at compile time:
//!
//! * object names → object indices (handle-table slots),
//! * entry names → entry indices plus a position in the flat entry-id
//!   table (so the backend calls `handle.call_id(id, …)`),
//! * variable names → frame slots, environment slots, or guard-overlay
//!   slots.
//!
//! Frame-slot allocation mirrors the scoping rules of [`crate::check`]:
//! parameters first, declared locals next, then a monotonically growing
//! tail of slots for `for`/`par` loop variables and implicitly declared
//! guard/receive bindings. Slots are never reused — the checker
//! guarantees no out-of-scope reads, so a dead slot is merely a `Unit`
//! cell in the activation frame.
//!
//! Lowering is infallible on checked programs; any name it cannot
//! resolve is a checker bug and panics.

use std::collections::HashMap;

use alps_core::{Ty, Value};

use crate::ast::*;
use crate::check::{Checked, ObjInfo};
use crate::ir::*;

fn conv_ty(t: &TypeExpr) -> Ty {
    match t {
        TypeExpr::Int => Ty::Int,
        TypeExpr::Bool => Ty::Bool,
        TypeExpr::Float => Ty::Float,
        TypeExpr::Str => Ty::Str,
        TypeExpr::Chan(sig) => Ty::Chan(sig.iter().map(conv_ty).collect()),
        TypeExpr::List(e) => Ty::List(Box::new(conv_ty(e))),
    }
}

fn default_of(t: &TypeExpr, name: &str) -> DefaultVal {
    match t {
        TypeExpr::Int => DefaultVal::Int,
        TypeExpr::Bool => DefaultVal::Bool,
        TypeExpr::Float => DefaultVal::Float,
        TypeExpr::Str => DefaultVal::Str,
        TypeExpr::Chan(sig) => {
            DefaultVal::Chan(name.to_string(), sig.iter().map(conv_ty).collect())
        }
        TypeExpr::List(_) => DefaultVal::List,
    }
}

/// Lower a checked program to resolved IR.
///
/// # Panics
///
/// On names the checker should have rejected (a checker/lowering
/// disagreement is a bug, not a user error).
pub fn lower(checked: &Checked) -> CUnit {
    let mut flat_base = Vec::with_capacity(checked.objects.len());
    let mut total = 0usize;
    for info in &checked.objects {
        flat_base.push(total);
        total += info.entries.len();
    }
    let mut objects = Vec::with_capacity(checked.objects.len());
    for (oi, info) in checked.objects.iter().enumerate() {
        let imp = &checked.program.impls[info.impl_idx];
        let env_map: HashMap<String, usize> = imp
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.clone(), i))
            .collect();
        let env: Vec<DefaultVal> = imp
            .vars
            .iter()
            .map(|v| default_of(&v.ty, &v.name))
            .collect();
        let mut entries = Vec::with_capacity(info.entries.len());
        for e in &info.entries {
            let p = &imp.procs[e.impl_idx];
            let mut cx = Cx::new(checked, &flat_base, Some((oi, info)), &env_map);
            let code = cx.lower_proc(
                &e.name,
                &p.header.params,
                &p.vars,
                &p.body,
                p.header.results.len(),
                p.header.pos,
            );
            entries.push(CEntry {
                name: e.name.clone(),
                public_params: e.public_params.iter().map(conv_ty).collect(),
                public_results: e.public_results.iter().map(conv_ty).collect(),
                hidden_params: e.hidden_params.iter().map(conv_ty).collect(),
                hidden_results: e.hidden_results.iter().map(conv_ty).collect(),
                array: e.array,
                local: e.local,
                intercept: e.intercept,
                code,
            });
        }
        let manager = imp.manager.as_ref().map(|m| {
            let mut cx = Cx::new(checked, &flat_base, Some((oi, info)), &env_map);
            cx.manager = true;
            cx.lower_proc("manager", &[], &m.vars, &m.body, 0, m.pos)
        });
        let init = if imp.init.is_empty() {
            None
        } else {
            let mut cx = Cx::new(checked, &flat_base, Some((oi, info)), &env_map);
            Some(cx.lower_proc("init", &[], &[], &imp.init, 0, imp.pos))
        };
        let mut tok_base = Vec::with_capacity(info.entries.len());
        let mut tok_len = 0usize;
        for e in &info.entries {
            tok_base.push(tok_len);
            tok_len += e.array;
        }
        objects.push(CObject {
            name: info.name.clone(),
            env,
            entries,
            manager,
            init,
            tok_base,
            tok_len,
        });
    }
    let empty_env = HashMap::new();
    let main = checked.program.main.as_ref().map(|m| {
        let mut cx = Cx::new(checked, &flat_base, None, &empty_env);
        cx.lower_proc("main", &[], &m.vars, &m.body, 0, m.pos)
    });
    CUnit {
        objects,
        main,
        flat_base,
        total_entries: total,
    }
}

/// Lowering context for one code block (entry body, manager, init, main).
struct Cx<'c> {
    checked: &'c Checked,
    flat_base: &'c [usize],
    /// Current object: `(index, info)`; `None` while lowering `main`.
    obj: Option<(usize, &'c ObjInfo)>,
    /// Object-variable name → environment slot.
    env_map: &'c HashMap<String, usize>,
    /// Lexical scopes mapping names to frame slots. Slots grow
    /// monotonically; popping a scope only removes visibility.
    scopes: Vec<HashMap<String, usize>>,
    next_slot: usize,
    /// Guard-overlay names (quantifier + bind names) → overlay slot,
    /// consulted first while lowering `when`/`pri` expressions.
    overlay: Option<HashMap<String, usize>>,
    manager: bool,
}

impl<'c> Cx<'c> {
    fn new(
        checked: &'c Checked,
        flat_base: &'c [usize],
        obj: Option<(usize, &'c ObjInfo)>,
        env_map: &'c HashMap<String, usize>,
    ) -> Self {
        Cx {
            checked,
            flat_base,
            obj,
            env_map,
            scopes: vec![HashMap::new()],
            next_slot: 0,
            overlay: None,
            manager: false,
        }
    }

    fn lower_proc(
        &mut self,
        name: &str,
        params: &[Param],
        locals: &[Param],
        body: &[Stmt],
        result_count: usize,
        pos: crate::token::Pos,
    ) -> CProc {
        for p in params {
            self.declare(&p.name);
        }
        let defaults: Vec<DefaultVal> = locals.iter().map(|l| default_of(&l.ty, &l.name)).collect();
        for l in locals {
            self.declare(&l.name);
        }
        let body = self.stmts(body);
        CProc {
            name: name.to_string(),
            params: params.len(),
            defaults,
            frame_size: self.next_slot,
            result_count,
            body,
            pos,
        }
    }

    // ---- scope helpers -------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), slot);
        slot
    }

    fn frame_slot(&self, name: &str) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    /// Resolve a read: overlay (guard scope) → frame → environment.
    fn resolve_read(&self, name: &str) -> VarRef {
        if let Some(ov) = &self.overlay {
            if let Some(&i) = ov.get(name) {
                return VarRef::Overlay(i);
            }
        }
        if let Some(s) = self.frame_slot(name) {
            return VarRef::Frame(s);
        }
        if let Some(&i) = self.env_map.get(name) {
            return VarRef::Env(i);
        }
        panic!("lower: unresolved variable `{name}` (checker should have rejected this)");
    }

    /// Resolve an assignment target: frame → environment (the checker
    /// rejects assignments to undeclared names).
    fn resolve_write(&self, name: &str) -> VarRef {
        if let Some(s) = self.frame_slot(name) {
            return VarRef::Frame(s);
        }
        if let Some(&i) = self.env_map.get(name) {
            return VarRef::Env(i);
        }
        panic!("lower: unresolved assignment target `{name}`");
    }

    /// Resolve a binding target (receive/accept/await binds): an existing
    /// frame or environment variable, else an implicit declaration in the
    /// current scope — exactly the checker's `bind_types` rule.
    fn resolve_bind(&mut self, name: &str) -> VarRef {
        if let Some(s) = self.frame_slot(name) {
            return VarRef::Frame(s);
        }
        if let Some(&i) = self.env_map.get(name) {
            return VarRef::Env(i);
        }
        VarRef::Frame(self.declare(name))
    }

    /// Loop-variable slot: reuse an existing frame slot (the interpreter
    /// overwrites the live entry) or declare a fresh one in the current
    /// (pushed) scope.
    fn loop_var_slot(&mut self, name: &str) -> usize {
        match self.frame_slot(name) {
            Some(s) => s,
            None => self.declare(name),
        }
    }

    fn entry_idx(&self, name: &str) -> usize {
        let (_, info) = self.obj.expect("entry reference outside an object");
        *info
            .entry_idx
            .get(name)
            .unwrap_or_else(|| panic!("lower: unknown procedure `{name}`"))
    }

    // ---- expressions ---------------------------------------------------

    fn exprs(&mut self, es: &[Expr]) -> Vec<CExpr> {
        es.iter().map(|e| self.expr(e)).collect()
    }

    fn expr(&mut self, e: &Expr) -> CExpr {
        match e {
            Expr::Int(v, _) => CExpr::Const(Value::Int(*v)),
            Expr::Float(v, _) => CExpr::Const(Value::Float(*v)),
            Expr::Str(s, _) => CExpr::Const(Value::str(s)),
            Expr::Bool(b, _) => CExpr::Const(Value::Bool(*b)),
            Expr::Var(name, pos) => CExpr::Var(self.resolve_read(name), *pos),
            Expr::Pending(entry, pos) => CExpr::Pending(self.entry_idx(entry), *pos),
            Expr::Unary(op, inner, pos) => CExpr::Unary(*op, Box::new(self.expr(inner)), *pos),
            Expr::Binary(op, a, b, pos) => {
                CExpr::Binary(*op, Box::new(self.expr(a)), Box::new(self.expr(b)), *pos)
            }
            Expr::Call(target, args, pos) => self.call(target, args, *pos),
        }
    }

    fn call(&mut self, target: &CallTarget, args: &[Expr], pos: crate::token::Pos) -> CExpr {
        match target {
            CallTarget::Entry(obj, entry) => {
                let oi = *self
                    .checked
                    .obj_idx
                    .get(obj)
                    .unwrap_or_else(|| panic!("lower: unknown object `{obj}`"));
                let ei = *self.checked.objects[oi]
                    .entry_idx
                    .get(entry)
                    .unwrap_or_else(|| panic!("lower: unknown entry `{obj}.{entry}`"));
                CExpr::CallEntry {
                    obj: oi,
                    flat: self.flat_base[oi] + ei,
                    args: self.exprs(args),
                    pos,
                }
            }
            CallTarget::Plain(name) => {
                if let Some(b) = self.builtin(name, args, pos) {
                    return b;
                }
                let ei = self.entry_idx(name);
                let (oi, info) = self.obj.expect("sibling call inside an object");
                if info.entries[ei].intercept.is_some() {
                    CExpr::CallSelf {
                        flat: self.flat_base[oi] + ei,
                        args: self.exprs(args),
                        pos,
                    }
                } else {
                    CExpr::CallInline {
                        entry: ei,
                        args: self.exprs(args),
                        pos,
                    }
                }
            }
        }
    }

    /// Builtins shadow sibling procedures, exactly as in the checker and
    /// the interpreter. The mutating list builtins (`push`/`remove`/
    /// `pop`/`set`) resolve their first argument to a write target.
    fn builtin(&mut self, name: &str, args: &[Expr], pos: crate::token::Pos) -> Option<CExpr> {
        let list_target = |cx: &Self, what: &str| -> VarRef {
            match &args[0] {
                Expr::Var(v, _) => cx.resolve_read(v),
                _ => panic!("lower: `{what}` needs a list variable"),
            }
        };
        let b = match name {
            "print" => CExpr::CallBuiltin(Builtin::Print, self.exprs(args), pos),
            "str" => CExpr::CallBuiltin(Builtin::Str, self.exprs(args), pos),
            "len" => CExpr::CallBuiltin(Builtin::Len, self.exprs(args), pos),
            "get" => CExpr::CallBuiltin(Builtin::Get, self.exprs(args), pos),
            "now" => CExpr::CallBuiltin(Builtin::Now, self.exprs(args), pos),
            "sleep" => CExpr::CallBuiltin(Builtin::Sleep, self.exprs(args), pos),
            "push" => {
                let t = list_target(self, "push");
                CExpr::CallBuiltin(Builtin::Push(t), self.exprs(&args[1..]), pos)
            }
            "remove" => {
                let t = list_target(self, "remove");
                CExpr::CallBuiltin(Builtin::Remove(t), self.exprs(&args[1..]), pos)
            }
            "pop" => {
                let t = list_target(self, "pop");
                CExpr::CallBuiltin(Builtin::Pop(t), self.exprs(&args[1..]), pos)
            }
            "set" => {
                let t = list_target(self, "set");
                CExpr::CallBuiltin(Builtin::Set(t), self.exprs(&args[1..]), pos)
            }
            _ => return None,
        };
        Some(b)
    }

    // ---- statements ----------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Vec<CStmt> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, s: &Stmt) -> CStmt {
        match s {
            Stmt::Skip(_) => CStmt::Skip,
            Stmt::Assign(lvs, e, pos) => {
                let e = self.expr(e);
                let targets = lvs
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_write(n))
                    .collect();
                CStmt::Assign(targets, e, *pos)
            }
            Stmt::Call(target, args, pos) => CStmt::Expr(self.call(target, args, *pos)),
            Stmt::If(arms, els, _) => CStmt::If(
                arms.iter()
                    .map(|(c, body)| (self.expr(c), self.stmts(body)))
                    .collect(),
                self.stmts(els),
            ),
            Stmt::While(c, body, _) => CStmt::While(self.expr(c), self.stmts(body)),
            Stmt::For(v, lo, hi, body, _) => {
                let lo = self.expr(lo);
                let hi = self.expr(hi);
                self.push_scope();
                let slot = self.loop_var_slot(v);
                let body = self.stmts(body);
                self.pop_scope();
                CStmt::For(slot, lo, hi, body)
            }
            Stmt::Send(chan, args, pos) => CStmt::Send(self.expr(chan), self.exprs(args), *pos),
            Stmt::Receive(chan, binds, pos) => {
                let chan = self.expr(chan);
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                CStmt::Receive(chan, targets, *pos)
            }
            Stmt::Select(arms, pos) => CStmt::Select(self.arms(arms), *pos),
            Stmt::Loop(arms, pos) => CStmt::LoopSel(self.arms(arms), *pos),
            Stmt::Par(calls, pos) => {
                let branches = calls
                    .iter()
                    .map(|(t, args)| self.par_branch(t, args, *pos))
                    .collect();
                CStmt::Par(branches, *pos)
            }
            Stmt::ParFor(v, lo, hi, t, args, pos) => {
                let lo = self.expr(lo);
                let hi = self.expr(hi);
                self.push_scope();
                // The loop variable shadows like the interpreter's
                // argument-evaluation overlay: always a fresh slot, the
                // outer variable (if any) is untouched.
                let var = self.declare(v);
                let branch = self.par_branch(t, args, *pos);
                self.pop_scope();
                CStmt::ParFor {
                    var,
                    lo,
                    hi,
                    branch,
                    pos: *pos,
                }
            }
            Stmt::Return(args, pos) => CStmt::Return(self.exprs(args), *pos),
            Stmt::Accept(slot, binds, pos) => {
                let entry = self.entry_idx(&slot.entry);
                let ix = slot.index.as_ref().map(|e| self.expr(e));
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                CStmt::Accept {
                    entry,
                    slot: ix,
                    binds: targets,
                    pos: *pos,
                }
            }
            Stmt::AwaitStmt(slot, binds, pos) => {
                let entry = self.entry_idx(&slot.entry);
                let ix = slot.index.as_ref().map(|e| self.expr(e));
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                CStmt::Await {
                    entry,
                    slot: ix,
                    binds: targets,
                    pos: *pos,
                }
            }
            Stmt::Start(slot, args, pos) => {
                let entry = self.entry_idx(&slot.entry);
                let (_, info) = self.obj.expect("manager scope");
                let k = info.entries[entry].intercept.map(|(p, _)| p).unwrap_or(0);
                CStmt::Start {
                    entry,
                    slot: slot.index.as_ref().map(|e| self.expr(e)),
                    args: self.exprs(args),
                    intercept_params: k,
                    pos: *pos,
                }
            }
            Stmt::Finish(slot, args, pos) => {
                let entry = self.entry_idx(&slot.entry);
                CStmt::Finish {
                    entry,
                    slot: slot.index.as_ref().map(|e| self.expr(e)),
                    args: self.exprs(args),
                    pos: *pos,
                }
            }
            Stmt::Execute(slot, args, pos) => {
                let entry = self.entry_idx(&slot.entry);
                let (_, info) = self.obj.expect("manager scope");
                let k = info.entries[entry].intercept.map(|(p, _)| p).unwrap_or(0);
                CStmt::Execute {
                    entry,
                    slot: slot.index.as_ref().map(|e| self.expr(e)),
                    args: self.exprs(args),
                    intercept_params: k,
                    pos: *pos,
                }
            }
        }
    }

    fn par_branch(
        &mut self,
        target: &CallTarget,
        args: &[Expr],
        pos: crate::token::Pos,
    ) -> CParBranch {
        let CallTarget::Entry(obj, entry) = target else {
            panic!("lower: par branches must be entry calls");
        };
        let oi = *self
            .checked
            .obj_idx
            .get(obj)
            .unwrap_or_else(|| panic!("lower: unknown object `{obj}`"));
        let ei = *self.checked.objects[oi]
            .entry_idx
            .get(entry)
            .unwrap_or_else(|| panic!("lower: unknown entry `{obj}.{entry}`"));
        CParBranch {
            obj: oi,
            flat: self.flat_base[oi] + ei,
            args: self.exprs(args),
            pos,
        }
    }

    fn arms(&mut self, arms: &[Guarded]) -> Vec<CGuarded> {
        arms.iter().map(|a| self.arm(a)).collect()
    }

    fn arm(&mut self, arm: &Guarded) -> CGuarded {
        self.push_scope();
        // Bounds are evaluated before the quantifier variable is bound.
        let quant = arm.quantifier.as_ref().map(|(qv, lo, hi)| {
            let lo = self.expr(lo);
            let hi = self.expr(hi);
            (qv.clone(), lo, hi)
        });
        let quant = quant.map(|(qv, lo, hi)| (self.loop_var_slot(&qv), lo, hi));
        let (kind, bind_names) = match &arm.kind {
            GuardKind::Accept { slot, binds } => {
                let entry = self.entry_idx(&slot.entry);
                let names: Vec<String> = binds.iter().map(|LValue::Var(n, _)| n.clone()).collect();
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                (
                    CGuardKind::Accept {
                        entry,
                        binds: targets,
                    },
                    names,
                )
            }
            GuardKind::Await { slot, binds } => {
                let entry = self.entry_idx(&slot.entry);
                let names: Vec<String> = binds.iter().map(|LValue::Var(n, _)| n.clone()).collect();
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                (
                    CGuardKind::Await {
                        entry,
                        binds: targets,
                    },
                    names,
                )
            }
            GuardKind::Receive { chan, binds } => {
                let chan = self.expr(chan);
                let names: Vec<String> = binds.iter().map(|LValue::Var(n, _)| n.clone()).collect();
                let targets = binds
                    .iter()
                    .map(|LValue::Var(n, _)| self.resolve_bind(n))
                    .collect();
                (
                    CGuardKind::Receive {
                        chan,
                        binds: targets,
                    },
                    names,
                )
            }
            GuardKind::Plain => (CGuardKind::Plain, Vec::new()),
        };
        // `when`/`pri` see the candidate's values through the overlay:
        // slot 0 is the quantifier (if any), then the bind names in
        // order. The overlay shadows frame and environment, like the
        // interpreter's candidate-evaluation overlay.
        let (when, pri) = if matches!(arm.kind, GuardKind::Plain) {
            // Plain guards have no bound values; `when` (pre-evaluated)
            // and `pri` resolve in the ordinary arm scope.
            (
                arm.when.as_ref().map(|w| self.expr(w)),
                arm.pri.as_ref().map(|p| self.expr(p)),
            )
        } else {
            let mut ov = HashMap::new();
            let offset = usize::from(arm.quantifier.is_some());
            if let Some((qv, _, _)) = &arm.quantifier {
                ov.insert(qv.clone(), 0usize);
            }
            for (j, n) in bind_names.iter().enumerate() {
                ov.insert(n.clone(), offset + j);
            }
            self.overlay = Some(ov);
            let when = arm.when.as_ref().map(|w| self.expr(w));
            let pri = arm.pri.as_ref().map(|p| self.expr(p));
            self.overlay = None;
            (when, pri)
        };
        let body = self.stmts(&arm.body);
        self.pop_scope();
        CGuarded {
            quant,
            kind,
            when,
            pri,
            body,
            pos: arm.pos,
        }
    }
}
