//! `alps-run` — execute an ALPS program.
//!
//! ```text
//! alps-run [--threaded] [--compiled] [--check-only] <file.alps>
//! ```
//!
//! Programs run on the deterministic simulator by default (virtual time,
//! reproducible scheduling, deadlock detection); `--threaded` uses OS
//! threads instead. `--compiled` lowers the program to direct core
//! objects (interned entry ids, flat frames) instead of interpreting the
//! AST — same observable behaviour, near-embedded speed.

use std::process::ExitCode;
use std::sync::Arc;

use alps_lang::check::check;
use alps_lang::compile::run_compiled;
use alps_lang::interp::{run_checked, Output};
use alps_lang::parser::parse;
use alps_runtime::{Runtime, SimRuntime};

const USAGE: &str = "usage: alps-run [--threaded] [--compiled] [--check-only] <file.alps>";

fn main() -> ExitCode {
    let mut threaded = false;
    let mut compiled = false;
    let mut check_only = false;
    let mut file = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--threaded" => threaded = true,
            "--compiled" => compiled = true,
            "--check-only" => check_only = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            other => file = Some(other.to_string()),
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    let checked = match check(program) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("{file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    if check_only {
        println!("{file}: ok");
        return ExitCode::SUCCESS;
    }
    let run = move |rt: &Runtime| {
        if compiled {
            run_compiled(rt, &checked, Output::Stdout)
        } else {
            run_checked(rt, &checked, Output::Stdout)
        }
    };
    let result = if threaded {
        let rt = Runtime::threaded();
        let r = run(&rt);
        rt.shutdown();
        r
    } else {
        let sim = SimRuntime::new();
        match sim.run(move |rt| run(rt)) {
            Ok(inner) => inner,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{file}: {e}");
            ExitCode::FAILURE
        }
    }
}
