//! Static checking: resolves definitions against implementations, derives
//! hidden parameters/results (the implementation-side extras of §2.8),
//! validates intercepts clauses, scopes, types, and the manager-only
//! statements.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::*;
use crate::error::LangError;
use crate::token::Pos;

/// Resolved information about one procedure of an object.
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Procedure name.
    pub name: String,
    /// Hidden-array size (1 for a plain procedure).
    pub array: usize,
    /// Public parameter types (from the definition part).
    pub public_params: Vec<TypeExpr>,
    /// Public result types.
    pub public_results: Vec<TypeExpr>,
    /// Hidden parameter types (implementation extras).
    pub hidden_params: Vec<TypeExpr>,
    /// Hidden result types.
    pub hidden_results: Vec<TypeExpr>,
    /// Whether the procedure is local (absent from the definition part).
    pub local: bool,
    /// Intercepted prefix lengths `(params, results)`, if intercepted.
    pub intercept: Option<(usize, usize)>,
    /// Index into the implementation's proc list.
    pub impl_idx: usize,
}

/// Resolved information about one object.
#[derive(Debug, Clone)]
pub struct ObjInfo {
    /// Object name.
    pub name: String,
    /// Procedures, in implementation order.
    pub entries: Vec<EntryInfo>,
    /// Name → entry index.
    pub entry_idx: HashMap<String, usize>,
    /// Index into `Program::impls`.
    pub impl_idx: usize,
}

/// A checked program, ready for the interpreter.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The syntax tree.
    pub program: Arc<Program>,
    /// Objects in implementation order.
    pub objects: Vec<ObjInfo>,
    /// Object name → index.
    pub obj_idx: HashMap<String, usize>,
}

impl Checked {
    /// Look up an object by name.
    pub fn object(&self, name: &str) -> Option<&ObjInfo> {
        self.obj_idx.get(name).map(|i| &self.objects[*i])
    }
}

/// Check a parsed program.
///
/// # Errors
///
/// [`LangError`] describing the first inconsistency found.
pub fn check(program: Program) -> Result<Checked, LangError> {
    let program = Arc::new(program);
    let mut objects = Vec::new();
    let mut obj_idx = HashMap::new();
    let defs_by_name: HashMap<&str, &ObjectDef> =
        program.defs.iter().map(|d| (d.name.as_str(), d)).collect();
    for d in &program.defs {
        if !program.impls.iter().any(|i| i.name == d.name) {
            return Err(LangError::at(
                d.pos,
                format!("object `{}` is defined but never implemented", d.name),
            ));
        }
    }
    for (impl_idx, imp) in program.impls.iter().enumerate() {
        if obj_idx.contains_key(&imp.name) {
            return Err(LangError::at(
                imp.pos,
                format!("duplicate implementation of object `{}`", imp.name),
            ));
        }
        let def = defs_by_name.get(imp.name.as_str()).copied();
        let info = resolve_object(imp, def, impl_idx)?;
        obj_idx.insert(imp.name.clone(), objects.len());
        objects.push(info);
    }
    let checked = Checked {
        program: Arc::clone(&program),
        objects,
        obj_idx,
    };
    // Scope/statement checking per object and for main.
    for info in &checked.objects {
        let imp = &program.impls[info.impl_idx];
        let ck = ScopeChecker::new(&checked);
        ck.check_object(imp, info)?;
    }
    if let Some(main) = &program.main {
        let ck = ScopeChecker::new(&checked);
        ck.check_main(main)?;
    }
    Ok(checked)
}

fn type_prefix_matches(prefix: &[TypeExpr], full: &[TypeExpr]) -> bool {
    prefix.len() <= full.len() && prefix.iter().zip(full).all(|(a, b)| a == b)
}

fn resolve_object(
    imp: &ObjectImpl,
    def: Option<&ObjectDef>,
    impl_idx: usize,
) -> Result<ObjInfo, LangError> {
    let mut entries: Vec<EntryInfo> = Vec::new();
    let mut entry_idx: HashMap<String, usize> = HashMap::new();
    let def_procs: HashMap<&str, &ProcHeader> = def
        .map(|d| d.procs.iter().map(|p| (p.name.as_str(), p)).collect())
        .unwrap_or_default();
    for (pi, p) in imp.procs.iter().enumerate() {
        let h = &p.header;
        if entry_idx.contains_key(&h.name) {
            return Err(LangError::at(
                h.pos,
                format!("duplicate procedure `{}` in object `{}`", h.name, imp.name),
            ));
        }
        let impl_params: Vec<TypeExpr> = h.params.iter().map(|p| p.ty.clone()).collect();
        let impl_results = h.results.clone();
        let (public_params, public_results, hidden_params, hidden_results, local) =
            match def_procs.get(h.name.as_str()) {
                Some(dh) => {
                    if h.local {
                        return Err(LangError::at(
                            h.pos,
                            format!(
                                "procedure `{}` is exported by the definition but marked local",
                                h.name
                            ),
                        ));
                    }
                    let pub_p: Vec<TypeExpr> = dh.params.iter().map(|p| p.ty.clone()).collect();
                    let pub_r = dh.results.clone();
                    if !type_prefix_matches(&pub_p, &impl_params) {
                        return Err(LangError::at(
                            h.pos,
                            format!(
                                "implementation of `{}` does not extend the defined parameter \
                                 list (hidden parameters must come after the public ones)",
                                h.name
                            ),
                        ));
                    }
                    if !type_prefix_matches(&pub_r, &impl_results) {
                        return Err(LangError::at(
                            h.pos,
                            format!(
                                "implementation of `{}` does not extend the defined result list",
                                h.name
                            ),
                        ));
                    }
                    let hid_p = impl_params[pub_p.len()..].to_vec();
                    let hid_r = impl_results[pub_r.len()..].to_vec();
                    (pub_p, pub_r, hid_p, hid_r, false)
                }
                None => {
                    // Not exported: local procedure. Everything is public
                    // *within* the object; no hidden split applies unless
                    // intercepted with explicit prefixes (treated below).
                    (
                        impl_params.clone(),
                        impl_results.clone(),
                        vec![],
                        vec![],
                        true,
                    )
                }
            };
        let local = local || h.local;
        entry_idx.insert(h.name.clone(), entries.len());
        entries.push(EntryInfo {
            name: h.name.clone(),
            array: h.array.unwrap_or(1) as usize,
            public_params,
            public_results,
            hidden_params,
            hidden_results,
            local,
            intercept: None,
            impl_idx: pi,
        });
    }
    // Every defined proc must be implemented.
    if let Some(d) = def {
        for dh in &d.procs {
            if !entry_idx.contains_key(&dh.name) {
                return Err(LangError::at(
                    dh.pos,
                    format!(
                        "entry `{}` of object `{}` is defined but not implemented",
                        dh.name, d.name
                    ),
                ));
            }
            if dh.array.is_some() {
                return Err(LangError::at(
                    dh.pos,
                    "procedure arrays are hidden: the array size belongs in the \
                     implementation, not the definition (paper §2.5)",
                ));
            }
        }
    }
    // Resolve the intercepts clause.
    if let Some(m) = &imp.manager {
        for item in &m.intercepts {
            let Some(&ei) = entry_idx.get(&item.name) else {
                return Err(LangError::at(
                    item.pos,
                    format!("intercepts names unknown procedure `{}`", item.name),
                ));
            };
            let e = &mut entries[ei];
            if e.intercept.is_some() {
                return Err(LangError::at(
                    item.pos,
                    format!("procedure `{}` intercepted twice", item.name),
                ));
            }
            if !type_prefix_matches(&item.params, &e.public_params) {
                return Err(LangError::at(
                    item.pos,
                    format!(
                        "intercepted parameters of `{}` must be an initial subsequence \
                         of its public parameters",
                        item.name
                    ),
                ));
            }
            if !type_prefix_matches(&item.results, &e.public_results) {
                return Err(LangError::at(
                    item.pos,
                    format!(
                        "intercepted results of `{}` must be an initial subsequence of \
                         its public results",
                        item.name
                    ),
                ));
            }
            e.intercept = Some((item.params.len(), item.results.len()));
        }
    }
    for e in &entries {
        if e.intercept.is_none() && (!e.hidden_params.is_empty() || !e.hidden_results.is_empty()) {
            return Err(LangError::at(
                imp.pos,
                format!(
                    "procedure `{}` declares hidden parameters/results but is not in \
                     the manager's intercepts clause",
                    e.name
                ),
            ));
        }
        if e.intercept.is_some() && imp.manager.is_none() {
            unreachable!("intercepts are parsed inside the manager");
        }
    }
    Ok(ObjInfo {
        name: imp.name.clone(),
        entries,
        entry_idx,
        impl_idx,
    })
}

/// Where a statement appears, for the manager-only rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    ProcBody,
    Manager,
    Main,
    Init,
}

struct ScopeChecker<'c> {
    checked: &'c Checked,
}

struct Vars {
    frames: Vec<HashMap<String, TypeExpr>>,
}

impl Vars {
    fn new() -> Vars {
        Vars {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: TypeExpr) {
        self.frames
            .last_mut()
            .expect("at least one frame")
            .insert(name.to_string(), ty);
    }

    fn lookup(&self, name: &str) -> Option<&TypeExpr> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

impl<'c> ScopeChecker<'c> {
    fn new(checked: &'c Checked) -> Self {
        ScopeChecker { checked }
    }

    fn check_object(&self, imp: &ObjectImpl, info: &ObjInfo) -> Result<(), LangError> {
        let mut object_vars = Vars::new();
        for v in &imp.vars {
            object_vars.declare(&v.name, v.ty.clone());
        }
        // Init code: object vars only.
        self.check_stmts(&imp.init, &mut object_vars, Scope::Init, Some(info), &[])?;
        // Bodies.
        for p in &imp.procs {
            let mut vars = Vars::new();
            for v in &imp.vars {
                vars.declare(&v.name, v.ty.clone());
            }
            vars.push();
            for prm in &p.header.params {
                vars.declare(&prm.name, prm.ty.clone());
            }
            for l in &p.vars {
                vars.declare(&l.name, l.ty.clone());
            }
            self.check_stmts(
                &p.body,
                &mut vars,
                Scope::ProcBody,
                Some(info),
                &p.header.results,
            )?;
        }
        // Manager.
        if let Some(m) = &imp.manager {
            let mut vars = Vars::new();
            for v in &imp.vars {
                vars.declare(&v.name, v.ty.clone());
            }
            vars.push();
            for l in &m.vars {
                vars.declare(&l.name, l.ty.clone());
            }
            self.check_stmts(&m.body, &mut vars, Scope::Manager, Some(info), &[])?;
        }
        Ok(())
    }

    fn check_main(&self, main: &MainBlock) -> Result<(), LangError> {
        let mut vars = Vars::new();
        for v in &main.vars {
            vars.declare(&v.name, v.ty.clone());
        }
        self.check_stmts(&main.body, &mut vars, Scope::Main, None, &[])
    }

    fn entry<'a>(
        &'a self,
        info: &'a ObjInfo,
        name: &str,
        pos: Pos,
    ) -> Result<&'a EntryInfo, LangError> {
        info.entry_idx
            .get(name)
            .map(|i| &info.entries[*i])
            .ok_or_else(|| {
                LangError::at(
                    pos,
                    format!("object `{}` has no procedure `{}`", info.name, name),
                )
            })
    }

    #[allow(clippy::too_many_lines)]
    fn check_stmts(
        &self,
        stmts: &[Stmt],
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
        proc_results: &[TypeExpr],
    ) -> Result<(), LangError> {
        for s in stmts {
            self.check_stmt(s, vars, scope, obj, proc_results)?;
        }
        Ok(())
    }

    fn require_manager(&self, scope: Scope, what: &str, pos: Pos) -> Result<(), LangError> {
        if scope != Scope::Manager {
            return Err(LangError::at(
                pos,
                format!("`{what}` is a manager primitive and may only appear in a manager"),
            ));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn check_stmt(
        &self,
        s: &Stmt,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
        proc_results: &[TypeExpr],
    ) -> Result<(), LangError> {
        match s {
            Stmt::Skip(_) => Ok(()),
            Stmt::Assign(lvs, e, pos) => {
                let tys = self.expr_types(e, vars, scope, obj)?;
                if tys.len() != lvs.len() {
                    return Err(LangError::at(
                        *pos,
                        format!(
                            "assignment of {} value(s) to {} target(s)",
                            tys.len(),
                            lvs.len()
                        ),
                    ));
                }
                for (lv, ty) in lvs.iter().zip(tys) {
                    let LValue::Var(name, vpos) = lv;
                    let Some(want) = vars.lookup(name) else {
                        return Err(LangError::at(
                            *vpos,
                            format!("undeclared variable `{name}`"),
                        ));
                    };
                    if *want != ty {
                        return Err(LangError::at(
                            *vpos,
                            format!("cannot assign {ty:?} to `{name}` of type {want:?}"),
                        ));
                    }
                }
                Ok(())
            }
            Stmt::Call(target, args, pos) => {
                let _ = self.call_types(target, args, vars, scope, obj, *pos)?;
                Ok(())
            }
            Stmt::If(arms, els, _) => {
                for (c, body) in arms {
                    self.expect_bool(c, vars, scope, obj)?;
                    self.check_stmts(body, vars, scope, obj, proc_results)?;
                }
                self.check_stmts(els, vars, scope, obj, proc_results)
            }
            Stmt::While(c, body, _) => {
                self.expect_bool(c, vars, scope, obj)?;
                self.check_stmts(body, vars, scope, obj, proc_results)
            }
            Stmt::For(v, lo, hi, body, _) => {
                self.expect_int(lo, vars, scope, obj)?;
                self.expect_int(hi, vars, scope, obj)?;
                vars.push();
                vars.declare(v, TypeExpr::Int);
                let r = self.check_stmts(body, vars, scope, obj, proc_results);
                vars.pop();
                r
            }
            Stmt::Send(chan, args, pos) => {
                let sig = self.chan_sig(chan, vars, scope, obj)?;
                if sig.len() != args.len() {
                    return Err(LangError::at(
                        *pos,
                        format!("send of {} value(s) on chan({})", args.len(), sig.len()),
                    ));
                }
                for (a, want) in args.iter().zip(&sig) {
                    self.expect_type(a, want, vars, scope, obj)?;
                }
                Ok(())
            }
            Stmt::Receive(chan, binds, pos) => {
                let sig = self.chan_sig(chan, vars, scope, obj)?;
                self.bind_types(binds, &sig, vars, *pos)
            }
            Stmt::Select(arms, pos) | Stmt::Loop(arms, pos) => {
                self.require_manager(scope, "select/loop", *pos)?;
                let info = obj.expect("manager scope has an object");
                for arm in arms {
                    vars.push();
                    if let Some((qv, lo, hi)) = &arm.quantifier {
                        self.expect_int(lo, vars, scope, obj)?;
                        self.expect_int(hi, vars, scope, obj)?;
                        vars.declare(qv, TypeExpr::Int);
                    }
                    match &arm.kind {
                        GuardKind::Accept { slot, binds } => {
                            let e = self.entry(info, &slot.entry, slot.pos)?;
                            let Some((kp, _)) = e.intercept else {
                                return Err(LangError::at(
                                    slot.pos,
                                    format!("`accept {}`: procedure is not intercepted", e.name),
                                ));
                            };
                            if let Some(ix) = &slot.index {
                                self.expect_int(ix, vars, scope, obj)?;
                            }
                            let tys: Vec<TypeExpr> = e.public_params[..kp].to_vec();
                            self.bind_types(binds, &tys, vars, arm.pos)?;
                        }
                        GuardKind::Await { slot, binds } => {
                            let e = self.entry(info, &slot.entry, slot.pos)?;
                            let Some((_, kr)) = e.intercept else {
                                return Err(LangError::at(
                                    slot.pos,
                                    format!("`await {}`: procedure is not intercepted", e.name),
                                ));
                            };
                            if let Some(ix) = &slot.index {
                                self.expect_int(ix, vars, scope, obj)?;
                            }
                            let mut tys: Vec<TypeExpr> = e.public_results[..kr].to_vec();
                            tys.extend(e.hidden_results.iter().cloned());
                            self.bind_types(binds, &tys, vars, arm.pos)?;
                        }
                        GuardKind::Receive { chan, binds } => {
                            let sig = self.chan_sig(chan, vars, scope, obj)?;
                            self.bind_types(binds, &sig, vars, arm.pos)?;
                        }
                        GuardKind::Plain => {}
                    }
                    if let Some(w) = &arm.when {
                        self.expect_bool(w, vars, scope, obj)?;
                    }
                    if let Some(p) = &arm.pri {
                        self.expect_int(p, vars, scope, obj)?;
                    }
                    self.check_stmts(&arm.body, vars, scope, obj, proc_results)?;
                    vars.pop();
                }
                Ok(())
            }
            Stmt::Par(calls, pos) => {
                for (t, args) in calls {
                    match t {
                        CallTarget::Entry(..) => {
                            let _ = self.call_types(t, args, vars, scope, obj, *pos)?;
                        }
                        CallTarget::Plain(name) => {
                            return Err(LangError::at(
                                *pos,
                                format!(
                                    "`par` branches must call object entries (`X.P`); \
                                     `{name}` is not"
                                ),
                            ));
                        }
                    }
                }
                Ok(())
            }
            Stmt::ParFor(v, lo, hi, t, args, pos) => {
                self.expect_int(lo, vars, scope, obj)?;
                self.expect_int(hi, vars, scope, obj)?;
                vars.push();
                vars.declare(v, TypeExpr::Int);
                let r = match t {
                    CallTarget::Entry(..) => {
                        self.call_types(t, args, vars, scope, obj, *pos).map(|_| ())
                    }
                    CallTarget::Plain(name) => Err(LangError::at(
                        *pos,
                        format!("`par` branches must call object entries (`X.P`); `{name}` is not"),
                    )),
                };
                vars.pop();
                r
            }
            Stmt::Return(args, pos) => {
                if scope != Scope::ProcBody {
                    return Err(LangError::at(*pos, "`return` only in procedure bodies"));
                }
                if args.len() != proc_results.len() {
                    return Err(LangError::at(
                        *pos,
                        format!(
                            "return of {} value(s) from a procedure returning {}",
                            args.len(),
                            proc_results.len()
                        ),
                    ));
                }
                for (a, want) in args.iter().zip(proc_results) {
                    self.expect_type(a, want, vars, scope, obj)?;
                }
                Ok(())
            }
            Stmt::Accept(slot, binds, pos) => {
                self.require_manager(scope, "accept", *pos)?;
                let info = obj.expect("manager scope");
                let e = self.entry(info, &slot.entry, slot.pos)?;
                let Some((kp, _)) = e.intercept else {
                    return Err(LangError::at(
                        *pos,
                        format!("`accept {}`: procedure is not intercepted", e.name),
                    ));
                };
                if let Some(ix) = &slot.index {
                    self.expect_int(ix, vars, scope, obj)?;
                }
                let tys: Vec<TypeExpr> = e.public_params[..kp].to_vec();
                self.bind_types(binds, &tys, vars, *pos)
            }
            Stmt::AwaitStmt(slot, binds, pos) => {
                self.require_manager(scope, "await", *pos)?;
                let info = obj.expect("manager scope");
                let e = self.entry(info, &slot.entry, slot.pos)?;
                let Some((_, kr)) = e.intercept else {
                    return Err(LangError::at(
                        *pos,
                        format!("`await {}`: procedure is not intercepted", e.name),
                    ));
                };
                if let Some(ix) = &slot.index {
                    self.expect_int(ix, vars, scope, obj)?;
                }
                let mut tys: Vec<TypeExpr> = e.public_results[..kr].to_vec();
                tys.extend(e.hidden_results.iter().cloned());
                self.bind_types(binds, &tys, vars, *pos)
            }
            Stmt::Start(slot, args, pos) | Stmt::Execute(slot, args, pos) => {
                let what = if matches!(s, Stmt::Start(..)) {
                    "start"
                } else {
                    "execute"
                };
                self.require_manager(scope, what, *pos)?;
                let info = obj.expect("manager scope");
                let e = self.entry(info, &slot.entry, slot.pos)?;
                let Some((kp, _)) = e.intercept else {
                    return Err(LangError::at(
                        *pos,
                        format!("`{what} {}`: procedure is not intercepted", e.name),
                    ));
                };
                if let Some(ix) = &slot.index {
                    self.expect_int(ix, vars, scope, obj)?;
                }
                if args.is_empty() {
                    if !e.hidden_params.is_empty() {
                        return Err(LangError::at(
                            *pos,
                            format!("`{what} {}` must supply the hidden parameter(s)", e.name),
                        ));
                    }
                } else {
                    let mut want: Vec<TypeExpr> = e.public_params[..kp].to_vec();
                    want.extend(e.hidden_params.iter().cloned());
                    if args.len() != want.len() {
                        return Err(LangError::at(
                            *pos,
                            format!(
                                "`{what} {}` takes the {} intercepted parameter(s) plus {} \
                                 hidden parameter(s), got {}",
                                e.name,
                                kp,
                                e.hidden_params.len(),
                                args.len()
                            ),
                        ));
                    }
                    for (a, w) in args.iter().zip(&want) {
                        self.expect_type(a, w, vars, scope, obj)?;
                    }
                }
                Ok(())
            }
            Stmt::Finish(slot, args, pos) => {
                self.require_manager(scope, "finish", *pos)?;
                let info = obj.expect("manager scope");
                let e = self.entry(info, &slot.entry, slot.pos)?;
                let Some((_, kr)) = e.intercept else {
                    return Err(LangError::at(
                        *pos,
                        format!("`finish {}`: procedure is not intercepted", e.name),
                    ));
                };
                if let Some(ix) = &slot.index {
                    self.expect_int(ix, vars, scope, obj)?;
                }
                // Either the intercepted result prefix (normal) or the full
                // public result list (combining); empty = forward as-is.
                let n = args.len();
                if n != 0 && n != kr && n != e.public_results.len() {
                    return Err(LangError::at(
                        *pos,
                        format!(
                            "`finish {}` takes {} intercepted result(s), or all {} public \
                             results when combining, or none to forward as-is",
                            e.name,
                            kr,
                            e.public_results.len()
                        ),
                    ));
                }
                let want: &[TypeExpr] = if n == kr {
                    &e.public_results[..kr]
                } else {
                    &e.public_results
                };
                for (a, w) in args.iter().zip(want) {
                    self.expect_type(a, w, vars, scope, obj)?;
                }
                Ok(())
            }
        }
    }

    fn bind_types(
        &self,
        binds: &[LValue],
        tys: &[TypeExpr],
        vars: &mut Vars,
        pos: Pos,
    ) -> Result<(), LangError> {
        if binds.len() != tys.len() {
            return Err(LangError::at(
                pos,
                format!("expected {} binding(s), got {}", tys.len(), binds.len()),
            ));
        }
        for (b, ty) in binds.iter().zip(tys) {
            let LValue::Var(name, vpos) = b;
            match vars.lookup(name) {
                Some(want) if want == ty => {}
                Some(want) => {
                    return Err(LangError::at(
                        *vpos,
                        format!("`{name}` has type {want:?}, cannot bind {ty:?}"),
                    ))
                }
                None => {
                    // Guard binds implicitly declare in the arm scope.
                    vars.declare(name, ty.clone());
                }
            }
        }
        Ok(())
    }

    fn chan_sig(
        &self,
        chan: &Expr,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
    ) -> Result<Vec<TypeExpr>, LangError> {
        let tys = self.expr_types(chan, vars, scope, obj)?;
        match tys.as_slice() {
            [TypeExpr::Chan(sig)] => Ok(sig.clone()),
            other => Err(LangError::at(
                chan.pos(),
                format!("expected a channel, found {other:?}"),
            )),
        }
    }

    fn expect_bool(
        &self,
        e: &Expr,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
    ) -> Result<(), LangError> {
        self.expect_type(e, &TypeExpr::Bool, vars, scope, obj)
    }

    fn expect_int(
        &self,
        e: &Expr,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
    ) -> Result<(), LangError> {
        self.expect_type(e, &TypeExpr::Int, vars, scope, obj)
    }

    fn expect_type(
        &self,
        e: &Expr,
        want: &TypeExpr,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
    ) -> Result<(), LangError> {
        let tys = self.expr_types(e, vars, scope, obj)?;
        match tys.as_slice() {
            [one] if one == want => Ok(()),
            other => Err(LangError::at(
                e.pos(),
                format!("expected {want:?}, found {other:?}"),
            )),
        }
    }

    /// Types of an expression; multi-result entry calls yield a tuple.
    #[allow(clippy::too_many_lines)]
    fn expr_types(
        &self,
        e: &Expr,
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
    ) -> Result<Vec<TypeExpr>, LangError> {
        Ok(match e {
            Expr::Int(..) => vec![TypeExpr::Int],
            Expr::Float(..) => vec![TypeExpr::Float],
            Expr::Str(..) => vec![TypeExpr::Str],
            Expr::Bool(..) => vec![TypeExpr::Bool],
            Expr::Var(name, pos) => {
                let Some(ty) = vars.lookup(name) else {
                    return Err(LangError::at(*pos, format!("undeclared variable `{name}`")));
                };
                vec![ty.clone()]
            }
            Expr::Pending(entry, pos) => {
                if scope != Scope::Manager {
                    return Err(LangError::at(
                        *pos,
                        "`#P` pending counts are only available in the manager",
                    ));
                }
                let info = obj.expect("manager scope");
                let _ = self.entry(info, entry, *pos)?;
                vec![TypeExpr::Int]
            }
            Expr::Unary(op, inner, pos) => {
                let t = self.expr_types(inner, vars, scope, obj)?;
                match (op, t.as_slice()) {
                    (UnOp::Neg, [TypeExpr::Int]) => vec![TypeExpr::Int],
                    (UnOp::Neg, [TypeExpr::Float]) => vec![TypeExpr::Float],
                    (UnOp::Not, [TypeExpr::Bool]) => vec![TypeExpr::Bool],
                    (_, other) => {
                        return Err(LangError::at(
                            *pos,
                            format!("bad operand {other:?} for unary {op:?}"),
                        ))
                    }
                }
            }
            Expr::Binary(op, a, b, pos) => {
                let ta = self.expr_types(a, vars, scope, obj)?;
                let tb = self.expr_types(b, vars, scope, obj)?;
                let (ta, tb) = match (ta.as_slice(), tb.as_slice()) {
                    ([x], [y]) => (x.clone(), y.clone()),
                    _ => {
                        return Err(LangError::at(
                            *pos,
                            "tuple value used as an operand".to_string(),
                        ))
                    }
                };
                use BinOp::*;
                match op {
                    Add => match (&ta, &tb) {
                        (TypeExpr::Int, TypeExpr::Int) => vec![TypeExpr::Int],
                        (TypeExpr::Float, TypeExpr::Float) => vec![TypeExpr::Float],
                        (TypeExpr::Str, TypeExpr::Str) => vec![TypeExpr::Str],
                        _ => {
                            return Err(LangError::at(
                                *pos,
                                format!("cannot add {ta:?} and {tb:?}"),
                            ))
                        }
                    },
                    Sub | Mul | Div | Mod => match (&ta, &tb) {
                        (TypeExpr::Int, TypeExpr::Int) => vec![TypeExpr::Int],
                        (TypeExpr::Float, TypeExpr::Float) => vec![TypeExpr::Float],
                        _ => {
                            return Err(LangError::at(
                                *pos,
                                format!("bad operands {ta:?}, {tb:?} for {op:?}"),
                            ))
                        }
                    },
                    Eq | Ne => {
                        if ta != tb {
                            return Err(LangError::at(
                                *pos,
                                format!("cannot compare {ta:?} with {tb:?}"),
                            ));
                        }
                        vec![TypeExpr::Bool]
                    }
                    Lt | Le | Gt | Ge => match (&ta, &tb) {
                        (TypeExpr::Int, TypeExpr::Int)
                        | (TypeExpr::Float, TypeExpr::Float)
                        | (TypeExpr::Str, TypeExpr::Str) => vec![TypeExpr::Bool],
                        _ => {
                            return Err(LangError::at(
                                *pos,
                                format!("cannot order {ta:?} and {tb:?}"),
                            ))
                        }
                    },
                    And | Or => {
                        if ta != TypeExpr::Bool || tb != TypeExpr::Bool {
                            return Err(LangError::at(*pos, "`and`/`or` need booleans"));
                        }
                        vec![TypeExpr::Bool]
                    }
                }
            }
            Expr::Call(target, args, pos) => {
                self.call_types(target, args, vars, scope, obj, *pos)?
            }
        })
    }

    /// Types returned by a call (builtin / local proc / object entry).
    fn call_types(
        &self,
        target: &CallTarget,
        args: &[Expr],
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
        pos: Pos,
    ) -> Result<Vec<TypeExpr>, LangError> {
        match target {
            CallTarget::Entry(objname, entry) => {
                let Some(info) = self.checked.object(objname) else {
                    return Err(LangError::at(pos, format!("unknown object `{objname}`")));
                };
                let e = self.entry(info, entry, pos)?;
                if e.local && obj.map(|o| o.name != info.name).unwrap_or(true) {
                    return Err(LangError::at(
                        pos,
                        format!("`{objname}.{entry}` is local to its object"),
                    ));
                }
                if args.len() != e.public_params.len() {
                    return Err(LangError::at(
                        pos,
                        format!(
                            "`{objname}.{entry}` takes {} argument(s), got {}",
                            e.public_params.len(),
                            args.len()
                        ),
                    ));
                }
                let want = e.public_params.clone();
                let rets = e.public_results.clone();
                for (a, w) in args.iter().zip(&want) {
                    self.expect_type(a, w, vars, scope, obj)?;
                }
                Ok(rets)
            }
            CallTarget::Plain(name) => {
                if let Some(tys) = self.builtin_types(name, args, vars, scope, obj, pos)? {
                    return Ok(tys);
                }
                // A sibling procedure of the current object.
                let Some(info) = obj else {
                    return Err(LangError::at(
                        pos,
                        format!("unknown procedure or builtin `{name}`"),
                    ));
                };
                let e = self.entry(info, name, pos)?;
                if args.len() != e.public_params.len() {
                    return Err(LangError::at(
                        pos,
                        format!(
                            "`{name}` takes {} argument(s), got {}",
                            e.public_params.len(),
                            args.len()
                        ),
                    ));
                }
                let want = e.public_params.clone();
                let rets = e.public_results.clone();
                for (a, w) in args.iter().zip(&want) {
                    self.expect_type(a, w, vars, scope, obj)?;
                }
                Ok(rets)
            }
        }
    }

    /// If `name` is a builtin, check it and return its result types.
    fn builtin_types(
        &self,
        name: &str,
        args: &[Expr],
        vars: &mut Vars,
        scope: Scope,
        obj: Option<&ObjInfo>,
        pos: Pos,
    ) -> Result<Option<Vec<TypeExpr>>, LangError> {
        let arity = |n: usize| -> Result<(), LangError> {
            if args.len() != n {
                Err(LangError::at(
                    pos,
                    format!("builtin `{name}` takes {n} argument(s), got {}", args.len()),
                ))
            } else {
                Ok(())
            }
        };
        match name {
            "print" => {
                for a in args {
                    let _ = self.expr_types(a, vars, scope, obj)?;
                }
                Ok(Some(vec![]))
            }
            "str" => {
                arity(1)?;
                let _ = self.expr_types(&args[0], vars, scope, obj)?;
                Ok(Some(vec![TypeExpr::Str]))
            }
            "len" => {
                arity(1)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(_)] | [TypeExpr::Str] => Ok(Some(vec![TypeExpr::Int])),
                    other => Err(LangError::at(
                        pos,
                        format!("`len` needs a list or string, found {other:?}"),
                    )),
                }
            }
            "push" => {
                arity(2)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(elem)] => {
                        self.expect_type(&args[1], elem, vars, scope, obj)?;
                        if !matches!(&args[0], Expr::Var(..)) {
                            return Err(LangError::at(pos, "`push` needs a list variable"));
                        }
                        Ok(Some(vec![]))
                    }
                    other => Err(LangError::at(
                        pos,
                        format!("`push` needs a list, found {other:?}"),
                    )),
                }
            }
            "remove" => {
                arity(2)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                self.expect_int(&args[1], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(elem)] => {
                        if !matches!(&args[0], Expr::Var(..)) {
                            return Err(LangError::at(pos, "`remove` needs a list variable"));
                        }
                        Ok(Some(vec![(**elem).clone()]))
                    }
                    other => Err(LangError::at(
                        pos,
                        format!("`remove` needs a list, found {other:?}"),
                    )),
                }
            }
            "pop" => {
                arity(1)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(elem)] => {
                        if !matches!(&args[0], Expr::Var(..)) {
                            return Err(LangError::at(pos, "`pop` needs a list variable"));
                        }
                        Ok(Some(vec![(**elem).clone()]))
                    }
                    other => Err(LangError::at(
                        pos,
                        format!("`pop` needs a list, found {other:?}"),
                    )),
                }
            }
            "get" => {
                arity(2)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                self.expect_int(&args[1], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(elem)] => Ok(Some(vec![(**elem).clone()])),
                    other => Err(LangError::at(
                        pos,
                        format!("`get` needs a list, found {other:?}"),
                    )),
                }
            }
            "set" => {
                arity(3)?;
                let t = self.expr_types(&args[0], vars, scope, obj)?;
                self.expect_int(&args[1], vars, scope, obj)?;
                match t.as_slice() {
                    [TypeExpr::List(elem)] => {
                        self.expect_type(&args[2], elem, vars, scope, obj)?;
                        if !matches!(&args[0], Expr::Var(..)) {
                            return Err(LangError::at(pos, "`set` needs a list variable"));
                        }
                        Ok(Some(vec![]))
                    }
                    other => Err(LangError::at(
                        pos,
                        format!("`set` needs a list, found {other:?}"),
                    )),
                }
            }
            "now" => {
                arity(0)?;
                Ok(Some(vec![TypeExpr::Int]))
            }
            "sleep" => {
                arity(1)?;
                self.expect_int(&args[0], vars, scope, obj)?;
                Ok(Some(vec![]))
            }
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Checked, LangError> {
        check(parse(src).unwrap())
    }

    #[test]
    fn hidden_params_are_derived_from_signature_difference() {
        let c = check_src(
            r#"
            object Spooler defines
              proc Print(File: string);
            end Spooler;
            object Spooler implements
              proc Print[1..4](File: string; Printer: int) returns (int);
              begin return (Printer) end Print;
              manager
                intercepts Print(string);
                begin skip end;
            end Spooler;
            "#,
        )
        .unwrap();
        let o = c.object("Spooler").unwrap();
        let e = &o.entries[0];
        assert_eq!(e.public_params, vec![TypeExpr::Str]);
        assert_eq!(e.hidden_params, vec![TypeExpr::Int]);
        assert_eq!(e.hidden_results, vec![TypeExpr::Int]);
        assert_eq!(e.array, 4);
        assert_eq!(e.intercept, Some((1, 0)));
    }

    #[test]
    fn defined_but_not_implemented_is_an_error() {
        let err = check_src(
            r#"
            object X defines
              proc P();
            end X;
            object X implements
            end X;
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not implemented"));
    }

    #[test]
    fn implementation_must_extend_definition() {
        let err = check_src(
            r#"
            object X defines
              proc P(a: int);
            end X;
            object X implements
              proc P(a: string);
              begin skip end P;
            end X;
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("extend"));
    }

    #[test]
    fn hidden_without_intercept_rejected() {
        let err = check_src(
            r#"
            object X defines
              proc P(a: int);
            end X;
            object X implements
              proc P(a: int; hiddenb: int);
              begin skip end P;
            end X;
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("hidden"));
    }

    #[test]
    fn manager_primitives_rejected_outside_manager() {
        let err = check_src(
            r#"
            main begin
              accept P
            end
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("manager primitive"));
    }

    #[test]
    fn pending_count_only_in_manager() {
        let err = check_src("main var x: int; begin x := #P end").unwrap_err();
        assert!(err.to_string().contains("manager"));
    }

    #[test]
    fn undeclared_variable_rejected() {
        let err = check_src("main begin x := 1 end").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn type_mismatch_in_assignment_rejected() {
        let err = check_src(r#"main var x: int; begin x := "s" end"#).unwrap_err();
        assert!(err.to_string().contains("cannot assign"));
    }

    #[test]
    fn intercept_must_be_prefix() {
        let err = check_src(
            r#"
            object X defines
              proc P(a: int; b: string);
            end X;
            object X implements
              proc P(a: int; b: string);
              begin skip end P;
              manager
                intercepts P(string);
                begin skip end;
            end X;
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("initial subsequence"));
    }

    #[test]
    fn builtin_checking() {
        assert!(check_src(
            r#"main var xs: list(int); var n: int; begin push(xs, 1); n := len(xs) end"#
        )
        .is_ok());
        assert!(check_src(r#"main var xs: list(int); begin push(xs, "s") end"#).is_err());
        assert!(check_src("main begin nonsense(1) end").is_err());
    }

    #[test]
    fn guard_binds_are_implicitly_declared() {
        let ok = check_src(
            r#"
            object B defines
              proc Deposit(M: int);
            end B;
            object B implements
              proc Deposit(M: int);
              begin skip end Deposit;
              manager
                intercepts Deposit(int);
                var Count: int;
                begin
                  loop
                    accept Deposit(M) when M > 0 => execute Deposit(M); Count := Count + 1
                  end loop
                end;
            end B;
            "#,
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn object_calls_typed_against_public_signature() {
        let src = r#"
            object E defines
              proc Echo(v: int) returns (int);
            end E;
            object E implements
              proc Echo(v: int) returns (int);
              begin return (v) end Echo;
            end E;
            main var x: int; begin x := E.Echo(5) end
        "#;
        assert!(check_src(src).is_ok());
        let bad = src.replace("E.Echo(5)", r#"E.Echo("s")"#);
        assert!(check_src(&bad).is_err());
    }

    #[test]
    fn local_not_callable_from_main() {
        let err = check_src(
            r#"
            object X implements
              local proc H() returns (int);
              begin return (1) end H;
            end X;
            main var v: int; begin v := X.H() end
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("local"));
    }

    #[test]
    fn par_requires_entry_targets() {
        let err = check_src("main begin par print(1) end par end").unwrap_err();
        assert!(err.to_string().contains("par"));
    }
}
