//! Pretty-printer: renders an AST back to concrete ALPS syntax.
//!
//! The output is canonical (stable indentation and separators) and
//! round-trips: `parse(pretty(parse(src)))` equals `parse(src)` up to
//! source positions. Used by tooling and as a parser test oracle.

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole program to canonical source.
pub fn pretty(p: &Program) -> String {
    let mut w = Writer::default();
    for d in &p.defs {
        w.object_def(d);
        w.blank();
    }
    for i in &p.impls {
        w.object_impl(i);
        w.blank();
    }
    if let Some(m) = &p.main {
        w.main(m);
    }
    w.out
}

#[derive(Default)]
struct Writer {
    out: String,
    indent: usize,
}

impl Writer {
    fn line(&mut self, s: impl AsRef<str>) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn object_def(&mut self, d: &ObjectDef) {
        self.line(format!("object {} defines", d.name));
        self.indent += 1;
        for p in &d.procs {
            let h = header(p);
            self.line(format!("{h};"));
        }
        self.indent -= 1;
        self.line(format!("end {};", d.name));
    }

    fn object_impl(&mut self, i: &ObjectImpl) {
        self.line(format!("object {} implements", i.name));
        self.indent += 1;
        self.vars(&i.vars);
        for p in &i.procs {
            self.proc_impl(p);
        }
        if let Some(m) = &i.manager {
            self.manager(m);
        }
        if !i.init.is_empty() {
            self.line("begin");
            self.indent += 1;
            self.stmts(&i.init);
            self.indent -= 1;
        }
        self.indent -= 1;
        self.line(format!("end {};", i.name));
    }

    fn main(&mut self, m: &MainBlock) {
        self.line("main");
        self.indent += 1;
        self.vars(&m.vars);
        self.indent -= 1;
        self.line("begin");
        self.indent += 1;
        self.stmts(&m.body);
        self.indent -= 1;
        self.line("end");
    }

    fn vars(&mut self, vars: &[Param]) {
        for v in vars {
            self.line(format!("var {}: {};", v.name, ty(&v.ty)));
        }
    }

    fn proc_impl(&mut self, p: &ProcImpl) {
        let h = header(&p.header);
        self.line(format!("{h};"));
        self.indent += 1;
        self.vars(&p.vars);
        self.indent -= 1;
        self.line("begin");
        self.indent += 1;
        self.stmts(&p.body);
        self.indent -= 1;
        self.line(format!("end {};", p.header.name));
    }

    fn manager(&mut self, m: &Manager) {
        self.line("manager");
        self.indent += 1;
        if !m.intercepts.is_empty() {
            let items: Vec<String> = m
                .intercepts
                .iter()
                .map(|it| {
                    if !it.explicit {
                        it.name.clone()
                    } else {
                        let ps = it.params.iter().map(ty).collect::<Vec<_>>().join(", ");
                        let rs = it.results.iter().map(ty).collect::<Vec<_>>().join(", ");
                        if it.results.is_empty() {
                            format!("{}({ps})", it.name)
                        } else {
                            format!("{}({ps}; {rs})", it.name)
                        }
                    }
                })
                .collect();
            self.line(format!("intercepts {};", items.join(", ")));
        }
        self.vars(&m.vars);
        self.indent -= 1;
        self.line("begin");
        self.indent += 1;
        self.stmts(&m.body);
        self.indent -= 1;
        self.line("end;");
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for (i, s) in stmts.iter().enumerate() {
            let last = i + 1 == stmts.len();
            self.stmt(s, if last { "" } else { ";" });
        }
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, s: &Stmt, term: &str) {
        match s {
            Stmt::Skip(_) => self.line(format!("skip{term}")),
            Stmt::Assign(lvs, e, _) => {
                let names: Vec<&str> = lvs.iter().map(|LValue::Var(n, _)| n.as_str()).collect();
                self.line(format!("{} := {}{term}", names.join(", "), expr(e)));
            }
            Stmt::Call(t, args, _) => {
                self.line(format!("{}{term}", call(t, args)));
            }
            Stmt::If(arms, els, _) => {
                for (i, (c, body)) in arms.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "elsif" };
                    self.line(format!("{kw} {} then", expr(c)));
                    self.indent += 1;
                    self.stmts(body);
                    self.indent -= 1;
                }
                if !els.is_empty() {
                    self.line("else");
                    self.indent += 1;
                    self.stmts(els);
                    self.indent -= 1;
                }
                self.line(format!("end if{term}"));
            }
            Stmt::While(c, body, _) => {
                self.line(format!("while {} do", expr(c)));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(format!("end while{term}"));
            }
            Stmt::For(v, lo, hi, body, _) => {
                self.line(format!("for {v} := {} to {} do", expr(lo), expr(hi)));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(format!("end for{term}"));
            }
            Stmt::Send(c, args, _) => {
                self.line(format!("send {}({}){term}", expr(c), exprs(args)));
            }
            Stmt::Receive(c, binds, _) => {
                self.line(format!("receive {}({}){term}", expr(c), lvals(binds)));
            }
            Stmt::Select(arms, _) | Stmt::Loop(arms, _) => {
                let kw = if matches!(s, Stmt::Select(..)) {
                    "select"
                } else {
                    "loop"
                };
                self.line(kw);
                self.indent += 1;
                for (i, arm) in arms.iter().enumerate() {
                    if i > 0 {
                        self.indent -= 1;
                        self.line("or");
                        self.indent += 1;
                    }
                    self.guarded(arm);
                }
                self.indent -= 1;
                self.line(format!("end {kw}{term}"));
            }
            Stmt::Par(calls, _) => {
                let parts: Vec<String> = calls.iter().map(|(t, a)| call(t, a)).collect();
                self.line(format!("par {} end par{term}", parts.join(", ")));
            }
            Stmt::ParFor(v, lo, hi, t, args, _) => {
                self.line(format!(
                    "par {v} = {} to {} do {} end par{term}",
                    expr(lo),
                    expr(hi),
                    call(t, args)
                ));
            }
            Stmt::Return(args, _) => {
                if args.is_empty() {
                    self.line(format!("return{term}"));
                } else {
                    self.line(format!("return ({}){term}", exprs(args)));
                }
            }
            Stmt::Accept(slot, binds, _) => {
                self.line(format!("accept {}{}{term}", slotref(slot), bindlist(binds)));
            }
            Stmt::Start(slot, args, _) => {
                self.line(format!("start {}{}{term}", slotref(slot), arglist(args)));
            }
            Stmt::AwaitStmt(slot, binds, _) => {
                self.line(format!("await {}{}{term}", slotref(slot), bindlist(binds)));
            }
            Stmt::Finish(slot, args, _) => {
                self.line(format!("finish {}{}{term}", slotref(slot), arglist(args)));
            }
            Stmt::Execute(slot, args, _) => {
                self.line(format!("execute {}{}{term}", slotref(slot), arglist(args)));
            }
        }
    }

    fn guarded(&mut self, g: &Guarded) {
        let mut head = String::new();
        if let Some((v, lo, hi)) = &g.quantifier {
            let _ = write!(head, "({v}: {}..{}) ", expr(lo), expr(hi));
        }
        match &g.kind {
            GuardKind::Accept { slot, binds } => {
                let _ = write!(head, "accept {}{}", slotref(slot), bindlist(binds));
            }
            GuardKind::Await { slot, binds } => {
                let _ = write!(head, "await {}{}", slotref(slot), bindlist(binds));
            }
            GuardKind::Receive { chan, binds } => {
                let _ = write!(head, "receive {}({})", expr(chan), lvals(binds));
            }
            GuardKind::Plain => {}
        }
        if let Some(w) = &g.when {
            if matches!(g.kind, GuardKind::Plain) {
                let _ = write!(head, "when {}", expr(w));
            } else {
                let _ = write!(head, " when {}", expr(w));
            }
        }
        if let Some(p) = &g.pri {
            let _ = write!(head, " pri {}", expr(p));
        }
        head.push_str(" =>");
        self.line(head);
        self.indent += 1;
        self.stmts(&g.body);
        self.indent -= 1;
    }
}

fn header(h: &ProcHeader) -> String {
    let mut s = String::new();
    if h.local {
        s.push_str("local ");
    }
    let _ = write!(s, "proc {}", h.name);
    if let Some(n) = h.array {
        let _ = write!(s, "[1..{n}]");
    }
    let params: Vec<String> = h
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, ty(&p.ty)))
        .collect();
    let _ = write!(s, "({})", params.join("; "));
    if !h.results.is_empty() {
        let rs: Vec<String> = h.results.iter().map(ty).collect();
        let _ = write!(s, " returns ({})", rs.join(", "));
    }
    s
}

fn ty(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Int => "int".into(),
        TypeExpr::Bool => "bool".into(),
        TypeExpr::Float => "float".into(),
        TypeExpr::Str => "string".into(),
        TypeExpr::Chan(sig) => format!(
            "chan({})",
            sig.iter().map(ty).collect::<Vec<_>>().join(", ")
        ),
        TypeExpr::List(e) => format!("list({})", ty(e)),
    }
}

fn slotref(s: &SlotRef) -> String {
    match &s.index {
        Some(e) => format!("{}[{}]", s.entry, expr(e)),
        None => s.entry.clone(),
    }
}

fn bindlist(binds: &[LValue]) -> String {
    if binds.is_empty() {
        String::new()
    } else {
        format!("({})", lvals(binds))
    }
}

fn arglist(args: &[Expr]) -> String {
    if args.is_empty() {
        String::new()
    } else {
        format!("({})", exprs(args))
    }
}

fn lvals(binds: &[LValue]) -> String {
    binds
        .iter()
        .map(|LValue::Var(n, _)| n.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

fn exprs(args: &[Expr]) -> String {
    args.iter().map(expr).collect::<Vec<_>>().join(", ")
}

fn call(t: &CallTarget, args: &[Expr]) -> String {
    match t {
        CallTarget::Entry(o, e) => format!("{o}.{e}({})", exprs(args)),
        CallTarget::Plain(n) => format!("{n}({})", exprs(args)),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "mod",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

/// Render an expression, parenthesizing conservatively (every compound
/// sub-expression) so precedence never changes meaning on re-parse.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => v.to_string(),
        Expr::Float(v, _) => {
            let s = v.to_string();
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Str(s, _) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
        ),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Var(n, _) => n.clone(),
        Expr::Pending(n, _) => format!("#{n}"),
        Expr::Unary(UnOp::Neg, inner, _) => format!("(-{})", expr(inner)),
        Expr::Unary(UnOp::Not, inner, _) => format!("(not {})", expr(inner)),
        Expr::Binary(op, a, b, _) => {
            format!("({} {} {})", expr(a), binop_str(*op), expr(b))
        }
        Expr::Call(t, args, _) => call(t, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip positions so ASTs compare structurally.
    fn normalize(src: &str) -> String {
        format!("{:?}", parse(src).expect("parse"))
            .split("pos: Pos")
            .count()
            .to_string()
            + &strip_pos(&format!("{:?}", parse(src).unwrap()))
    }

    fn strip_pos(s: &str) -> String {
        // Positions render as `Pos { offset: .., line: .., col: .. }`;
        // replace them all with a fixed token.
        let mut out = String::new();
        let mut rest = s;
        while let Some(i) = rest.find("Pos {") {
            out.push_str(&rest[..i]);
            out.push_str("Pos{..}");
            match rest[i..].find('}') {
                Some(j) => rest = &rest[i + j + 1..],
                None => {
                    rest = "";
                }
            }
        }
        out.push_str(rest);
        out
    }

    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("original parses");
        let printed = pretty(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n---\n{printed}"));
        assert_eq!(
            strip_pos(&format!("{p1:?}")),
            strip_pos(&format!("{p2:?}")),
            "round-trip changed the AST\n--- printed ---\n{printed}"
        );
    }

    #[test]
    fn roundtrip_simple_main() {
        roundtrip(r#"main var x: int; begin x := 1 + 2 * 3; print("v", x) end"#);
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            r#"main var x: int; begin
                if x = 1 then skip elsif x < 4 then x := 2 else x := -x end if;
                while not (x > 10) do x := x + 1 end while;
                for i := 1 to 3 do print(i) end for
            end"#,
        );
    }

    #[test]
    fn roundtrip_paper_example_files() {
        for f in [
            "bounded_buffer",
            "readers_writers",
            "dictionary",
            "spooler",
            "parallel_buffer",
            "nested_calls",
            "disk_scheduler",
        ] {
            let path = format!(
                "{}/../../examples/alps/{f}.alps",
                env!("CARGO_MANIFEST_DIR")
            );
            let src = std::fs::read_to_string(&path).unwrap();
            roundtrip(&src);
        }
    }

    #[test]
    fn roundtrip_guards_and_primitives() {
        roundtrip(
            r#"
            object X implements
              proc P[1..4](v: int; h: int) returns (int, int);
              begin return (v, h) end P;
              manager
                intercepts P(int; int);
                var n: int;
                begin
                  loop
                    (i: 1..4) accept P[i](v) when v > 0 or n = 0 pri v =>
                      start P[i](v, 9)
                  or
                    (i: 1..4) await P[i](r, h) =>
                      finish P[i](r)
                  or
                    when n < 0 =>
                      n := 0
                  end loop
                end;
            end X;
            "#,
        );
    }

    #[test]
    fn roundtrip_channels_and_par() {
        roundtrip(
            r#"
            object O defines
              proc P(i: int);
            end O;
            object O implements
              proc P(i: int);
              begin skip end P;
            end O;
            main var C: chan(int, string); var n: int; var s: string; begin
              send C(1, "x");
              receive C(n, s);
              par O.P(1), O.P(2) end par;
              par i = 1 to 4 do O.P(i) end par
            end
            "#,
        );
    }

    #[test]
    fn normalize_helper_sane() {
        // Guard against the helper silently matching everything.
        let a = normalize("main begin skip end");
        let b = normalize(r#"main begin print("x") end"#);
        assert_ne!(a, b);
    }
}
