//! Lexer for the ALPS surface language.
//!
//! Comments: `{ … }` (Pascal style, as in the paper's listings — e.g.
//! `{ the database is declared here }`) and `-- …` to end of line.

use crate::error::LangError;
use crate::token::{keyword, Pos, Spanned, Tok};

/// Tokenize a source string.
///
/// # Errors
///
/// [`LangError`] on unterminated strings/comments or unexpected
/// characters, with position information.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn here(&self) -> Pos {
        Pos {
            offset: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::at(self.here(), message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, pos: Pos) {
        self.out.push(Spanned { tok, pos });
    }

    fn run(mut self) -> Result<Vec<Spanned>, LangError> {
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'{') => {
                        let start = self.here();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some(b'}') => break,
                                Some(_) => {}
                                None => {
                                    return Err(LangError::at(
                                        start,
                                        "unterminated `{ … }` comment",
                                    ))
                                }
                            }
                        }
                    }
                    Some(b'-') if self.peek2() == Some(b'-') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let pos = self.here();
            let Some(c) = self.peek() else {
                self.push(Tok::Eof, pos);
                return Ok(self.out);
            };
            match c {
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = &self.src[start..self.pos];
                    match keyword(word) {
                        Some(kw) => self.push(kw, pos),
                        None => self.push(Tok::Ident(word.to_string()), pos),
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    // A float needs `digit . digit`; `1..2` is Int DotDot.
                    if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
                        self.bump();
                        while matches!(self.peek(), Some(b'0'..=b'9')) {
                            self.bump();
                        }
                        let text = &self.src[start..self.pos];
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.error(format!("bad float literal `{text}`")))?;
                        self.push(Tok::Float(v), pos);
                    } else {
                        let text = &self.src[start..self.pos];
                        let v: i64 = text.parse().map_err(|_| {
                            self.error(format!("integer literal out of range `{text}`"))
                        })?;
                        self.push(Tok::Int(v), pos);
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                other => {
                                    return Err(self.error(format!(
                                        "bad escape `\\{}`",
                                        other.map(|c| c as char).unwrap_or(' ')
                                    )))
                                }
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(LangError::at(pos, "unterminated string literal")),
                        }
                    }
                    self.push(Tok::Str(s), pos);
                }
                _ => {
                    self.bump();
                    let tok = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b'.' => {
                            if self.peek() == Some(b'.') {
                                self.bump();
                                Tok::DotDot
                            } else {
                                Tok::Dot
                            }
                        }
                        b':' => {
                            if self.peek() == Some(b'=') {
                                self.bump();
                                Tok::Assign
                            } else {
                                Tok::Colon
                            }
                        }
                        b'=' => {
                            if self.peek() == Some(b'>') {
                                self.bump();
                                Tok::Arrow
                            } else {
                                Tok::Eq
                            }
                        }
                        b'#' => Tok::Hash,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'<' => match self.peek() {
                            Some(b'=') => {
                                self.bump();
                                Tok::Le
                            }
                            Some(b'>') => {
                                self.bump();
                                Tok::Ne
                            }
                            _ => Tok::Lt,
                        },
                        b'>' => {
                            if self.peek() == Some(b'=') {
                                self.bump();
                                Tok::Ge
                            } else {
                                Tok::Gt
                            }
                        }
                        other => {
                            return Err(LangError::at(
                                pos,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    self.push(tok, pos);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("object Buffer defines end Buffer"),
            vec![
                Tok::KwObject,
                Tok::Ident("Buffer".into()),
                Tok::KwDefines,
                Tok::KwEnd,
                Tok::Ident("Buffer".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_ranges_and_floats() {
        assert_eq!(
            toks("1..4 3.5 42"),
            vec![
                Tok::Int(1),
                Tok::DotDot,
                Tok::Int(4),
                Tok::Float(3.5),
                Tok::Int(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":= => <> <= >= < > = # .."),
            vec![
                Tok::Assign,
                Tok::Arrow,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Hash,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a { comment } b -- line comment\n c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hi\n" "a\"b""#),
            vec![Tok::Str("hi\n".into()), Tok::Str("a\"b".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("a\n  @").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:3"), "{msg}");
        assert!(lex("\"unterminated").is_err());
        assert!(lex("{ open").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\nbb\n ccc").unwrap();
        assert_eq!(ts[0].pos.line, 1);
        assert_eq!(ts[1].pos.line, 2);
        assert_eq!(ts[2].pos.line, 3);
        assert_eq!(ts[2].pos.col, 2);
    }
}
