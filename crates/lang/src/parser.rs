//! Recursive-descent parser for the ALPS language (grammar in
//! `GRAMMAR.md`).

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Tok};

/// Parse a full program.
///
/// # Errors
///
/// [`LangError`] with the position of the first syntax error.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    Parser { toks, at: 0 }.program()
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.at + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::at(self.pos(), message)
    }

    fn expect(&mut self, want: Tok) -> Result<(), LangError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, want: Tok) -> bool {
        if *self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // ---- program structure ------------------------------------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::KwObject => {
                    let pos = self.pos();
                    self.bump();
                    let name = self.ident()?;
                    match self.peek() {
                        Tok::KwDefines => {
                            self.bump();
                            prog.defs.push(self.object_def(name, pos)?);
                        }
                        Tok::KwImplements => {
                            self.bump();
                            prog.impls.push(self.object_impl(name, pos)?);
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected `defines` or `implements`, found {other}"
                            )))
                        }
                    }
                }
                Tok::KwMain => {
                    let pos = self.pos();
                    self.bump();
                    if prog.main.is_some() {
                        return Err(LangError::at(pos, "duplicate `main` block"));
                    }
                    let vars = self.var_decls()?;
                    self.expect(Tok::KwBegin)?;
                    let body = self.stmts_until(&[Tok::KwEnd])?;
                    self.expect(Tok::KwEnd)?;
                    self.eat(Tok::Semi);
                    prog.main = Some(MainBlock { vars, body, pos });
                }
                other => {
                    return Err(self.error(format!(
                        "expected `object` or `main` at top level, found {other}"
                    )))
                }
            }
        }
        Ok(prog)
    }

    fn object_def(&mut self, name: String, pos: Pos) -> Result<ObjectDef, LangError> {
        let mut procs = Vec::new();
        while *self.peek() == Tok::KwProc {
            let h = self.proc_header()?;
            self.expect(Tok::Semi)?;
            procs.push(h);
        }
        self.expect(Tok::KwEnd)?;
        let closing = self.ident()?;
        if closing != name {
            return Err(self.error(format!(
                "definition of `{name}` closed with `end {closing}`"
            )));
        }
        self.eat(Tok::Semi);
        Ok(ObjectDef { name, procs, pos })
    }

    fn object_impl(&mut self, name: String, pos: Pos) -> Result<ObjectImpl, LangError> {
        let mut vars = Vec::new();
        let mut procs = Vec::new();
        let mut manager = None;
        let mut init = Vec::new();
        loop {
            match self.peek() {
                Tok::KwVar => {
                    vars.extend(self.var_decls()?);
                }
                Tok::KwProc | Tok::KwLocal => {
                    procs.push(self.proc_impl()?);
                }
                Tok::KwManager => {
                    let mpos = self.pos();
                    self.bump();
                    if manager.is_some() {
                        return Err(LangError::at(mpos, "duplicate manager"));
                    }
                    manager = Some(self.manager(mpos)?);
                }
                Tok::KwBegin => {
                    self.bump();
                    init = self.stmts_until(&[Tok::KwEnd])?;
                    break;
                }
                Tok::KwEnd => break,
                other => {
                    return Err(self.error(format!(
                        "expected `var`, `proc`, `local`, `manager`, `begin` or `end` in \
                         implementation of `{name}`, found {other}"
                    )))
                }
            }
        }
        self.expect(Tok::KwEnd)?;
        let closing = self.ident()?;
        if closing != name {
            return Err(self.error(format!(
                "implementation of `{name}` closed with `end {closing}`"
            )));
        }
        self.eat(Tok::Semi);
        Ok(ObjectImpl {
            name,
            vars,
            procs,
            manager,
            init,
            pos,
        })
    }

    fn proc_header(&mut self) -> Result<ProcHeader, LangError> {
        let local = self.eat(Tok::KwLocal);
        let pos = self.pos();
        self.expect(Tok::KwProc)?;
        let name = self.ident()?;
        let array = if self.eat(Tok::LBracket) {
            // proc P[1..N]
            let lo = match self.bump() {
                Tok::Int(v) => v,
                other => {
                    return Err(self.error(format!("expected array lower bound, found {other}")))
                }
            };
            if lo != 1 {
                return Err(self.error("procedure arrays are written P[1..N]"));
            }
            self.expect(Tok::DotDot)?;
            let hi = match self.bump() {
                Tok::Int(v) => v,
                other => {
                    return Err(self.error(format!("expected array upper bound, found {other}")))
                }
            };
            if hi < 1 {
                return Err(self.error("procedure array upper bound must be at least 1"));
            }
            self.expect(Tok::RBracket)?;
            Some(hi)
        } else {
            None
        };
        self.expect(Tok::LParen)?;
        let params = self.param_list()?;
        self.expect(Tok::RParen)?;
        let results = if self.eat(Tok::KwReturns) {
            self.expect(Tok::LParen)?;
            let tys = self.type_list()?;
            self.expect(Tok::RParen)?;
            tys
        } else {
            Vec::new()
        };
        Ok(ProcHeader {
            name,
            array,
            params,
            results,
            local,
            pos,
        })
    }

    fn proc_impl(&mut self) -> Result<ProcImpl, LangError> {
        let header = self.proc_header()?;
        self.expect(Tok::Semi)?;
        let vars = self.var_decls()?;
        self.expect(Tok::KwBegin)?;
        let body = self.stmts_until(&[Tok::KwEnd])?;
        self.expect(Tok::KwEnd)?;
        let closing = self.ident()?;
        if closing != header.name {
            return Err(self.error(format!(
                "procedure `{}` closed with `end {closing}`",
                header.name
            )));
        }
        self.eat(Tok::Semi);
        Ok(ProcImpl { header, vars, body })
    }

    fn manager(&mut self, pos: Pos) -> Result<Manager, LangError> {
        let mut intercepts = Vec::new();
        if self.eat(Tok::KwIntercepts) {
            loop {
                let ipos = self.pos();
                let name = self.ident()?;
                let mut params = Vec::new();
                let mut results = Vec::new();
                let mut explicit = false;
                if self.eat(Tok::LParen) {
                    explicit = true;
                    if *self.peek() != Tok::RParen && *self.peek() != Tok::Semi {
                        params = self.type_list()?;
                    }
                    if self.eat(Tok::Semi) && *self.peek() != Tok::RParen {
                        results = self.type_list()?;
                    }
                    self.expect(Tok::RParen)?;
                }
                intercepts.push(InterceptItem {
                    name,
                    params,
                    results,
                    explicit,
                    pos: ipos,
                });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
        }
        let vars = self.var_decls()?;
        self.expect(Tok::KwBegin)?;
        let body = self.stmts_until(&[Tok::KwEnd])?;
        self.expect(Tok::KwEnd)?;
        self.eat(Tok::Semi);
        Ok(Manager {
            intercepts,
            vars,
            body,
            pos,
        })
    }

    fn var_decls(&mut self) -> Result<Vec<Param>, LangError> {
        let mut out = Vec::new();
        while self.eat(Tok::KwVar) {
            loop {
                // var a, b: int; c: bool;
                let mut names = vec![(self.ident()?, self.pos())];
                while self.eat(Tok::Comma) {
                    names.push((self.ident()?, self.pos()));
                }
                self.expect(Tok::Colon)?;
                let ty = self.type_expr()?;
                for (name, pos) in names {
                    out.push(Param {
                        name,
                        ty: ty.clone(),
                        pos,
                    });
                }
                self.expect(Tok::Semi)?;
                // Another declaration group without a fresh `var`?
                if !matches!(self.peek(), Tok::Ident(_)) || *self.peek2() != Tok::Colon {
                    break;
                }
                // Heuristic: `name :` directly follows — another group.
                let looks_like_decl =
                    matches!((self.peek(), self.peek2()), (Tok::Ident(_), Tok::Colon));
                if !looks_like_decl {
                    break;
                }
            }
        }
        Ok(out)
    }

    fn param_list(&mut self) -> Result<Vec<Param>, LangError> {
        let mut out = Vec::new();
        if *self.peek() == Tok::RParen {
            return Ok(out);
        }
        loop {
            let mut names = vec![(self.ident()?, self.pos())];
            while self.eat(Tok::Comma) {
                names.push((self.ident()?, self.pos()));
            }
            self.expect(Tok::Colon)?;
            let ty = self.type_expr()?;
            for (name, pos) in names {
                out.push(Param {
                    name,
                    ty: ty.clone(),
                    pos,
                });
            }
            if !self.eat(Tok::Semi) {
                break;
            }
        }
        Ok(out)
    }

    fn type_list(&mut self) -> Result<Vec<TypeExpr>, LangError> {
        let mut out = vec![self.type_expr()?];
        while self.eat(Tok::Comma) {
            out.push(self.type_expr()?);
        }
        Ok(out)
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        match self.bump() {
            Tok::KwInt => Ok(TypeExpr::Int),
            Tok::KwBool => Ok(TypeExpr::Bool),
            Tok::KwFloat => Ok(TypeExpr::Float),
            Tok::KwString => Ok(TypeExpr::Str),
            Tok::KwChan => {
                self.expect(Tok::LParen)?;
                let tys = if *self.peek() == Tok::RParen {
                    Vec::new()
                } else {
                    self.type_list()?
                };
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::Chan(tys))
            }
            Tok::KwList => {
                self.expect(Tok::LParen)?;
                let t = self.type_expr()?;
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::List(Box::new(t)))
            }
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    // ---- statements --------------------------------------------------

    fn stmts_until(&mut self, stops: &[Tok]) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        loop {
            if stops.contains(self.peek())
                || matches!(
                    self.peek(),
                    Tok::KwOr | Tok::KwElse | Tok::KwElsif | Tok::Eof
                )
            {
                return Ok(out);
            }
            out.push(self.stmt()?);
            self.eat(Tok::Semi);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                Ok(Stmt::Skip(pos))
            }
            Tok::KwIf => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(Tok::KwThen)?;
                let body = self.stmts_until(&[Tok::KwEnd])?;
                arms.push((cond, body));
                let mut else_body = Vec::new();
                loop {
                    if self.eat(Tok::KwElsif) {
                        let c = self.expr()?;
                        self.expect(Tok::KwThen)?;
                        let b = self.stmts_until(&[Tok::KwEnd])?;
                        arms.push((c, b));
                    } else if self.eat(Tok::KwElse) {
                        else_body = self.stmts_until(&[Tok::KwEnd])?;
                        break;
                    } else {
                        break;
                    }
                }
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwIf)?;
                Ok(Stmt::If(arms, else_body, pos))
            }
            Tok::KwWhile => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::KwDo)?;
                let body = self.stmts_until(&[Tok::KwEnd])?;
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwWhile)?;
                Ok(Stmt::While(cond, body, pos))
            }
            Tok::KwFor => {
                self.bump();
                let var = self.ident()?;
                self.expect(Tok::Assign)?;
                let lo = self.expr()?;
                self.expect(Tok::KwTo)?;
                let hi = self.expr()?;
                self.expect(Tok::KwDo)?;
                let body = self.stmts_until(&[Tok::KwEnd])?;
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwFor)?;
                Ok(Stmt::For(var, lo, hi, body, pos))
            }
            Tok::KwSend => {
                self.bump();
                let chan = self.chan_operand()?;
                self.expect(Tok::LParen)?;
                let args = self.expr_list_until_rparen()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::Send(chan, args, pos))
            }
            Tok::KwReceive => {
                self.bump();
                let chan = self.chan_operand()?;
                self.expect(Tok::LParen)?;
                let binds = self.lvalue_list_until_rparen()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::Receive(chan, binds, pos))
            }
            Tok::KwSelect => {
                self.bump();
                let arms = self.guarded_arms()?;
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwSelect)?;
                Ok(Stmt::Select(arms, pos))
            }
            Tok::KwLoop => {
                self.bump();
                let arms = self.guarded_arms()?;
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwLoop)?;
                Ok(Stmt::Loop(arms, pos))
            }
            Tok::KwPar => {
                self.bump();
                if let (Tok::Ident(v), Tok::Eq) = (self.peek().clone(), self.peek2().clone()) {
                    // par i = a to b do P(i) end par
                    self.bump();
                    self.bump();
                    let lo = self.expr()?;
                    self.expect(Tok::KwTo)?;
                    let hi = self.expr()?;
                    self.expect(Tok::KwDo)?;
                    let (target, args) = self.call_target_and_args()?;
                    self.expect(Tok::KwEnd)?;
                    self.expect(Tok::KwPar)?;
                    return Ok(Stmt::ParFor(v, lo, hi, target, args, pos));
                }
                let mut calls = vec![self.call_target_and_args()?];
                while self.eat(Tok::Comma) || self.eat(Tok::KwAnd) {
                    calls.push(self.call_target_and_args()?);
                }
                self.expect(Tok::KwEnd)?;
                self.expect(Tok::KwPar)?;
                Ok(Stmt::Par(calls, pos))
            }
            Tok::KwReturn => {
                self.bump();
                let args = if self.eat(Tok::LParen) {
                    let a = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                Ok(Stmt::Return(args, pos))
            }
            Tok::KwAccept => {
                self.bump();
                let slot = self.slot_ref()?;
                let binds = if self.eat(Tok::LParen) {
                    let b = self.lvalue_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    b
                } else {
                    Vec::new()
                };
                Ok(Stmt::Accept(slot, binds, pos))
            }
            Tok::KwStart => {
                self.bump();
                let slot = self.slot_ref()?;
                let args = if self.eat(Tok::LParen) {
                    let a = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                Ok(Stmt::Start(slot, args, pos))
            }
            Tok::KwAwait => {
                self.bump();
                let slot = self.slot_ref()?;
                let binds = if self.eat(Tok::LParen) {
                    let b = self.lvalue_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    b
                } else {
                    Vec::new()
                };
                Ok(Stmt::AwaitStmt(slot, binds, pos))
            }
            Tok::KwFinish => {
                self.bump();
                let slot = self.slot_ref()?;
                let args = if self.eat(Tok::LParen) {
                    let a = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                Ok(Stmt::Finish(slot, args, pos))
            }
            Tok::KwExecute => {
                self.bump();
                let slot = self.slot_ref()?;
                let args = if self.eat(Tok::LParen) {
                    let a = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                Ok(Stmt::Execute(slot, args, pos))
            }
            Tok::Ident(_) => {
                // assignment (single or multi) or a call statement
                let save = self.at;
                let first = self.ident()?;
                match self.peek().clone() {
                    Tok::Assign => {
                        self.bump();
                        let e = self.expr()?;
                        Ok(Stmt::Assign(vec![LValue::Var(first, pos)], e, pos))
                    }
                    Tok::Comma => {
                        // multi-assign: a, b := expr
                        let mut lvs = vec![LValue::Var(first, pos)];
                        while self.eat(Tok::Comma) {
                            let p = self.pos();
                            lvs.push(LValue::Var(self.ident()?, p));
                        }
                        self.expect(Tok::Assign)?;
                        let e = self.expr()?;
                        Ok(Stmt::Assign(lvs, e, pos))
                    }
                    Tok::Dot | Tok::LParen => {
                        self.at = save;
                        let (target, args) = self.call_target_and_args()?;
                        Ok(Stmt::Call(target, args, pos))
                    }
                    other => Err(self.error(format!(
                        "expected `:=`, `,`, `.` or `(` after `{first}`, found {other}"
                    ))),
                }
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    /// Channel operand of `send`/`receive`: a variable or a
    /// parenthesized expression (a full postfix expression would swallow
    /// the message list as a call).
    fn chan_operand(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!(
                "expected a channel variable or parenthesized expression, found {other}"
            ))),
        }
    }

    fn call_target_and_args(&mut self) -> Result<(CallTarget, Vec<Expr>), LangError> {
        let first = self.ident()?;
        let target = if self.eat(Tok::Dot) {
            let entry = self.ident()?;
            CallTarget::Entry(first, entry)
        } else {
            CallTarget::Plain(first)
        };
        self.expect(Tok::LParen)?;
        let args = self.expr_list_until_rparen()?;
        self.expect(Tok::RParen)?;
        Ok((target, args))
    }

    fn slot_ref(&mut self) -> Result<SlotRef, LangError> {
        let pos = self.pos();
        let entry = self.ident()?;
        let index = if self.eat(Tok::LBracket) {
            let e = self.expr()?;
            self.expect(Tok::RBracket)?;
            Some(e)
        } else {
            None
        };
        Ok(SlotRef { entry, index, pos })
    }

    fn guarded_arms(&mut self) -> Result<Vec<Guarded>, LangError> {
        let mut arms = vec![self.guarded()?];
        while self.eat(Tok::KwOr) {
            arms.push(self.guarded()?);
        }
        Ok(arms)
    }

    fn guarded(&mut self) -> Result<Guarded, LangError> {
        let pos = self.pos();
        // Optional quantifier: ( i : lo .. hi )
        let quantifier = if *self.peek() == Tok::LParen {
            // Lookahead: LParen Ident Colon
            let save = self.at;
            self.bump();
            if let Tok::Ident(v) = self.peek().clone() {
                self.bump();
                if self.eat(Tok::Colon) {
                    let lo = self.expr()?;
                    self.expect(Tok::DotDot)?;
                    let hi = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Some((v, lo, hi))
                } else {
                    self.at = save;
                    None
                }
            } else {
                self.at = save;
                None
            }
        } else {
            None
        };
        let kind = match self.peek().clone() {
            Tok::KwAccept => {
                self.bump();
                let slot = self.slot_ref()?;
                let binds = if self.eat(Tok::LParen) {
                    let b = self.lvalue_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    b
                } else {
                    Vec::new()
                };
                GuardKind::Accept { slot, binds }
            }
            Tok::KwAwait => {
                self.bump();
                let slot = self.slot_ref()?;
                let binds = if self.eat(Tok::LParen) {
                    let b = self.lvalue_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    b
                } else {
                    Vec::new()
                };
                GuardKind::Await { slot, binds }
            }
            Tok::KwReceive => {
                self.bump();
                let chan = self.chan_operand()?;
                self.expect(Tok::LParen)?;
                let binds = self.lvalue_list_until_rparen()?;
                self.expect(Tok::RParen)?;
                GuardKind::Receive { chan, binds }
            }
            Tok::KwWhen => GuardKind::Plain,
            other => {
                return Err(self.error(format!(
                    "expected `accept`, `await`, `receive` or `when` in guard, found {other}"
                )))
            }
        };
        let when = if self.eat(Tok::KwWhen) {
            Some(self.expr()?)
        } else {
            None
        };
        if matches!(kind, GuardKind::Plain) && when.is_none() {
            return Err(self.error("a pure guard needs a `when` condition"));
        }
        let pri = if self.eat(Tok::KwPri) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Arrow)?;
        let body = self.stmts_until(&[Tok::KwEnd])?;
        Ok(Guarded {
            quantifier,
            kind,
            when,
            pri,
            body,
            pos,
        })
    }

    fn lvalue_list_until_rparen(&mut self) -> Result<Vec<LValue>, LangError> {
        let mut out = Vec::new();
        if *self.peek() == Tok::RParen {
            return Ok(out);
        }
        loop {
            let pos = self.pos();
            out.push(LValue::Var(self.ident()?, pos));
            if !self.eat(Tok::Comma) {
                return Ok(out);
            }
        }
    }

    fn expr_list_until_rparen(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut out = Vec::new();
        if *self.peek() == Tok::RParen {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if !self.eat(Tok::Comma) {
                return Ok(out);
            }
        }
    }

    // ---- expressions (precedence climbing) ---------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::KwOr {
            // `or` doubles as the guard separator of select/loop. A
            // guard can only start with accept/await/receive/when or a
            // quantifier `(i: lo..hi)`; the keyword cases are decided by
            // lookahead, the quantifier case by backtracking when the
            // right-hand side fails to parse as an expression.
            if matches!(
                self.peek2(),
                Tok::KwAccept | Tok::KwAwait | Tok::KwReceive | Tok::KwWhen
            ) {
                break;
            }
            let save = self.at;
            let pos = self.pos();
            self.bump();
            match self.and_expr() {
                Ok(rhs) => {
                    lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), pos);
                }
                Err(_) => {
                    self.at = save;
                    break;
                }
            }
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::KwAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::KwMod => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), pos))
            }
            Tok::KwNot => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e), pos))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, pos))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            Tok::Hash => {
                self.bump();
                let name = self.ident()?;
                Ok(Expr::Pending(name, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(Tok::Dot) {
                    let entry = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let args = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(CallTarget::Entry(name, entry), args, pos))
                } else if self.eat(Tok::LParen) {
                    let args = self.expr_list_until_rparen()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(CallTarget::Plain(name), args, pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_object_definition() {
        let src = r#"
            object Buffer defines
              proc Deposit(M: int);
              proc Remove() returns (int);
            end Buffer;
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.defs.len(), 1);
        let d = &p.defs[0];
        assert_eq!(d.name, "Buffer");
        assert_eq!(d.procs.len(), 2);
        assert_eq!(d.procs[0].name, "Deposit");
        assert_eq!(d.procs[0].params.len(), 1);
        assert_eq!(d.procs[1].results, vec![TypeExpr::Int]);
    }

    #[test]
    fn parses_procedure_array_header() {
        let src = r#"
            object D implements
              proc Search[1..8](Word: string) returns (string);
              begin
                return (Word)
              end Search;
            end D;
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.impls[0].procs[0].header.array, Some(8));
    }

    #[test]
    fn parses_manager_with_intercepts_and_loop() {
        let src = r#"
            object Buffer implements
              proc Deposit(M: int);
              begin skip end Deposit;
              manager
                intercepts Deposit(int);
                var Count: int;
                begin
                  loop
                    accept Deposit(M) when Count < 4 => execute Deposit; Count := Count + 1
                  end loop
                end;
            end Buffer;
        "#;
        let p = parse(src).unwrap();
        let m = p.impls[0].manager.as_ref().unwrap();
        assert_eq!(m.intercepts.len(), 1);
        assert_eq!(m.intercepts[0].params, vec![TypeExpr::Int]);
        assert_eq!(m.vars.len(), 1);
        assert_eq!(m.body.len(), 1);
        match &m.body[0] {
            Stmt::Loop(arms, _) => {
                assert_eq!(arms.len(), 1);
                assert!(matches!(arms[0].kind, GuardKind::Accept { .. }));
                assert!(arms[0].when.is_some());
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantified_guard() {
        let src = r#"
            object X implements
              proc Read[1..4]();
              begin skip end Read;
              manager
                intercepts Read;
                begin
                  loop
                    (i: 1..4) accept Read[i] when true => start Read[i]
                  end loop
                end;
            end X;
        "#;
        let p = parse(src).unwrap();
        let m = p.impls[0].manager.as_ref().unwrap();
        let Stmt::Loop(arms, _) = &m.body[0] else {
            panic!()
        };
        assert!(arms[0].quantifier.is_some());
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let src = "main begin x := 1 + 2 * 3 end";
        let p = parse(src).unwrap();
        let Stmt::Assign(_, e, _) = &p.main.as_ref().unwrap().body[0] else {
            panic!()
        };
        // 1 + (2*3)
        match e {
            Expr::Binary(BinOp::Add, _, rhs, _) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_pending_count_and_calls() {
        let src = r#"main begin
            x := #Write;
            y := Database.Read("k");
            print("v=", y)
        end"#;
        let p = parse(src).unwrap();
        assert_eq!(p.main.unwrap().body.len(), 3);
    }

    #[test]
    fn parses_send_receive_par() {
        let src = r#"main var C: chan(int); begin
            send C(5);
            receive C(x);
            par P(1) and Q(2) end par;
            par i = 1 to 4 do Work(i) end par
        end"#;
        let p = parse(src).unwrap();
        assert_eq!(p.main.unwrap().body.len(), 4);
    }

    #[test]
    fn parses_if_elsif_else_and_while_for() {
        let src = r#"main begin
            if x = 1 then skip elsif x = 2 then skip else skip end if;
            while x < 10 do x := x + 1 end while;
            for i := 1 to 3 do print(i) end for
        end"#;
        let p = parse(src).unwrap();
        assert_eq!(p.main.unwrap().body.len(), 3);
    }

    #[test]
    fn rejects_mismatched_end_name() {
        let src = "object A defines end B;";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("closed with"));
    }

    #[test]
    fn rejects_bad_guard() {
        let src = "main begin select skip => skip end select end";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_plain_guard_without_when() {
        let src = "main begin select pri 1 => skip end select end";
        assert!(parse(src).is_err());
    }

    #[test]
    fn multi_assignment() {
        let src = "main begin a, b := X.P(1) end";
        let p = parse(src).unwrap();
        let Stmt::Assign(lvs, _, _) = &p.main.as_ref().unwrap().body[0] else {
            panic!()
        };
        assert_eq!(lvs.len(), 2);
    }

    #[test]
    fn object_level_vars_and_init() {
        let src = r#"
            object X implements
              var Count: int;
              proc P();
              begin skip end P;
              begin
                Count := 0
              end X;
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.impls[0].vars.len(), 1);
        assert_eq!(p.impls[0].init.len(), 1);
    }

    #[test]
    fn local_procedures() {
        let src = r#"
            object X implements
              local proc Helper(v: int) returns (int);
              begin return (v + 1) end Helper;
            end X;
        "#;
        let p = parse(src).unwrap();
        assert!(p.impls[0].procs[0].header.local);
    }
}
