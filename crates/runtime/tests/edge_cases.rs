//! Edge cases of the runtime primitives across both executors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use alps_runtime::{par_for, Chan, Notifier, Runtime, RuntimeError, SimRuntime, Spawn};

#[test]
fn close_wakes_blocked_senders_on_bounded_chan() {
    let sim = SimRuntime::new();
    let got = sim
        .run(|rt| {
            let c = Chan::bounded("c", 1);
            c.send(rt, 1).unwrap();
            let (c2, rt2) = (c.clone(), rt.clone());
            let h = rt.spawn_with(Spawn::new("sender"), move || {
                // Blocks (buffer full) until close, then errors.
                c2.send(&rt2, 2)
            });
            rt.yield_now(); // sender blocks
            c.close(rt);
            h.join().unwrap()
        })
        .unwrap();
    assert_eq!(got, Err(RuntimeError::Shutdown));
}

#[test]
fn close_wakes_blocked_receivers() {
    let sim = SimRuntime::new();
    let got = sim
        .run(|rt| {
            let c: Chan<i32> = Chan::unbounded("c");
            let (c2, rt2) = (c.clone(), rt.clone());
            let h = rt.spawn_with(Spawn::new("receiver"), move || c2.recv(&rt2));
            rt.yield_now(); // receiver blocks
            c.close(rt);
            h.join().unwrap()
        })
        .unwrap();
    assert_eq!(got, Err(RuntimeError::Shutdown));
}

#[test]
fn unpark_of_dead_process_is_ignored() {
    let rt = Runtime::threaded();
    let h = rt.spawn(|| 1);
    let id = h.id();
    h.join().unwrap();
    rt.unpark(id); // must not panic or revive anything
    rt.shutdown();
}

#[test]
fn zero_tick_sleep_is_not_a_scheduling_point() {
    let sim = SimRuntime::new();
    let order = sim
        .run(|rt| {
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let (rt2, log2) = (rt.clone(), Arc::clone(&log));
            let h = rt.spawn_with(Spawn::new("a"), move || {
                log2.lock().push("a-before");
                rt2.sleep(0); // no-op: must not yield to main
                log2.lock().push("a-after");
            });
            rt.yield_now();
            log.lock().push("main");
            h.join().unwrap();
            let v = log.lock().clone();
            v
        })
        .unwrap();
    assert_eq!(order, vec!["a-before", "a-after", "main"]);
}

#[test]
fn nested_par_for_in_sim() {
    let sim = SimRuntime::new();
    let total: i64 = sim
        .run(|rt| {
            let rt2 = rt.clone();
            let outer = par_for(rt, 1, 3, move |i| {
                // Each branch spawns its own inner family.
                par_for(&rt2, 1, 2, move |j| i * 10 + j)
                    .unwrap()
                    .iter()
                    .sum::<i64>()
            })
            .unwrap();
            outer.iter().sum()
        })
        .unwrap();
    // (11+12) + (21+22) + (31+32) = 129
    assert_eq!(total, 129);
}

#[test]
fn many_simultaneous_timers_fire_in_order() {
    let sim = SimRuntime::new();
    let stamps = sim
        .run(|rt| {
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut hs = Vec::new();
            for i in 0..20u64 {
                let (rt2, log2) = (rt.clone(), Arc::clone(&log));
                hs.push(rt.spawn_with(Spawn::new(format!("t{i}")), move || {
                    rt2.sleep(1000 - i * 37);
                    log2.lock().push(rt2.now());
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            let v = log.lock().clone();
            v
        })
        .unwrap();
    let mut sorted = stamps.clone();
    sorted.sort_unstable();
    assert_eq!(stamps, sorted, "timer wakeups out of order");
}

#[test]
fn notifier_epoch_survives_heavy_contention_threaded() {
    let rt = Runtime::threaded();
    let n = Notifier::new();
    let woken = Arc::new(AtomicUsize::new(0));
    let mut hs = Vec::new();
    for i in 0..4 {
        let (n2, rt2, w2) = (n.clone(), rt.clone(), Arc::clone(&woken));
        hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
            for _ in 0..50 {
                let seen = n2.epoch();
                // Notify may already have happened; wait_past must not
                // hang either way.
                n2.wait_past(&rt2, seen.wrapping_sub(1));
                w2.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    let (n3, rt3) = (n.clone(), rt.clone());
    let noisy = rt.spawn_with(Spawn::new("noise"), move || {
        for _ in 0..500 {
            n3.notify(&rt3);
        }
    });
    for h in hs {
        h.join().unwrap();
    }
    noisy.join().unwrap();
    assert_eq!(woken.load(Ordering::Relaxed), 200);
    rt.shutdown();
}

#[test]
fn sim_detects_deadlock_among_multiple_processes() {
    // Two processes each waiting for the other's unpark.
    let sim = SimRuntime::new();
    let err = sim
        .run(|rt| {
            let rt2 = rt.clone();
            let a = rt.spawn_with(Spawn::new("a"), move || {
                rt2.park();
            });
            let rt3 = rt.clone();
            let _b = rt.spawn_with(Spawn::new("b"), move || {
                rt3.park();
            });
            a.join().unwrap();
        })
        .unwrap_err();
    match err {
        RuntimeError::Deadlock { parked } => {
            assert!(parked.iter().any(|p| p == "a"), "{parked:?}");
            assert!(parked.iter().any(|p| p == "b"), "{parked:?}");
            assert!(parked.iter().any(|p| p == "main"), "{parked:?}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn chan_subscribe_is_idempotent() {
    let rt = Runtime::threaded();
    let c: Chan<i32> = Chan::unbounded("c");
    let n = Notifier::new();
    for _ in 0..100 {
        c.subscribe(&n); // must not grow the subscriber list
    }
    let e0 = n.epoch();
    c.send(&rt, 1).unwrap();
    // Exactly one bump per send, regardless of repeated subscription.
    assert_eq!(n.epoch(), e0 + 1);
    rt.shutdown();
}

#[test]
fn virtual_clock_does_not_advance_for_daemons_after_main() {
    let sim = SimRuntime::new();
    let end = sim
        .run(|rt| {
            let rt2 = rt.clone();
            rt.spawn_with(Spawn::new("d").daemon(true), move || {
                rt2.sleep(1_000_000_000); // would be a gigasecond
            });
            rt.sleep(10);
            rt.now()
        })
        .unwrap();
    assert_eq!(end, 10, "daemon timers must not hold the run open");
}

#[test]
fn intake_ring_drain_observes_cancellation_not_stale_calls() {
    // Models the deadline-expires-between-enqueue-and-drain window of the
    // call protocol: a producer publishes a cell into the ring, the
    // caller's deadline CAS flips it to CANCELLED before the consumer
    // drains, and the drain must observe the tombstoned cell — never
    // treat it as a live call. Uses the same IntakeRing the object layer
    // uses, with a model cell carrying the protocol's state word.
    use alps_runtime::IntakeRing;

    const WAITING: usize = 0;
    const CANCELLED: usize = 2;
    const TOMBSTONE: usize = 3;

    #[derive(Debug)]
    struct ModelCell {
        id: usize,
        state: AtomicUsize,
    }

    let ring: IntakeRing<Arc<ModelCell>> = IntakeRing::with_capacity(8);
    let cells: Vec<Arc<ModelCell>> = (0..6)
        .map(|id| {
            Arc::new(ModelCell {
                id,
                state: AtomicUsize::new(WAITING),
            })
        })
        .collect();
    for c in &cells {
        ring.push(Arc::clone(c)).unwrap();
    }
    // Deadlines expire for cells 1 and 4 while they sit in the ring: the
    // caller-side CAS claims them exactly like CallCell::cancel does.
    for idx in [1usize, 4] {
        assert!(cells[idx]
            .state
            .compare_exchange(WAITING, CANCELLED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok());
    }
    // The consumer drains: cancelled cells are tombstoned (unique claim),
    // live ones serviced.
    let mut serviced = Vec::new();
    let mut reaped = Vec::new();
    let n = ring.drain_with(|c| {
        if c.state.load(Ordering::SeqCst) == CANCELLED {
            assert!(
                c.state
                    .compare_exchange(CANCELLED, TOMBSTONE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok(),
                "exactly one holder claims the tombstone"
            );
            reaped.push(c.id);
        } else {
            // A live cell: the completer's CAS must win against WAITING,
            // as CallCell::finish does.
            assert_eq!(c.state.load(Ordering::SeqCst), WAITING, "stale state");
            serviced.push(c.id);
        }
    });
    assert_eq!(n, 6);
    assert_eq!(reaped, vec![1, 4]);
    assert_eq!(serviced, vec![0, 2, 3, 5]);
    assert!(ring.is_empty());
    // The tombstoned cells are inert: a late completer's WAITING→DONE CAS
    // must fail, so the caller is never double-completed.
    for idx in [1usize, 4] {
        assert!(cells[idx]
            .state
            .compare_exchange(WAITING, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err());
    }
}

#[test]
fn park_timeout_races_unpark_without_losing_the_permit() {
    // A second process cancels (unparks) a parker that is also racing a
    // timer: whichever way the race goes, the parker must wake exactly
    // once and a buffered permit must not leak into later parks.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let rt2 = rt.clone();
        let parker = rt.spawn_with(Spawn::new("parker"), move || {
            let t0 = rt2.now();
            rt2.park_timeout(1_000);
            let woke = rt2.now();
            assert!(woke <= t0 + 1_000, "woke past the timer");
            // The permit (if the unpark won) was consumed by that park:
            // this one must run its full course.
            rt2.park_timeout(50);
            assert_eq!(rt2.now(), woke + 50, "stray permit broke the second park");
        });
        rt.sleep(100);
        rt.unpark(parker.id());
        parker.join().unwrap();
    })
    .unwrap();
}
