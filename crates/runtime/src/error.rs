//! Runtime error types.

use std::fmt;

/// Errors produced by the runtime itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A simulated run reached a state where the main process had not
    /// finished, no process was runnable, and no virtual timer was pending:
    /// every live process is parked waiting for an event that can never
    /// arrive. The names of the parked processes are reported.
    Deadlock {
        /// Debug names of the processes that were parked at detection time.
        parked: Vec<String>,
    },
    /// The runtime is shutting down; blocking operations refuse to block.
    Shutdown,
    /// A joined process panicked.
    ProcPanicked {
        /// Debug name of the panicked process.
        name: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Deadlock { parked } => {
                write!(
                    f,
                    "deadlock: all live processes parked: [{}]",
                    parked.join(", ")
                )
            }
            RuntimeError::Shutdown => write!(f, "runtime is shut down"),
            RuntimeError::ProcPanicked { name } => {
                write!(f, "process `{name}` panicked")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Unwind payload used to abort parked daemon processes at shutdown.
///
/// When a runtime shuts down, every parked process is woken and its pending
/// `park`/`sleep` call unwinds with this payload, so the daemon's stack
/// unwinds and its thread exits. User code should not catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process aborted by runtime shutdown")
    }
}

/// Install (once per process) a panic-hook wrapper that silences the
/// intentional [`Aborted`] unwinds used to stop daemon processes at
/// shutdown, delegating every other panic to the previous hook.
pub(crate) fn silence_abort_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Aborted>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::Deadlock {
            parked: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "deadlock: all live processes parked: [a, b]");
        assert_eq!(RuntimeError::Shutdown.to_string(), "runtime is shut down");
        assert_eq!(
            RuntimeError::ProcPanicked { name: "w".into() }.to_string(),
            "process `w` panicked"
        );
        assert_eq!(Aborted.to_string(), "process aborted by runtime shutdown");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }
}
