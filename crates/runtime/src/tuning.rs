//! Spin-then-park tuning constants, in one place.
//!
//! Three layers of the system wait for events that usually arrive within
//! a few microseconds: callers waiting for a reply, managers waiting for
//! work, and executor workers waiting for runnable tasks. Each uses the
//! same shape of adaptive wait — a short pure-spin burst, an optional
//! bounded yield phase, then park — but before PR 5 each layer carried a
//! private copy of its budgets. They live here now so a change to the
//! policy is a change to one module, and so the work-stealing executor's
//! idle parker reuses the measured defaults instead of inventing a third
//! set.
//!
//! All constants were tuned on the benchmark machine via
//! `experiments bench-json` (see `BENCH_manager_batch.json`): the spin
//! budgets are sized so an uncontended reply (~6–7 µs round trip) is
//! usually caught in the yield phase without paying a futex round trip,
//! while a cold wait degrades to a park after at most a few microseconds
//! of CPU.

/// Pure-spin rounds a caller burns before judging whether to yield or
/// park while waiting for its reply ([`SpinWait`](crate::SpinWait)
/// rounds, exponential: round *r* issues `2^r` `spin_loop` hints, capped
/// at 64 per round).
pub const CALLER_SPIN_ROUNDS: u32 = 4;

/// Base of the caller's yield budget (yields granted even when the
/// service-time EWMA is still zero, e.g. on a cold object).
pub const CALLER_YIELD_BASE: u64 = 4;

/// Extra yields granted per tick (µs) of the object's service-time EWMA:
/// a slower object earns a longer yield phase before the caller parks.
pub const CALLER_YIELD_PER_EWMA_TICK: u64 = 2;

/// Hard cap on the caller's yield budget — beyond this a park is cheaper
/// than the burned CPU, whatever the EWMA claims.
pub const CALLER_YIELD_MAX: u64 = 64;

/// The caller's yield budget for an expected service time of
/// `ewma_ticks` µs: `BASE + PER_TICK * ewma`, capped at
/// [`CALLER_YIELD_MAX`].
pub fn caller_yield_budget(ewma_ticks: u64) -> u64 {
    CALLER_YIELD_BASE
        .saturating_add(CALLER_YIELD_PER_EWMA_TICK.saturating_mul(ewma_ticks))
        .min(CALLER_YIELD_MAX)
}

/// Yield-poll budget of a manager in *storm mode* (a drain batch ≥ 2
/// proved concurrent callers): the manager polls the intake ring this
/// many yields before demoting itself back to parking.
pub const MGR_POLL_BUDGET: u32 = 64;

/// Pure-spin rounds of an idle (non-storm) manager inside
/// [`Notifier::wait_past_spin`](crate::Notifier::wait_past_spin) before
/// it registers as a waiter and parks.
pub const MGR_IDLE_SPIN_ROUNDS: u32 = 6;

/// Pure-spin rounds of a per-slot pool worker between finishing a job
/// and parking — catches a back-to-back restart of the same slot without
/// a park/unpark round trip.
pub const POOL_SLOT_SPIN_ROUNDS: u32 = 4;

/// Pure-spin rounds of an idle work-stealing executor worker checking
/// its deque, the injector, and steal victims before it registers idle
/// and parks on its parker. Matches [`MGR_IDLE_SPIN_ROUNDS`]: both are
/// "nothing locally, maybe a producer is mid-publish" waits.
pub const WORKER_IDLE_SPIN_ROUNDS: u32 = 6;

/// Consecutive intake-ring pushes from the *same* producer before the
/// manager promotes that producer to the private SPSC fast lane. High
/// enough that a transient solo burst from a multi-caller workload does
/// not thrash promote/demote; low enough that a steady single caller is
/// promoted within a few microseconds of warming up.
pub const LANE_PROMOTE_STREAK: u32 = 32;

/// Consecutive *empty* manager drain passes (lane and ring both dry,
/// manager about to park) before an active lane is demoted back to the
/// shared ring. A parked owner costs nothing while the lane is held, but
/// holding it keeps the manager in poll mode, so idle lanes are released
/// quickly.
pub const LANE_IDLE_DEMOTE_PASSES: u32 = 2;

/// Capacity of the SPSC fast lane. Small by design: the lane exists for
/// a synchronous dominant caller (≤ 1 call in flight per producer), so
/// depth beyond a handful of slots only delays the overflow-to-ring
/// fallback that signals real concurrency.
pub const LANE_CAP: usize = 8;

/// Default preemption budget for
/// [`SchedPolicy::PreemptionBounded`](crate::SchedPolicy) when selected
/// via `SIM_STRATEGY=pct`. The PCT argument: a bug of preemption depth
/// *d* is found with probability ≥ 1/(n·k^(d−1)) per schedule, and the
/// protocol races shipped so far (finish-vs-cancel, restart-vs-drain,
/// lane handoff) all have depth ≤ 3 — a small budget keeps each run
/// close to the default schedule while still crossing those windows.
pub const PCT_DEFAULT_BOUND: u32 = 8;

/// PCT preemption placement gate: at each commit point a preemption
/// fires with probability 1/N (budget permitting). Sized so a typical
/// sweep scenario (a few hundred commit hits) spreads its budget across
/// the whole run instead of exhausting it in the first few hits.
pub const PCT_GATE_ONE_IN: u64 = 16;

/// TargetedRace preemption gate: one-in-N commit points preempt. Kept
/// aggressive (2) — the strategy exists to maximize distinct
/// commit-point orderings per schedule.
pub const TARGETED_GATE_ONE_IN: u64 = 2;

/// Spread of commit-point preemption delays: a preempting strategy
/// sleeps `1 << (r % SPREAD)` virtual ticks, i.e. 1–64 µs. Long enough
/// to push a rival's whole protocol step inside the window, short
/// enough not to trip deadline/timeout scenarios spuriously.
pub const PREEMPT_DELAY_LOG2_SPREAD: u64 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caller_budget_scales_and_caps() {
        assert_eq!(caller_yield_budget(0), CALLER_YIELD_BASE);
        assert_eq!(
            caller_yield_budget(10),
            CALLER_YIELD_BASE + 10 * CALLER_YIELD_PER_EWMA_TICK
        );
        assert_eq!(caller_yield_budget(u64::MAX), CALLER_YIELD_MAX);
    }
}
