//! Structured parallel execution (paper §2.1.1).
//!
//! ALPS provides two `par` commands:
//!
//! ```text
//! par P(...), Q(...) and R(...) end par      -- run a fixed set in parallel
//! par i = m to n do P(i) end par             -- run an indexed family
//! ```
//!
//! Both terminate only when *all* branches terminate. [`par`] and
//! [`par_for`] reproduce them for the embedded API; the interpreter maps
//! ALPS `par` statements onto these.

use crate::error::RuntimeError;
use crate::executor::Runtime;
use crate::process::Spawn;

/// Run each closure as its own process and wait for all of them,
/// returning their results in input order.
///
/// # Errors
///
/// If any branch panics, returns the first
/// [`RuntimeError::ProcPanicked`]; remaining branches are still joined.
///
/// # Examples
///
/// ```
/// use alps_runtime::{par, Runtime};
///
/// let rt = Runtime::threaded();
/// let results = par(
///     &rt,
///     vec![
///         Box::new(|| 1) as Box<dyn FnOnce() -> i32 + Send>,
///         Box::new(|| 2),
///         Box::new(|| 3),
///     ],
/// )
/// .unwrap();
/// assert_eq!(results, vec![1, 2, 3]);
/// rt.shutdown();
/// ```
pub fn par<R: Send + 'static>(
    rt: &Runtime,
    branches: Vec<Box<dyn FnOnce() -> R + Send>>,
) -> Result<Vec<R>, RuntimeError> {
    let handles: Vec<_> = branches
        .into_iter()
        .enumerate()
        .map(|(i, f)| rt.spawn_with(Spawn::new(format!("par[{i}]")), f))
        .collect();
    let mut first_err = None;
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        match h.join() {
            Ok(v) => out.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Run `f(i)` for every `i` in `m..=n` in parallel, waiting for all;
/// results come back indexed in order (paper: `par i = m to n do P(i)`).
///
/// An empty range (`n < m`) returns an empty vector.
///
/// # Errors
///
/// Propagates the first branch panic as
/// [`RuntimeError::ProcPanicked`] after joining all branches.
///
/// # Examples
///
/// ```
/// use alps_runtime::{par_for, Runtime};
///
/// let rt = Runtime::threaded();
/// let squares = par_for(&rt, 1, 4, |i| i * i).unwrap();
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// rt.shutdown();
/// ```
pub fn par_for<R, F>(rt: &Runtime, m: i64, n: i64, f: F) -> Result<Vec<R>, RuntimeError>
where
    R: Send + 'static,
    F: Fn(i64) -> R + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = (m..=n)
        .map(|i| {
            let f = std::sync::Arc::clone(&f);
            rt.spawn_with(Spawn::new(format!("par_for[{i}]")), move || f(i))
        })
        .collect();
    let mut first_err = None;
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        match h.join() {
            Ok(v) => out.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimRuntime;

    #[test]
    fn par_runs_all_branches_threaded() {
        let rt = Runtime::threaded();
        let out = par(
            &rt,
            vec![
                Box::new(|| "a".to_string()) as Box<dyn FnOnce() -> String + Send>,
                Box::new(|| "b".to_string()),
            ],
        )
        .unwrap();
        assert_eq!(out, vec!["a", "b"]);
    }

    #[test]
    fn par_for_empty_range() {
        let rt = Runtime::threaded();
        let out: Vec<i64> = par_for(&rt, 5, 4, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn par_for_in_sim_is_deterministic() {
        let sim = SimRuntime::new();
        let out = sim.run(|rt| par_for(rt, 0, 9, |i| i * 2).unwrap()).unwrap();
        assert_eq!(out, (0..=9).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_propagates_branch_panic_after_joining_all() {
        let rt = Runtime::threaded();
        let err = par(
            &rt,
            vec![
                Box::new(|| 1) as Box<dyn FnOnce() -> i32 + Send>,
                Box::new(|| panic!("branch died")),
                Box::new(|| 3),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn par_terminates_only_when_all_terminate() {
        // The slow branch's side effect must be visible after par returns.
        let sim = SimRuntime::new();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let f2 = std::sync::Arc::clone(&flag);
        sim.run(move |rt| {
            let rt2 = rt.clone();
            let f3 = std::sync::Arc::clone(&f2);
            par(
                rt,
                vec![
                    Box::new(move || {
                        rt2.sleep(1000);
                        f3.store(7, std::sync::atomic::Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(|| {}),
                ],
            )
            .unwrap();
            assert_eq!(f2.load(std::sync::atomic::Ordering::SeqCst), 7);
        })
        .unwrap();
    }
}
