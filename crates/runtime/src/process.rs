//! Process identities, priorities, and spawn options.
//!
//! The paper's ALPS kernel schedules *light weight processes* inside an
//! object's address space, with the manager running "at a higher priority
//! compared to the other processes in the object" (paper, §2.3 and §3).
//! This module defines the vocabulary types shared by both executors.

use std::fmt;

/// Identity of a runtime process.
///
/// `ProcId`s are unique within one [`Runtime`](crate::Runtime) and are never
/// reused. Foreign OS threads that interact with a threaded runtime are
/// lazily assigned an id so that parking works uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u64);

impl ProcId {
    /// Raw numeric id, useful for logging.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Scheduling priority of a process. **Lower values run first.**
///
/// The simulation executor honours priorities strictly: whenever a
/// scheduling decision is made, the runnable process with the smallest
/// priority value is granted the CPU. The threaded executor delegates to
/// the OS scheduler and treats priority as advisory metadata.
///
/// ```
/// use alps_runtime::Priority;
/// assert!(Priority::MANAGER < Priority::NORMAL);
/// assert!(Priority::NORMAL < Priority::BACKGROUND);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i32);

impl Priority {
    /// Priority used for object managers (paper: the manager "should be
    /// executed at a high priority compared to the other processes in the
    /// object so that the manager is more receptive to entry calls").
    pub const MANAGER: Priority = Priority(-10);
    /// Default priority for ordinary processes and entry-procedure workers.
    pub const NORMAL: Priority = Priority(0);
    /// Priority for background/bookkeeping work.
    pub const BACKGROUND: Priority = Priority(10);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio({})", self.0)
    }
}

/// Options controlling [`Runtime::spawn_with`](crate::Runtime::spawn_with).
///
/// ```
/// use alps_runtime::{Priority, Spawn};
/// let opts = Spawn::new("manager").prio(Priority::MANAGER).daemon(true);
/// assert_eq!(opts.name(), "manager");
/// ```
#[derive(Debug, Clone)]
pub struct Spawn {
    pub(crate) name: String,
    pub(crate) prio: Priority,
    pub(crate) daemon: bool,
    /// Marks the main process of a simulated run (crate-internal).
    pub(crate) main: bool,
    /// Soft worker-affinity hint for the work-stealing executor.
    pub(crate) affinity: Option<usize>,
}

impl Spawn {
    /// New spawn options with the given debug name, [`Priority::NORMAL`],
    /// non-daemon.
    pub fn new(name: impl Into<String>) -> Self {
        Spawn {
            name: name.into(),
            prio: Priority::NORMAL,
            daemon: false,
            main: false,
            affinity: None,
        }
    }

    /// Set the scheduling priority.
    pub fn prio(mut self, prio: Priority) -> Self {
        self.prio = prio;
        self
    }

    /// Prefer scheduling this process on worker `worker % K` of a
    /// work-stealing pool. A *soft* hint: the task lands in the
    /// preferred worker's deque instead of the global injector, keeping
    /// related processes (a shard's manager and its entry bodies) on one
    /// worker's cache — but it remains fully stealable, so an overloaded
    /// preferred worker sheds the task to an idle peer. Ignored by the
    /// threaded and simulation executors.
    pub fn affinity(mut self, worker: usize) -> Self {
        self.affinity = Some(worker);
        self
    }

    /// Mark the process as a *daemon*: a simulated run is allowed to finish
    /// while daemons are still parked (they are then aborted). Managers and
    /// pool workers are daemons.
    pub fn daemon(mut self, daemon: bool) -> Self {
        self.daemon = daemon;
        self
    }

    /// The debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured priority.
    pub fn priority(&self) -> Priority {
        self.prio
    }

    /// Whether the process is a daemon.
    pub fn is_daemon(&self) -> bool {
        self.daemon
    }

    /// The soft worker-affinity hint, if any.
    pub fn affinity_hint(&self) -> Option<usize> {
        self.affinity
    }
}

impl Default for Spawn {
    fn default() -> Self {
        Spawn::new("proc")
    }
}

/// Bounded exponential-backoff spinner used by the adaptive
/// spin-then-park wait paths (call-cell reply waits, manager wakeups,
/// pool workers).
///
/// Each [`spin`](SpinWait::spin) round issues `2^round` (capped at 64)
/// `std::hint::spin_loop` hints and returns `true` while budget remains;
/// once `max_rounds` rounds have been consumed it returns `false` and the
/// caller should fall back to parking. The budget is deliberately small —
/// spinning only pays when the awaited event is produced by a peer that
/// is *currently running* on another CPU; the caller decides how much to
/// spend (typically from an EWMA of observed service times) and must use
/// a zero budget on the simulation executor, where spinning can never
/// observe progress.
///
/// ```
/// use alps_runtime::SpinWait;
/// let mut sw = SpinWait::new(3);
/// let mut rounds = 0;
/// while sw.spin() {
///     rounds += 1;
/// }
/// assert_eq!(rounds, 3);
/// sw.reset();
/// assert!(sw.spin());
/// ```
#[derive(Debug)]
pub struct SpinWait {
    round: u32,
    max_rounds: u32,
}

impl SpinWait {
    /// A spinner with a budget of `max_rounds` rounds (0 = never spin).
    pub fn new(max_rounds: u32) -> SpinWait {
        SpinWait {
            round: 0,
            max_rounds,
        }
    }

    /// Burn one backoff round. Returns `false` when the budget is
    /// exhausted (nothing is spun in that case).
    pub fn spin(&mut self) -> bool {
        if self.round >= self.max_rounds {
            return false;
        }
        let iters = 1u32 << self.round.min(6);
        for _ in 0..iters {
            std::hint::spin_loop();
        }
        self.round += 1;
        true
    }

    /// Restore the full budget.
    pub fn reset(&mut self) {
        self.round = 0;
    }

    /// Rounds consumed so far.
    pub fn rounds_used(&self) -> u32 {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_is_lower_first() {
        assert!(Priority::MANAGER < Priority::NORMAL);
        assert!(Priority::NORMAL < Priority::BACKGROUND);
        assert!(Priority(-1) < Priority(1));
    }

    #[test]
    fn proc_id_display_and_accessors() {
        let id = ProcId(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.to_string(), "proc#42");
    }

    #[test]
    fn spin_wait_budget_and_reset() {
        let mut sw = SpinWait::new(0);
        assert!(!sw.spin(), "zero budget never spins");
        let mut sw = SpinWait::new(5);
        let mut used = 0;
        while sw.spin() {
            used += 1;
        }
        assert_eq!(used, 5);
        assert_eq!(sw.rounds_used(), 5);
        assert!(!sw.spin(), "stays exhausted");
        sw.reset();
        assert_eq!(sw.rounds_used(), 0);
        assert!(sw.spin());
    }

    #[test]
    fn spawn_builder_round_trip() {
        let s = Spawn::new("x").prio(Priority(3)).daemon(true).affinity(2);
        assert_eq!(s.name(), "x");
        assert_eq!(s.priority(), Priority(3));
        assert!(s.is_daemon());
        assert_eq!(s.affinity_hint(), Some(2));
        let d = Spawn::default();
        assert_eq!(d.name(), "proc");
        assert!(!d.is_daemon());
        assert_eq!(d.priority(), Priority::NORMAL);
        assert_eq!(d.affinity_hint(), None);
    }
}
