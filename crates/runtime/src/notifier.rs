//! Epoch-based event notification.
//!
//! A [`Notifier`] is the wakeup primitive the object/manager layer builds
//! its `select` on: a manager snapshots the epoch, evaluates its guards,
//! and — if none is eligible — waits for the epoch to change. Any event
//! source (an arriving entry call, a terminating entry procedure, a
//! channel send) bumps the epoch and unparks the waiters. Spurious wakeups
//! are benign because waiters always re-evaluate their condition.

use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::executor::Runtime;
use crate::process::ProcId;

#[derive(Debug)]
pub(crate) struct NotifierInner {
    st: Mutex<NState>,
}

#[derive(Debug)]
struct NState {
    epoch: u64,
    waiters: Vec<ProcId>,
}

/// A broadcast wakeup channel with an epoch counter.
///
/// # Examples
///
/// ```
/// use alps_runtime::{Notifier, Runtime};
///
/// let rt = Runtime::threaded();
/// let n = Notifier::new();
/// let seen = n.epoch();
/// n.notify(&rt);
/// assert!(n.epoch() > seen);
/// rt.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct Notifier {
    inner: Arc<NotifierInner>,
}

impl Default for Notifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Notifier {
    /// New notifier at epoch 0 with no waiters.
    pub fn new() -> Notifier {
        Notifier {
            inner: Arc::new(NotifierInner {
                st: Mutex::new(NState {
                    epoch: 0,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Current epoch. Snapshot this *before* evaluating the condition you
    /// are about to wait on.
    pub fn epoch(&self) -> u64 {
        self.inner.st.lock().epoch
    }

    /// Bump the epoch and unpark all registered waiters.
    pub fn notify(&self, rt: &Runtime) {
        let waiters = {
            let mut st = self.inner.st.lock();
            st.epoch += 1;
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            rt.unpark(w);
        }
    }

    /// Park the calling process until the epoch differs from `seen`.
    /// Returns immediately if it already does. May return spuriously;
    /// callers re-check their condition in a loop.
    pub fn wait_past(&self, rt: &Runtime, seen: u64) {
        let me = rt.current();
        loop {
            {
                let mut st = self.inner.st.lock();
                if st.epoch != seen {
                    return;
                }
                if !st.waiters.contains(&me) {
                    st.waiters.push(me);
                }
            }
            rt.park();
            // A spurious permit may have woken us; re-check the epoch.
            if self.inner.st.lock().epoch != seen {
                return;
            }
        }
    }

    pub(crate) fn downgrade(&self) -> WeakNotifier {
        WeakNotifier {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Pointer identity, used to deduplicate subscriptions.
    pub(crate) fn inner_ptr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }
}

/// A weak handle used by event sources (channels) to signal subscribed
/// selects without keeping them alive.
#[derive(Debug, Clone)]
pub(crate) struct WeakNotifier {
    inner: Weak<NotifierInner>,
}

impl WeakNotifier {
    /// Notify if the notifier is still alive; returns false when dead (the
    /// subscriber entry can be pruned).
    pub(crate) fn notify(&self, rt: &Runtime) -> bool {
        match self.inner.upgrade() {
            Some(inner) => {
                let waiters = {
                    let mut st = inner.st.lock();
                    st.epoch += 1;
                    std::mem::take(&mut st.waiters)
                };
                for w in waiters {
                    rt.unpark(w);
                }
                true
            }
            None => false,
        }
    }

    /// Whether the underlying notifier is still alive.
    pub(crate) fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }

    /// Pointer identity of the underlying notifier.
    pub(crate) fn ptr(&self) -> usize {
        self.inner.as_ptr() as *const () as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimRuntime;
    use crate::process::Spawn;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn epoch_starts_at_zero_and_increments() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        assert_eq!(n.epoch(), 0);
        n.notify(&rt);
        n.notify(&rt);
        assert_eq!(n.epoch(), 2);
    }

    #[test]
    fn wait_past_returns_immediately_on_stale_epoch() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        n.notify(&rt);
        n.wait_past(&rt, 0); // epoch is 1, returns at once
    }

    #[test]
    fn wait_past_blocks_until_notify_sim() {
        let sim = SimRuntime::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.run(move |rt| {
            let n = Notifier::new();
            let n2 = n.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                let seen = n2.epoch();
                n2.wait_past(&rt2, seen);
                hits2.store(1, Ordering::SeqCst);
            });
            rt.yield_now(); // waiter runs and parks
            n.notify(rt);
            h.join().unwrap();
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn weak_notifier_reports_liveness() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        let w = n.downgrade();
        assert!(w.notify(&rt));
        drop(n);
        assert!(!w.notify(&rt));
    }

    #[test]
    fn notify_wakes_multiple_waiters() {
        let sim = SimRuntime::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        sim.run(move |rt| {
            let n = Notifier::new();
            let mut hs = Vec::new();
            for i in 0..3 {
                let n2 = n.clone();
                let rt2 = rt.clone();
                let c2 = Arc::clone(&c);
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    let seen = n2.epoch();
                    n2.wait_past(&rt2, seen);
                    c2.fetch_add(1, Ordering::SeqCst);
                }));
            }
            rt.yield_now();
            rt.yield_now();
            rt.yield_now();
            n.notify(rt);
            for h in hs {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }
}
