//! Epoch-based event notification.
//!
//! A [`Notifier`] is the wakeup primitive the object/manager layer builds
//! its `select` on: a manager snapshots the epoch, evaluates its guards,
//! and — if none is eligible — waits for the epoch to change. Any event
//! source (an arriving entry call, a terminating entry procedure, a
//! channel send) bumps the epoch and unparks the waiters. Spurious wakeups
//! are benign because waiters always re-evaluate their condition.
//!
//! # Fast path
//!
//! The epoch is a plain atomic and the waiter list is guarded by a flag:
//! when nobody is parked — the common case while a manager is busy
//! draining work — `notify` is one `fetch_add` plus one load, with no
//! lock and no syscall. Producers that publish many events at once can
//! coalesce the wake pass further with [`NotifyBatch`].
//!
//! Lost wakeups are impossible by a store-buffer argument: a waiter
//! registers itself (and raises the flag) *before* re-checking the epoch,
//! a notifier bumps the epoch *before* checking the flag (both SeqCst) —
//! at least one of the two observes the other.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::executor::Runtime;
use crate::process::{ProcId, SpinWait};

/// How a [`Notifier::wait_past_spin`] call resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The epoch had already moved — no waiting at all.
    Immediate,
    /// The epoch moved during the bounded spin phase (no park syscall).
    Spun,
    /// The spin budget ran out and the caller parked at least once.
    Parked,
}

#[derive(Debug)]
pub(crate) struct NotifierInner {
    epoch: AtomicU64,
    has_waiters: AtomicBool,
    waiters: Mutex<Vec<ProcId>>,
}

impl NotifierInner {
    fn notify(&self, rt: &Runtime) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.wake(rt);
    }

    fn wake(&self, rt: &Runtime) {
        if !self.has_waiters.load(Ordering::SeqCst) {
            return;
        }
        let waiters = {
            let mut ws = self.waiters.lock();
            self.has_waiters.store(false, Ordering::SeqCst);
            std::mem::take(&mut *ws)
        };
        for w in waiters {
            rt.unpark(w);
        }
    }
}

/// A broadcast wakeup channel with an epoch counter.
///
/// # Examples
///
/// ```
/// use alps_runtime::{Notifier, Runtime};
///
/// let rt = Runtime::threaded();
/// let n = Notifier::new();
/// let seen = n.epoch();
/// n.notify(&rt);
/// assert!(n.epoch() > seen);
/// rt.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct Notifier {
    inner: Arc<NotifierInner>,
}

impl Default for Notifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Notifier {
    /// New notifier at epoch 0 with no waiters.
    pub fn new() -> Notifier {
        Notifier {
            inner: Arc::new(NotifierInner {
                epoch: AtomicU64::new(0),
                has_waiters: AtomicBool::new(false),
                waiters: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Current epoch. Snapshot this *before* evaluating the condition you
    /// are about to wait on.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// Bump the epoch and unpark all registered waiters. Lock-free when
    /// nobody is waiting.
    pub fn notify(&self, rt: &Runtime) {
        self.inner.notify(rt);
    }

    /// Start a batch of notifications: [`NotifyBatch::mark`] (any number
    /// of times) records that events happened; dropping the batch performs
    /// a single epoch bump and wake pass for all of them. Use when one
    /// operation publishes many events — e.g. a manager draining N calls,
    /// or [`Chan::send_batch`](crate::Chan::send_batch) — so waiters are
    /// unparked once instead of N times.
    pub fn batch<'a>(&'a self, rt: &'a Runtime) -> NotifyBatch<'a> {
        NotifyBatch {
            notifier: self,
            rt,
            marked: false,
        }
    }

    /// Park the calling process until the epoch differs from `seen`.
    /// Returns immediately if it already does. May return spuriously;
    /// callers re-check their condition in a loop.
    pub fn wait_past(&self, rt: &Runtime, seen: u64) {
        let me = rt.current();
        loop {
            if self.inner.epoch.load(Ordering::SeqCst) != seen {
                return;
            }
            {
                let mut ws = self.inner.waiters.lock();
                if !ws.contains(&me) {
                    ws.push(me);
                }
                self.inner.has_waiters.store(true, Ordering::SeqCst);
            }
            // Dekker handshake: register first, then re-check. If a notify
            // slipped in before registration, this load sees its bump; if
            // after, the notify sees `has_waiters` and unparks us.
            if self.inner.epoch.load(Ordering::SeqCst) != seen {
                return;
            }
            rt.park();
        }
    }

    /// Deadline-bounded variant of [`wait_past`](Notifier::wait_past):
    /// park until the epoch differs from `seen` **or** `rt.now()` reaches
    /// the absolute tick `deadline`. Returns `true` when the epoch moved,
    /// `false` on timeout. Uses the same register-then-recheck handshake
    /// as `wait_past`, with [`Runtime::park_timeout`] bounding each park;
    /// on timeout the caller deregisters itself so the waiter list does
    /// not accumulate dead entries.
    pub fn wait_past_deadline(&self, rt: &Runtime, seen: u64, deadline: u64) -> bool {
        let me = rt.current();
        loop {
            if self.inner.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            let now = rt.now();
            if now >= deadline {
                let mut ws = self.inner.waiters.lock();
                if let Some(pos) = ws.iter().position(|w| *w == me) {
                    ws.remove(pos);
                }
                return false;
            }
            {
                let mut ws = self.inner.waiters.lock();
                if !ws.contains(&me) {
                    ws.push(me);
                }
                self.inner.has_waiters.store(true, Ordering::SeqCst);
            }
            if self.inner.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            rt.park_timeout(deadline - now);
        }
    }

    /// Adaptive variant of [`wait_past`](Notifier::wait_past): burn up to
    /// `max_spin_rounds` exponential-backoff spin rounds polling the epoch
    /// before falling back to the registering park path. Returns how the
    /// wait resolved so callers can tune their budget (e.g. from an EWMA
    /// of service time) and account spin- vs park-resolved waits.
    ///
    /// Spinning is pointless on the simulation executor (the notifying
    /// process can only run once this one blocks), so a zero budget — or
    /// any budget when `rt.is_sim()` — goes straight to the park path.
    pub fn wait_past_spin(&self, rt: &Runtime, seen: u64, max_spin_rounds: u32) -> WaitOutcome {
        if self.inner.epoch.load(Ordering::SeqCst) != seen {
            return WaitOutcome::Immediate;
        }
        if max_spin_rounds > 0 && !rt.is_sim() {
            let mut sw = SpinWait::new(max_spin_rounds);
            while sw.spin() {
                if self.inner.epoch.load(Ordering::SeqCst) != seen {
                    return WaitOutcome::Spun;
                }
            }
        }
        self.wait_past(rt, seen);
        WaitOutcome::Parked
    }

    pub(crate) fn downgrade(&self) -> WeakNotifier {
        WeakNotifier {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Pointer identity, used to deduplicate subscriptions.
    pub(crate) fn inner_ptr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }
}

/// Guard coalescing several notifications into one epoch bump and one
/// wake pass; created by [`Notifier::batch`].
#[derive(Debug)]
pub struct NotifyBatch<'a> {
    notifier: &'a Notifier,
    rt: &'a Runtime,
    marked: bool,
}

impl NotifyBatch<'_> {
    /// Record that an event happened. The actual notification is deferred
    /// to drop.
    pub fn mark(&mut self) {
        self.marked = true;
    }

    /// Whether any event was recorded.
    pub fn is_marked(&self) -> bool {
        self.marked
    }
}

impl Drop for NotifyBatch<'_> {
    fn drop(&mut self) {
        if self.marked {
            self.notifier.notify(self.rt);
        }
    }
}

/// A weak handle used by event sources (channels) to signal subscribed
/// selects without keeping them alive.
#[derive(Debug, Clone)]
pub(crate) struct WeakNotifier {
    inner: Weak<NotifierInner>,
}

impl WeakNotifier {
    /// Notify if the notifier is still alive; returns false when dead (the
    /// subscriber entry can be pruned).
    pub(crate) fn notify(&self, rt: &Runtime) -> bool {
        match self.inner.upgrade() {
            Some(inner) => {
                inner.notify(rt);
                true
            }
            None => false,
        }
    }

    /// Whether the underlying notifier is still alive.
    pub(crate) fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }

    /// Pointer identity of the underlying notifier.
    pub(crate) fn ptr(&self) -> usize {
        self.inner.as_ptr() as *const () as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimRuntime;
    use crate::process::Spawn;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn epoch_starts_at_zero_and_increments() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        assert_eq!(n.epoch(), 0);
        n.notify(&rt);
        n.notify(&rt);
        assert_eq!(n.epoch(), 2);
    }

    #[test]
    fn wait_past_returns_immediately_on_stale_epoch() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        n.notify(&rt);
        n.wait_past(&rt, 0); // epoch is 1, returns at once
    }

    #[test]
    fn wait_past_blocks_until_notify_sim() {
        let sim = SimRuntime::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.run(move |rt| {
            let n = Notifier::new();
            let n2 = n.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                let seen = n2.epoch();
                n2.wait_past(&rt2, seen);
                hits2.store(1, Ordering::SeqCst);
            });
            rt.yield_now(); // waiter runs and parks
            n.notify(rt);
            h.join().unwrap();
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_past_spin_outcomes() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        n.notify(&rt);
        assert_eq!(n.wait_past_spin(&rt, 0, 8), WaitOutcome::Immediate);
        // Epoch moves while we spin: another thread bumps it shortly.
        let n2 = n.clone();
        let rt2 = rt.clone();
        let seen = n.epoch();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            n2.notify(&rt2);
        });
        let out = n.wait_past_spin(&rt, seen, 64);
        assert!(
            out == WaitOutcome::Spun || out == WaitOutcome::Parked,
            "{out:?}"
        );
        h.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn wait_past_spin_sim_goes_straight_to_park() {
        let sim = SimRuntime::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.run(move |rt| {
            let n = Notifier::new();
            let n2 = n.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                let seen = n2.epoch();
                let out = n2.wait_past_spin(&rt2, seen, 32);
                assert_eq!(out, WaitOutcome::Parked);
                hits2.store(1, Ordering::SeqCst);
            });
            rt.yield_now();
            n.notify(rt);
            h.join().unwrap();
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_past_deadline_times_out_and_deregisters() {
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let n = Notifier::new();
            let seen = n.epoch();
            let t0 = rt.now();
            assert!(!n.wait_past_deadline(rt, seen, t0 + 300));
            assert_eq!(rt.now(), t0 + 300);
            // Deregistered on timeout: the wake pass has nobody to visit.
            assert!(
                !n.inner.has_waiters.load(Ordering::SeqCst) || n.inner.waiters.lock().is_empty()
            );
        })
        .unwrap();
    }

    #[test]
    fn wait_past_deadline_returns_true_on_notify() {
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let n = Notifier::new();
            let n2 = n.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                let seen = n2.epoch();
                n2.wait_past_deadline(&rt2, seen, rt2.now() + 1_000_000)
            });
            rt.yield_now(); // waiter parks
            n.notify(rt);
            assert!(h.join().unwrap());
            // Notified well before the deadline: no clock advance needed.
            assert_eq!(rt.now(), 0);
        })
        .unwrap();
    }

    #[test]
    fn weak_notifier_reports_liveness() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        let w = n.downgrade();
        assert!(w.notify(&rt));
        drop(n);
        assert!(!w.notify(&rt));
    }

    #[test]
    fn notify_wakes_multiple_waiters() {
        let sim = SimRuntime::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        sim.run(move |rt| {
            let n = Notifier::new();
            let mut hs = Vec::new();
            for i in 0..3 {
                let n2 = n.clone();
                let rt2 = rt.clone();
                let c2 = Arc::clone(&c);
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    let seen = n2.epoch();
                    n2.wait_past(&rt2, seen);
                    c2.fetch_add(1, Ordering::SeqCst);
                }));
            }
            rt.yield_now();
            rt.yield_now();
            rt.yield_now();
            n.notify(rt);
            for h in hs {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn batch_bumps_epoch_once() {
        let rt = Runtime::threaded();
        let n = Notifier::new();
        {
            let mut b = n.batch(&rt);
            b.mark();
            b.mark();
            b.mark();
            assert!(b.is_marked());
        }
        assert_eq!(n.epoch(), 1);
        {
            let b = n.batch(&rt); // never marked — no bump
            drop(b);
        }
        assert_eq!(n.epoch(), 1);
    }

    #[test]
    fn batch_wakes_waiter_on_drop_sim() {
        let sim = SimRuntime::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        sim.run(move |rt| {
            let n = Notifier::new();
            let n2 = n.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                let seen = n2.epoch();
                n2.wait_past(&rt2, seen);
                hits2.store(1, Ordering::SeqCst);
            });
            rt.yield_now();
            let mut b = n.batch(rt);
            b.mark();
            drop(b);
            h.join().unwrap();
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
