//! Executors: the threaded runtime and the deterministic simulation runtime.
//!
//! The paper assumes objects live in a single address space with light
//! weight processes and a high-priority manager (paper §3, citing Mach
//! tasks/threads). We provide two interchangeable executors behind the
//! [`Runtime`] handle:
//!
//! * [`Runtime::threaded`] — each process is an OS thread; real
//!   parallelism; priorities are advisory (the OS schedules).
//! * [`SimRuntime`] — deterministic cooperative simulation: exactly one
//!   process runs at a time, scheduling points are explicit
//!   (`park`/`unpark`/`yield_now`/`sleep`), priorities are honoured
//!   strictly (smallest value first), time is virtual, and **deadlock is
//!   detected** (all live processes parked with no pending timer).

mod sim;
#[cfg(target_arch = "x86_64")]
mod steal;
mod thread;

pub use sim::{SchedPolicy, SimProbe, SimRuntime};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::RuntimeError;
use crate::fault::FaultAction;
use crate::process::{ProcId, Spawn};

/// Number of virtual ticks per simulated millisecond. One tick is one
/// microsecond: the threaded executor maps `sleep(t)` to a real sleep of
/// `t` microseconds, the simulation executor advances its virtual clock.
pub const TICKS_PER_MS: u64 = 1_000;

pub(crate) trait ExecutorCore: Send + Sync {
    fn spawn(
        &self,
        self_arc: &Arc<dyn ExecutorCore>,
        opts: Spawn,
        f: Box<dyn FnOnce() + Send>,
    ) -> ProcId;
    fn current(&self, self_arc: &Arc<dyn ExecutorCore>) -> ProcId;
    fn park(&self, self_arc: &Arc<dyn ExecutorCore>);
    fn park_timeout(&self, self_arc: &Arc<dyn ExecutorCore>, ticks: u64);
    fn unpark(&self, id: ProcId);
    fn yield_now(&self, self_arc: &Arc<dyn ExecutorCore>);
    fn sleep(&self, self_arc: &Arc<dyn ExecutorCore>, ticks: u64);
    fn now(&self) -> u64;
    fn join(&self, self_arc: &Arc<dyn ExecutorCore>, id: ProcId) -> Result<(), RuntimeError>;
    fn shutdown(&self);
    fn is_sim(&self) -> bool;
    fn proc_name(&self, id: ProcId) -> Option<String>;
    /// Consult the installed fault plan (simulation only; the threaded
    /// executor never has one) at a named protocol step.
    fn fault(&self, step: &str) -> Option<FaultAction> {
        let _ = step;
        None
    }
    /// Commit-point annotation (see [`crate::explore::CommitPoint`]):
    /// a no-op everywhere except the simulation executor, where the
    /// scheduling strategy may preempt the caller with a bounded virtual
    /// delay and the hit is folded into the coverage counters.
    fn sim_point(&self, self_arc: &Arc<dyn ExecutorCore>, cp: crate::explore::CommitPoint) {
        let _ = (self_arc, cp);
    }
    /// OS threads this executor occupies, when that number is *bounded*
    /// regardless of how many processes are spawned (the work-stealing
    /// pool: K workers + 1 timer). `None` for thread-per-process and
    /// simulation executors, where the question is moot or unbounded.
    fn os_threads(&self) -> Option<u64> {
        None
    }
    /// Draw a pseudo-random 64-bit value. The simulation executor draws
    /// from its seeded scheduler stream (deterministic per seed); the
    /// threaded executor uses a process-wide splitmix64 counter, which is
    /// well-distributed but not reproducible across runs.
    fn rand_u64(&self) -> u64 {
        // splitmix64 over a global Weyl sequence: each call advances the
        // counter by the golden-gamma increment and scrambles it.
        static RAND_CTR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mut z = RAND_CTR
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Process-unique executor instance tokens. The thread-local [`CURRENT`]
/// registry keys registrations by token, **not** by executor address: heap
/// addresses are reused after a runtime is dropped, and a stale
/// registration that matched a new runtime at the same address could hand
/// a foreign thread the identity of one of the new runtime's spawned
/// processes — two threads sharing one park slot silently steal each
/// other's unpark permits (lost wakeups).
static NEXT_CORE_TOKEN: AtomicUsize = AtomicUsize::new(1);

pub(crate) fn alloc_core_token() -> usize {
    NEXT_CORE_TOKEN.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Which process the current OS thread is, per executor instance
    /// (keyed by the executor's unique token). A thread can in principle
    /// touch several runtimes (e.g. a test driving two threaded runtimes).
    pub(crate) static CURRENT: RefCell<Vec<(usize, ProcId)>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_for(core_token: usize) -> Option<ProcId> {
    CURRENT.with(|c| {
        c.borrow()
            .iter()
            .rev()
            .find(|(t, _)| *t == core_token)
            .map(|(_, id)| *id)
    })
}

pub(crate) fn set_current(core_token: usize, id: ProcId) {
    CURRENT.with(|c| c.borrow_mut().push((core_token, id)));
}

pub(crate) fn clear_current(core_token: usize, id: ProcId) {
    CURRENT.with(|c| {
        let mut v = c.borrow_mut();
        if let Some(pos) = v.iter().rposition(|(t, p)| *t == core_token && *p == id) {
            v.remove(pos);
        }
    });
}

/// Handle to a runtime. Cloning is cheap (an `Arc`); all clones refer to
/// the same executor.
///
/// # Examples
///
/// ```
/// use alps_runtime::{Runtime, Spawn};
///
/// let rt = Runtime::threaded();
/// let h = rt.spawn_with(Spawn::new("greeter"), || 2 + 2);
/// assert_eq!(h.join().unwrap(), 4);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Runtime {
    pub(crate) core: Arc<dyn ExecutorCore>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("kind", &if self.is_sim() { "sim" } else { "threaded" })
            .finish()
    }
}

impl Runtime {
    /// Create a threaded runtime: every spawned process is an OS thread.
    pub fn threaded() -> Runtime {
        Runtime {
            core: Arc::new(thread::ThreadCore::new()),
        }
    }

    /// Create a work-stealing shared runtime: spawned processes are
    /// stackful green tasks multiplexed onto `workers` long-lived OS
    /// workers (plus one timer thread), with per-worker LIFO deques, a
    /// global injector, and steal-half batching. The park/unpark/
    /// `park_timeout` contract is identical to [`Runtime::threaded`];
    /// the OS-thread count stays fixed no matter how many processes are
    /// spawned (see [`Runtime::os_threads`]).
    ///
    /// x86_64 only (hand-written context switch); other targets fall
    /// back to the threaded executor.
    #[cfg(target_arch = "x86_64")]
    pub fn thread_pool(workers: usize) -> Runtime {
        Runtime {
            core: Arc::new(steal::StealCore::new(workers)),
        }
    }

    /// Fallback for non-x86_64 targets: a plain threaded runtime.
    #[cfg(not(target_arch = "x86_64"))]
    pub fn thread_pool(workers: usize) -> Runtime {
        let _ = workers;
        Runtime::threaded()
    }

    /// Spawn a process with default options (name `"proc"`, normal
    /// priority, non-daemon). Returns a handle whose
    /// [`join`](ProcHandle::join) yields the closure's result.
    pub fn spawn<R, F>(&self, f: F) -> ProcHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.spawn_with(Spawn::default(), f)
    }

    /// Spawn a process with explicit [`Spawn`] options.
    pub fn spawn_with<R, F>(&self, opts: Spawn, f: F) -> ProcHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let result: Arc<parking_lot::Mutex<Option<R>>> = Arc::new(parking_lot::Mutex::new(None));
        let slot = Arc::clone(&result);
        let id = self.core.spawn(
            &self.core,
            opts,
            Box::new(move || {
                let r = f();
                *slot.lock() = Some(r);
            }),
        );
        ProcHandle {
            rt: self.clone(),
            id,
            result,
        }
    }

    /// Identity of the calling process.
    ///
    /// # Panics
    ///
    /// In a simulation runtime, panics when called from a thread that is
    /// not a simulated process (foreign threads would break determinism).
    /// The threaded runtime lazily registers foreign threads instead.
    pub fn current(&self) -> ProcId {
        self.core.current(&self.core)
    }

    /// Block the calling process until some other process calls
    /// [`unpark`](Runtime::unpark) for it. Like [`std::thread::park`], a
    /// token (permit) is buffered: an `unpark` that precedes the `park`
    /// makes the `park` return immediately. Spurious returns are possible;
    /// always re-check the waited-for condition in a loop.
    pub fn park(&self) {
        self.core.park(&self.core);
    }

    /// Like [`park`](Runtime::park), but return after at most `ticks`
    /// virtual microseconds even if no unpark arrives. There is no
    /// timed-out indication — exactly as with `park`, callers must
    /// re-check their condition (and their own deadline) in a loop.
    /// `park_timeout(0)` is a scheduling point that returns immediately
    /// unless a permit is buffered.
    pub fn park_timeout(&self, ticks: u64) {
        self.core.park_timeout(&self.core, ticks);
    }

    /// Make a pending or future [`park`](Runtime::park) of `id` return.
    /// Unknown or exited ids are ignored.
    pub fn unpark(&self, id: ProcId) {
        self.core.unpark(id);
    }

    /// Yield the CPU. In the simulation executor this is a scheduling
    /// point: the highest-priority runnable process (possibly the caller)
    /// runs next. In the threaded executor it is [`std::thread::yield_now`].
    pub fn yield_now(&self) {
        self.core.yield_now(&self.core);
    }

    /// Sleep for `ticks` virtual microseconds (simulation: advances the
    /// virtual clock without wall-clock delay; threaded: real sleep).
    /// `sleep(0)` returns immediately without a scheduling point.
    pub fn sleep(&self, ticks: u64) {
        if ticks == 0 {
            return;
        }
        self.core.sleep(&self.core, ticks);
    }

    /// Current time in ticks (virtual in simulation, wall-clock
    /// microseconds since runtime creation otherwise).
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Whether this is a deterministic simulation runtime.
    pub fn is_sim(&self) -> bool {
        self.core.is_sim()
    }

    /// OS threads this runtime occupies, when that number is bounded
    /// independently of the number of spawned processes (the
    /// work-stealing pool reports `Some(workers + 1)`); `None` for the
    /// thread-per-process and simulation executors.
    pub fn os_threads(&self) -> Option<u64> {
        self.core.os_threads()
    }

    /// Fault-injection hook for instrumented protocol steps (see
    /// [`FaultPlan`](crate::FaultPlan)). Counts one occurrence of `step`
    /// against the installed plan. A matching [`FaultAction::Delay`] is
    /// applied here (virtual sleep); [`FaultAction::Panic`] panics with
    /// payload `"injected fault: <step>"`. Returns `true` iff the site
    /// should *drop* the operation ([`FaultAction::Drop`]). Without an
    /// installed plan this is a cheap constant `false`.
    pub fn fault_point(&self, step: &str) -> bool {
        match self.core.fault(step) {
            None => false,
            Some(FaultAction::Delay(ticks)) => {
                self.sleep(ticks);
                false
            }
            Some(FaultAction::Panic) => panic!("injected fault: {step}"),
            Some(FaultAction::Drop) => true,
        }
    }

    /// Annotate a protocol **commit point** (see
    /// [`CommitPoint`](crate::explore::CommitPoint)) — one of the places
    /// the call protocol commits a racy decision. A no-op on the real
    /// executors; on a [`SimRuntime`] the scheduling strategy may
    /// preempt the calling process here with a bounded virtual delay,
    /// and the hit is recorded in the schedule-coverage counters.
    ///
    /// Call sites must hold **no locks**: on the sim executor this can
    /// suspend the calling process for virtual time.
    #[inline]
    pub fn sim_point(&self, cp: crate::explore::CommitPoint) {
        self.core.sim_point(&self.core, cp);
    }

    /// Draw a pseudo-random 64-bit value from the runtime's RNG. On a
    /// [`SimRuntime`] the stream is the scheduler's seeded xorshift64*, so
    /// every draw — e.g. retry-backoff jitter — is deterministic per seed
    /// and a seeded replay reproduces it bit-for-bit. On the threaded
    /// runtime the values are well-distributed but not reproducible.
    pub fn rand_u64(&self) -> u64 {
        self.core.rand_u64()
    }

    /// Debug name of a live process, if known.
    pub fn proc_name(&self, id: ProcId) -> Option<String> {
        self.core.proc_name(id)
    }

    /// Abort all processes: parked processes wake and unwind with
    /// [`Aborted`](crate::Aborted). Blocking operations after shutdown
    /// unwind immediately. Used as a backstop; orderly teardown (e.g.
    /// closing an ALPS object) should not rely on it.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }
}

/// Handle to a spawned process; join to retrieve the closure's result.
#[derive(Debug)]
pub struct ProcHandle<R> {
    rt: Runtime,
    id: ProcId,
    result: Arc<parking_lot::Mutex<Option<R>>>,
}

impl<R: Send + 'static> ProcHandle<R> {
    /// The process id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Wait for the process to finish and return its result.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ProcPanicked`] if the process panicked (including
    /// shutdown aborts).
    pub fn join(self) -> Result<R, RuntimeError> {
        self.rt.core.join(&self.rt.core, self.id)?;
        let r = self.result.lock().take();
        r.ok_or(RuntimeError::ProcPanicked {
            name: self
                .rt
                .proc_name(self.id)
                .unwrap_or_else(|| "unknown".to_string()),
        })
    }
}
