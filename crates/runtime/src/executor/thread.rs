//! Threaded executor: one OS thread per process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use super::{clear_current, current_for, set_current, ExecutorCore};
use crate::error::{Aborted, RuntimeError};
use crate::process::{ProcId, Spawn};

#[derive(Debug)]
struct SlotSt {
    permit: bool,
    done: bool,
    panicked: bool,
    aborted: bool,
}

#[derive(Debug)]
struct ProcSlot {
    name: String,
    foreign: bool,
    st: Mutex<SlotSt>,
    cv: Condvar,
    done_cv: Condvar,
}

impl ProcSlot {
    fn new(name: String, foreign: bool) -> Arc<ProcSlot> {
        Arc::new(ProcSlot {
            name,
            foreign,
            st: Mutex::new(SlotSt {
                permit: false,
                done: false,
                panicked: false,
                aborted: false,
            }),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    }
}

pub(crate) struct ThreadCore {
    /// Unique instance token keying thread-local registrations — never an
    /// address, which the allocator may reuse across runtime lifetimes.
    token: usize,
    procs: Arc<Mutex<HashMap<ProcId, Arc<ProcSlot>>>>,
    next_id: AtomicU64,
    epoch0: Instant,
    shutdown: AtomicBool,
}

impl ThreadCore {
    pub(crate) fn new() -> ThreadCore {
        crate::error::silence_abort_panics();
        ThreadCore {
            token: super::alloc_core_token(),
            procs: Arc::new(Mutex::new(HashMap::new())),
            next_id: AtomicU64::new(1),
            epoch0: Instant::now(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn alloc_id(&self) -> ProcId {
        ProcId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Slot of the calling thread, registering foreign threads lazily.
    fn my_slot(&self) -> (ProcId, Arc<ProcSlot>) {
        if let Some(id) = current_for(self.token) {
            let slot = self.procs.lock().get(&id).cloned();
            if let Some(slot) = slot {
                return (id, slot);
            }
        }
        // Foreign (or stale) thread: register a fresh slot.
        let id = self.alloc_id();
        let slot = ProcSlot::new(format!("foreign-{}", id.as_u64()), true);
        self.procs.lock().insert(id, Arc::clone(&slot));
        set_current(self.token, id);
        (id, slot)
    }
}

impl ExecutorCore for ThreadCore {
    fn spawn(
        &self,
        _self_arc: &Arc<dyn ExecutorCore>,
        opts: Spawn,
        f: Box<dyn FnOnce() + Send>,
    ) -> ProcId {
        let id = self.alloc_id();
        let slot = ProcSlot::new(opts.name.clone(), false);
        self.procs.lock().insert(id, Arc::clone(&slot));
        let token = self.token;
        std::thread::Builder::new()
            .name(format!("{}#{}", opts.name, id.as_u64()))
            .spawn(move || {
                set_current(token, id);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let panicked = match &outcome {
                    Ok(()) => false,
                    Err(payload) => !payload.is::<Aborted>(),
                };
                clear_current(token, id);
                {
                    let mut st = slot.st.lock();
                    st.done = true;
                    st.panicked = panicked;
                    slot.done_cv.notify_all();
                }
                // The entry stays in the registry so join() can still read
                // the panic status; join() prunes it. Detached processes
                // leave a small tombstone until the runtime is dropped.
            })
            .expect("failed to spawn OS thread");
        id
    }

    fn current(&self, _self_arc: &Arc<dyn ExecutorCore>) -> ProcId {
        self.my_slot().0
    }

    fn park(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        let (_, slot) = self.my_slot();
        let mut st = slot.st.lock();
        if st.aborted && !slot.foreign {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        if st.permit {
            st.permit = false;
            return;
        }
        slot.cv.wait(&mut st);
        if st.aborted && !slot.foreign {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        // Either a real unpark (consume the permit) or a spurious/aborted
        // wake; callers loop on their condition either way.
        st.permit = false;
    }

    fn park_timeout(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        let (_, slot) = self.my_slot();
        let mut st = slot.st.lock();
        if st.aborted && !slot.foreign {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        if st.permit {
            st.permit = false;
            return;
        }
        let _ = slot.cv.wait_for(&mut st, Duration::from_micros(ticks));
        if st.aborted && !slot.foreign {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        // Real unpark, timeout, or spurious wake: consume any permit and
        // let the caller re-check its condition, exactly as in park().
        st.permit = false;
    }

    fn unpark(&self, id: ProcId) {
        let slot = self.procs.lock().get(&id).cloned();
        if let Some(slot) = slot {
            let mut st = slot.st.lock();
            st.permit = true;
            slot.cv.notify_all();
        }
    }

    fn yield_now(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        std::thread::yield_now();
    }

    fn sleep(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        if self.shutdown.load(Ordering::SeqCst) {
            std::panic::panic_any(Aborted);
        }
        std::thread::sleep(Duration::from_micros(ticks));
    }

    fn now(&self) -> u64 {
        self.epoch0.elapsed().as_micros() as u64
    }

    fn join(&self, _self_arc: &Arc<dyn ExecutorCore>, id: ProcId) -> Result<(), RuntimeError> {
        let slot = self.procs.lock().get(&id).cloned();
        let Some(slot) = slot else {
            // Already exited and removed; assume clean (panicked handles
            // hold the slot Arc through ProcHandle::result anyway).
            return Ok(());
        };
        let mut st = slot.st.lock();
        while !st.done {
            slot.done_cv.wait(&mut st);
        }
        drop(st);
        self.procs.lock().remove(&id);
        let st = slot.st.lock();
        if st.panicked {
            Err(RuntimeError::ProcPanicked {
                name: slot.name.clone(),
            })
        } else {
            Ok(())
        }
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<ProcSlot>> = self.procs.lock().values().cloned().collect();
        for slot in slots {
            let mut st = slot.st.lock();
            st.aborted = true;
            st.permit = true;
            slot.cv.notify_all();
        }
    }

    fn is_sim(&self) -> bool {
        false
    }

    fn proc_name(&self, id: ProcId) -> Option<String> {
        self.procs.lock().get(&id).map(|s| s.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::process::Priority;
    use crate::{Runtime, Spawn};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn spawn_and_join_returns_value() {
        let rt = Runtime::threaded();
        let h = rt.spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn join_reports_panic() {
        let rt = Runtime::threaded();
        let h = rt.spawn_with(Spawn::new("boom"), || {
            if true {
                panic!("bang");
            }
        });
        let err = h.join().unwrap_err();
        assert_eq!(err.to_string(), "process `boom` panicked");
    }

    #[test]
    fn unpark_before_park_buffers_permit() {
        let rt = Runtime::threaded();
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let me = rt2.current();
            rt2.unpark(me); // self-permit
            rt2.park(); // must not block
            42
        });
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn park_blocks_until_unpark() {
        let rt = Runtime::threaded();
        let flag = Arc::new(AtomicUsize::new(0));
        let (rt2, flag2) = (rt.clone(), Arc::clone(&flag));
        let h = rt.spawn(move || {
            flag2.store(1, Ordering::SeqCst);
            rt2.park();
            flag2.store(2, Ordering::SeqCst);
        });
        let id = h.id();
        while flag.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        rt.unpark(id);
        h.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn park_timeout_expires_without_unpark() {
        let rt = Runtime::threaded();
        let h = rt.spawn(move || 1);
        h.join().unwrap();
        let t0 = std::time::Instant::now();
        rt.park_timeout(5_000); // 5ms; nobody unparks this thread
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn park_timeout_consumes_buffered_permit_immediately() {
        let rt = Runtime::threaded();
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let me = rt2.current();
            rt2.unpark(me);
            let t0 = std::time::Instant::now();
            rt2.park_timeout(5_000_000); // must not block: permit buffered
            t0.elapsed() < std::time::Duration::from_secs(1)
        });
        assert!(h.join().unwrap());
    }

    #[test]
    fn foreign_thread_can_park_and_be_unparked() {
        let rt = Runtime::threaded();
        let me = rt.current(); // registers the test thread
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            rt2.unpark(me);
        });
        rt.park();
        h.join().unwrap();
    }

    #[test]
    fn foreign_registration_dies_with_its_runtime() {
        // Regression: the thread-local registration used to be keyed by
        // the executor's heap address. When a runtime was dropped and the
        // next runtime's executor reused the allocation, the main thread's
        // stale (addr, id) entry survived — and if the new runtime had
        // already handed that id to a spawned proc, the main thread
        // adopted that proc's park slot. Two threads sharing one slot
        // steal each other's unpark permits: a lost wakeup that showed up
        // as a rare bench deadlock. Tokens are process-unique, so the
        // stale entry can never match; this loop makes allocator reuse
        // likely and asserts the foreign thread always gets its own slot.
        for _ in 0..64 {
            // Runtime A: main registers as a foreign proc with a low id.
            let rt_a = Runtime::threaded();
            let _ = rt_a.current();
            drop(rt_a);
            // Runtime B (often at the same address): spawn a few procs so
            // their ids cover A's stale foreign id, then register main.
            let rt_b = Runtime::threaded();
            let go = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let go2 = Arc::clone(&go);
                    rt_b.spawn(move || {
                        while go2.load(Ordering::SeqCst) == 0 {
                            std::thread::yield_now();
                        }
                    })
                })
                .collect();
            let me = rt_b.current();
            for h in &hs {
                assert_ne!(me, h.id(), "foreign thread adopted a spawned proc's id");
            }
            let name = rt_b.proc_name(me).unwrap();
            assert!(name.starts_with("foreign-"), "not a foreign slot: {name}");
            // The park/unpark handshake that deadlocked under the old code.
            let rt2 = rt_b.clone();
            let waker = rt_b.spawn(move || rt2.unpark(me));
            rt_b.park();
            go.store(1, Ordering::SeqCst);
            waker.join().unwrap();
            for h in hs {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn now_is_monotonic_and_sleep_advances_it() {
        let rt = Runtime::threaded();
        let t0 = rt.now();
        rt.sleep(2_000);
        let t1 = rt.now();
        assert!(t1 >= t0 + 1_000, "t0={t0} t1={t1}");
    }

    #[test]
    fn priorities_are_advisory_metadata() {
        let rt = Runtime::threaded();
        let h = rt.spawn_with(Spawn::new("m").prio(Priority::MANAGER).daemon(true), || 1);
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn proc_name_resolves_while_alive() {
        let rt = Runtime::threaded();
        let rt2 = rt.clone();
        let h = rt.spawn_with(Spawn::new("worker"), move || {
            let me = rt2.current();
            rt2.proc_name(me)
        });
        assert_eq!(h.join().unwrap().as_deref(), Some("worker"));
    }
}
