//! Deterministic simulation executor.
//!
//! Exactly one simulated process runs at a time. Every blocking primitive
//! (`park`, `sleep`, `yield_now`, `join`, process exit) is a *scheduling
//! point* where the executor picks the next runnable process:
//!
//! * **strictly by priority** (smallest [`Priority`](crate::Priority) value
//!   first) — this is what makes the paper's "manager at a higher
//!   priority" semantics exact and observable (experiment E8);
//! * among equal priorities, by a pluggable **scheduling strategy**
//!   ([`SchedPolicy`]): FIFO by readiness order (fully deterministic),
//!   seeded pseudo-random, round-robin, PCT-style preemption-bounded, or
//!   commit-point-targeted racing — all deterministic per seed (see
//!   [`crate::explore`] for the strategy semantics and the
//!   `SIM_TRACE` replay contract).
//!
//! Time is virtual: `sleep(t)` suspends the process until the clock
//! reaches `now + t`, and the clock only advances when no process is
//! runnable. A run ends when the main process has finished and the system
//! is idle; remaining daemon processes are aborted (their pending blocking
//! call unwinds with [`Aborted`](crate::Aborted)).
//!
//! If the main process has *not* finished and no process is runnable nor
//! sleeping, every live process is parked forever: the run fails with
//! [`RuntimeError::Deadlock`] naming the parked processes.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use super::{clear_current, current_for, set_current, ExecutorCore, Runtime};
use crate::error::{Aborted, RuntimeError};
use crate::explore::{
    build_strategy, fnv1a_u64, CommitPoint, SchedStrategy, TraceSpec, FNV_OFFSET,
};
use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::process::{ProcId, Spawn};

/// Scheduling policy among equal-priority runnable processes, plus the
/// commit-point preemption behaviour. Every policy is deterministic for
/// a given seed; see [`crate::explore`] for the strategy semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First-come-first-served among equal priorities (default). Never
    /// preempts: explores exactly one schedule.
    #[default]
    PriorityFifo,
    /// Seeded pseudo-random choice among the equal-priority front;
    /// deterministic for a given seed. Never preempts at commit points.
    PriorityRandom(u64),
    /// Rotate through the equal-priority front (rotation offset seeded):
    /// a cheap liveness baseline that guarantees every member of a
    /// persistent front group eventually runs.
    RoundRobin(u64),
    /// PCT-style preemption-bounded exploration: FIFO picks plus at most
    /// `bound` seeded preemptions placed at commit points, so the
    /// preemptions are the *only* perturbation of the default schedule.
    PreemptionBounded {
        /// RNG seed for preemption placement.
        seed: u64,
        /// Maximum forced preemptions per run.
        bound: u32,
    },
    /// Commit-point-targeted racing: seeded random picks plus aggressive
    /// preemption at roughly every other commit point. Maximizes
    /// distinct commit-point orderings per schedule.
    TargetedRace(u64),
}

impl SchedPolicy {
    /// The seed this policy derives all its streams from (0 for FIFO).
    pub fn seed(self) -> u64 {
        match self {
            SchedPolicy::PriorityFifo => 0,
            SchedPolicy::PriorityRandom(s)
            | SchedPolicy::RoundRobin(s)
            | SchedPolicy::TargetedRace(s) => s,
            SchedPolicy::PreemptionBounded { seed, .. } => seed,
        }
    }

    /// Canonical strategy token (`SIM_STRATEGY` vocabulary).
    pub fn strategy_name(self) -> &'static str {
        match self {
            SchedPolicy::PriorityFifo => "fifo",
            SchedPolicy::PriorityRandom(_) => "random",
            SchedPolicy::RoundRobin(_) => "rr",
            SchedPolicy::PreemptionBounded { .. } => "pct",
            SchedPolicy::TargetedRace(_) => "targeted",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Ready,
    Running,
    Parked,
    Sleeping,
    Done,
}

struct SimProc {
    name: String,
    prio: i32,
    daemon: bool,
    main: bool,
    cv: Arc<Condvar>,
    granted: bool,
    permit: bool,
    aborted: bool,
    state: PState,
    panicked: bool,
    joiners: Vec<ProcId>,
}

struct SimSt {
    procs: HashMap<ProcId, SimProc>,
    /// Runnable set ordered by (priority, readiness sequence, id).
    ready: BTreeSet<(i32, u64, ProcId)>,
    running: Option<ProcId>,
    sleepers: BinaryHeap<Reverse<(u64, u64, ProcId)>>,
    clock: u64,
    next_id: u64,
    seq: u64,
    live: usize,
    main_done: bool,
    shutting_down: bool,
    /// Pluggable scheduling strategy (picks + commit-point preemptions),
    /// built from the policy at construction. Owns its own seeded
    /// streams, independent of `rng`.
    strategy: Box<dyn SchedStrategy>,
    /// Stream backing [`ExecutorCore::rand_u64`] only — scheduling
    /// decisions never draw from it, so user-code randomness (retry
    /// jitter etc.) is a pure function of the seed regardless of how
    /// many scheduling decisions happen in between.
    rng: u64,
    /// FNV-1a over every scheduling decision: each grant's (priority,
    /// winner, group size), plus each commit-point event and preemption
    /// delay. Byte-identical across two runs iff the schedule was.
    decision_hash: u64,
    /// FNV-1a over the *sequence of commit-point codes only* — a
    /// deliberately coarse fingerprint of the protocol-event ordering
    /// (two schedules that merely permute same-kind events collide).
    /// Distinct values across a sweep = the coverage counter.
    coverage_hash: u64,
    /// Global commit-point hit counter; keys recorded preemptions.
    commit_hits: u64,
    /// Every preemption taken, as `(commit-hit index, delay ticks)` —
    /// the raw material of a [`TraceSpec`].
    preempt_log: Vec<(u64, u64)>,
}

impl SimSt {
    fn bump_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*; deterministic, no external dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn make_ready(&mut self, id: ProcId) {
        let seq = self.bump_seq();
        let p = self.procs.get_mut(&id).expect("make_ready: unknown proc");
        debug_assert!(p.state != PState::Done);
        p.state = PState::Ready;
        self.ready.insert((p.prio, seq, id));
    }

    /// Pick and grant the next runnable process, if any. Returns whether a
    /// grant happened. Sets `running` under the lock so no second grant
    /// can race in before the granted thread wakes up.
    ///
    /// The strategy is only consulted when there is a real choice (two or
    /// more processes at the front priority), so its pick stream advances
    /// once per actual decision — the invariant the `SIM_TRACE` replay
    /// contract rests on.
    fn schedule_next(&mut self) -> bool {
        debug_assert!(self.running.is_none());
        let mut it = self.ready.iter();
        let Some(&first) = it.next() else {
            return false;
        };
        let singleton = it.next().is_none_or(|&(p, _, _)| p != first.0);
        let (key, group_len) = if singleton {
            (first, 1)
        } else {
            let group: Vec<(i32, u64, ProcId)> = self
                .ready
                .iter()
                .take_while(|(p, _, _)| *p == first.0)
                .copied()
                .collect();
            let idx = self.strategy.pick(group.len()) % group.len();
            (group[idx], group.len())
        };
        self.ready.remove(&key);
        let id = key.2;
        self.running = Some(id);
        self.decision_hash = fnv1a_u64(self.decision_hash, key.0 as u64);
        self.decision_hash = fnv1a_u64(self.decision_hash, id.as_u64());
        self.decision_hash = fnv1a_u64(self.decision_hash, group_len as u64);
        let p = self.procs.get_mut(&id).expect("schedule: unknown proc");
        p.granted = true;
        p.state = PState::Running;
        p.cv.notify_all();
        true
    }

    fn idle(&self) -> bool {
        self.running.is_none() && self.ready.is_empty()
    }

    fn parked_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .procs
            .values()
            .filter(|p| matches!(p.state, PState::Parked))
            .map(|p| {
                if p.daemon {
                    format!("{} (daemon)", p.name)
                } else {
                    p.name.clone()
                }
            })
            .collect();
        names.sort();
        names
    }
}

pub(crate) struct SimCore {
    /// Unique instance token keying thread-local registrations — never an
    /// address, which the allocator may reuse across runtime lifetimes.
    token: usize,
    st: Mutex<SimSt>,
    driver_cv: Condvar,
    /// Back-reference so spawned threads can reach the core without an
    /// unsound `Arc<dyn>` downcast; set once at construction.
    self_weak: Mutex<std::sync::Weak<SimCore>>,
    /// Fast gate for [`ExecutorCore::fault`]: plans are rare, the hook is
    /// on warm protocol paths.
    faults_armed: AtomicBool,
    faults: Mutex<Option<FaultState>>,
}

impl SimCore {
    fn new(policy: SchedPolicy, replay: Option<&[(u64, u64)]>) -> SimCore {
        crate::error::silence_abort_panics();
        let seed = match policy {
            SchedPolicy::PriorityFifo => 0x9E37_79B9_7F4A_7C15,
            other => other.seed() | 1,
        };
        SimCore {
            token: super::alloc_core_token(),
            self_weak: Mutex::new(std::sync::Weak::new()),
            faults_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
            st: Mutex::new(SimSt {
                procs: HashMap::new(),
                ready: BTreeSet::new(),
                running: None,
                sleepers: BinaryHeap::new(),
                clock: 0,
                next_id: 1,
                seq: 0,
                live: 0,
                main_done: false,
                shutting_down: false,
                strategy: build_strategy(policy, replay),
                rng: seed,
                decision_hash: FNV_OFFSET,
                coverage_hash: FNV_OFFSET,
                commit_hits: 0,
                preempt_log: Vec::new(),
            }),
            driver_cv: Condvar::new(),
        }
    }

    /// Block the calling simulated process until granted the CPU again.
    /// Must be called with `st` locked and the caller not `running`.
    fn wait_for_grant(&self, st: &mut parking_lot::MutexGuard<'_, SimSt>, me: ProcId) {
        let cv = st.procs.get(&me).expect("wait: unknown proc").cv.clone();
        loop {
            {
                let p = st.procs.get_mut(&me).expect("wait: unknown proc");
                if p.aborted {
                    p.granted = false;
                    drop(cv);
                    // Let the system keep scheduling; this proc is exiting.
                    std::panic::panic_any(Aborted);
                }
                if p.granted {
                    p.granted = false;
                    p.state = PState::Running;
                    debug_assert_eq!(st.running, Some(me));
                    return;
                }
            }
            cv.wait(st);
        }
    }

    /// Release the CPU (the caller must currently be `running`), schedule a
    /// successor, and notify the driver if the system went idle.
    fn release_cpu(&self, st: &mut SimSt, me: ProcId) {
        debug_assert_eq!(st.running, Some(me));
        st.running = None;
        if !st.schedule_next() {
            self.driver_cv.notify_all();
        }
    }

    fn proc_exit(&self, me: ProcId, panicked: bool) {
        let mut st = self.st.lock();
        let joiners = {
            let p = st.procs.get_mut(&me).expect("exit: unknown proc");
            p.state = PState::Done;
            p.panicked = panicked;
            p.granted = false;
            std::mem::take(&mut p.joiners)
        };
        if st.procs.get(&me).map(|p| p.main).unwrap_or(false) {
            st.main_done = true;
        }
        for j in joiners {
            self.unpark_locked(&mut st, j);
        }
        st.live -= 1;
        if st.running == Some(me) {
            st.running = None;
            st.schedule_next();
        }
        self.driver_cv.notify_all();
    }

    fn unpark_locked(&self, st: &mut SimSt, id: ProcId) {
        let Some(p) = st.procs.get_mut(&id) else {
            return;
        };
        match p.state {
            PState::Parked => {
                st.make_ready(id);
            }
            PState::Ready | PState::Running | PState::Sleeping => {
                p.permit = true;
            }
            PState::Done => {}
        }
    }

    fn current_id(&self) -> ProcId {
        current_for(self.token).expect(
            "this thread is not a simulated process; in a SimRuntime all \
             interaction must happen from processes spawned on the runtime",
        )
    }
}

impl ExecutorCore for SimCore {
    fn spawn(
        &self,
        _self_arc: &Arc<dyn ExecutorCore>,
        opts: Spawn,
        f: Box<dyn FnOnce() + Send>,
    ) -> ProcId {
        let token = self.token;
        let core: Arc<SimCore> = self
            .self_weak
            .lock()
            .upgrade()
            .expect("sim core self-reference not initialized");
        let mut st = self.st.lock();
        if st.shutting_down {
            // Refuse: allocate a proc id that is already Done.
            let id = ProcId(st.next_id);
            st.next_id += 1;
            return id;
        }
        let id = ProcId(st.next_id);
        st.next_id += 1;
        st.procs.insert(
            id,
            SimProc {
                name: opts.name.clone(),
                prio: opts.prio.0,
                daemon: opts.daemon,
                main: opts.main,
                cv: Arc::new(Condvar::new()),
                granted: false,
                permit: false,
                aborted: false,
                state: PState::Parked, // becomes Ready below
                panicked: false,
                joiners: Vec::new(),
            },
        );
        st.live += 1;
        st.make_ready(id);
        // If the system is idle (spawn from the driver before the run
        // starts, or a pathological window), kick the scheduler.
        if st.running.is_none() {
            st.schedule_next();
        }
        drop(st);
        std::thread::Builder::new()
            .name(format!("sim:{}#{}", opts.name, id.as_u64()))
            .spawn(move || {
                {
                    let mut st = core.st.lock();
                    core.wait_for_grant(&mut st, id);
                }
                set_current(token, id);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let panicked = match &outcome {
                    Ok(()) => false,
                    Err(payload) => !payload.is::<Aborted>(),
                };
                if panicked {
                    // Surface non-abort panics: determinism bugs otherwise
                    // hide behind silent daemon death.
                    // The payload is re-reported through join().
                }
                clear_current(token, id);
                core.proc_exit(id, panicked);
            })
            .expect("failed to spawn sim thread");
        id
    }

    fn current(&self, _self_arc: &Arc<dyn ExecutorCore>) -> ProcId {
        self.current_id()
    }

    fn park(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        let me = self.current_id();
        let mut st = self.st.lock();
        {
            let p = st.procs.get_mut(&me).expect("park: unknown proc");
            if p.aborted {
                std::panic::panic_any(Aborted);
            }
            if p.permit {
                p.permit = false;
                return;
            }
            p.state = PState::Parked;
        }
        self.release_cpu(&mut st, me);
        self.wait_for_grant(&mut st, me);
    }

    fn park_timeout(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        let me = self.current_id();
        let mut st = self.st.lock();
        let wake = st.clock.saturating_add(ticks);
        let seq = st.bump_seq();
        {
            let p = st.procs.get_mut(&me).expect("park_timeout: unknown proc");
            if p.aborted {
                std::panic::panic_any(Aborted);
            }
            if p.permit {
                p.permit = false;
                return;
            }
            p.state = PState::Parked;
        }
        // Parked *and* on the timer heap: an unpark makes the proc ready
        // and leaves a stale timer entry behind, which at most causes one
        // spurious wake of a later park — allowed by the park contract.
        st.sleepers.push(Reverse((wake, seq, me)));
        self.release_cpu(&mut st, me);
        self.wait_for_grant(&mut st, me);
    }

    fn unpark(&self, id: ProcId) {
        let mut st = self.st.lock();
        self.unpark_locked(&mut st, id);
        // An unpark can arrive from the driver thread between runs; if the
        // system is idle, start the newly-ready proc.
        if st.running.is_none() {
            st.schedule_next();
        }
    }

    fn yield_now(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        let me = self.current_id();
        let mut st = self.st.lock();
        st.make_ready(me);
        st.running = None;
        if !st.schedule_next() {
            self.driver_cv.notify_all();
        }
        self.wait_for_grant(&mut st, me);
    }

    fn sleep(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        let me = self.current_id();
        let mut st = self.st.lock();
        let wake = st.clock.saturating_add(ticks);
        let seq = st.bump_seq();
        {
            let p = st.procs.get_mut(&me).expect("sleep: unknown proc");
            if p.aborted {
                std::panic::panic_any(Aborted);
            }
            p.state = PState::Sleeping;
        }
        st.sleepers.push(Reverse((wake, seq, me)));
        self.release_cpu(&mut st, me);
        self.wait_for_grant(&mut st, me);
    }

    fn now(&self) -> u64 {
        self.st.lock().clock
    }

    fn join(&self, self_arc: &Arc<dyn ExecutorCore>, id: ProcId) -> Result<(), RuntimeError> {
        let me = self.current_id();
        loop {
            {
                let mut st = self.st.lock();
                match st.procs.get_mut(&id) {
                    None => return Ok(()),
                    Some(p) if p.state == PState::Done => {
                        return if p.panicked {
                            Err(RuntimeError::ProcPanicked {
                                name: p.name.clone(),
                            })
                        } else {
                            Ok(())
                        };
                    }
                    Some(p) => {
                        if !p.joiners.contains(&me) {
                            p.joiners.push(me);
                        }
                    }
                }
            }
            self.park(self_arc);
        }
    }

    fn shutdown(&self) {
        let mut st = self.st.lock();
        st.shutting_down = true;
        let ids: Vec<ProcId> = st.procs.keys().copied().collect();
        for id in ids {
            let p = st.procs.get_mut(&id).expect("shutdown: unknown proc");
            if p.state != PState::Done {
                p.aborted = true;
                p.granted = true; // wake whatever wait loop it is in
                p.cv.notify_all();
            }
        }
        st.ready.clear();
        st.running = None;
        st.sleepers.clear();
        self.driver_cv.notify_all();
    }

    fn is_sim(&self) -> bool {
        true
    }

    fn proc_name(&self, id: ProcId) -> Option<String> {
        self.st.lock().procs.get(&id).map(|p| p.name.clone())
    }

    fn fault(&self, step: &str) -> Option<FaultAction> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.faults.lock().as_mut().and_then(|s| s.check(step))
    }

    fn rand_u64(&self) -> u64 {
        // A dedicated seeded stream: the scheduler's pick/preempt draws
        // come from the strategy's own salted streams, so user-visible
        // randomness (retry jitter etc.) is a pure function of the seed
        // and the caller's draw sequence — unchanged under trace replay.
        self.st.lock().next_rand()
    }

    fn sim_point(&self, self_arc: &Arc<dyn ExecutorCore>, cp: CommitPoint) {
        // One commit-point hit: fold it into the coverage/decision
        // fingerprints and let the strategy decide whether to preempt
        // the running process with a bounded virtual delay. Callers hold
        // no locks at annotation sites (see `CommitPoint`), so sleeping
        // here cannot wedge a rival on a real mutex.
        let delay = {
            let mut st = self.st.lock();
            if st.shutting_down {
                return;
            }
            let hit = st.commit_hits;
            st.commit_hits += 1;
            st.coverage_hash = fnv1a_u64(st.coverage_hash, cp.code() as u64);
            st.decision_hash = fnv1a_u64(st.decision_hash, 0xC0 | cp.code() as u64);
            match st.strategy.preempt(cp, hit) {
                None => None,
                Some(t) => {
                    let t = t.max(1);
                    st.preempt_log.push((hit, t));
                    st.decision_hash = fnv1a_u64(st.decision_hash, t);
                    Some(t)
                }
            }
        };
        if let Some(t) = delay {
            self.sleep(self_arc, t);
        }
    }
}

/// A deterministic simulation runtime. Create one, then [`run`](Self::run)
/// a main process; the call returns when the main process finishes and the
/// system is idle.
///
/// # Examples
///
/// ```
/// use alps_runtime::{Priority, SimRuntime, Spawn};
///
/// let sim = SimRuntime::new();
/// let out = sim
///     .run(|rt| {
///         let h = rt.spawn_with(Spawn::new("child"), || 21);
///         h.join().unwrap() * 2
///     })
///     .unwrap();
/// assert_eq!(out, 42);
/// ```
///
/// Deadlocks are detected instead of hanging:
///
/// ```
/// use alps_runtime::{RuntimeError, SimRuntime};
///
/// let sim = SimRuntime::new();
/// let err = sim.run(|rt| rt.park()).unwrap_err();
/// assert!(matches!(err, RuntimeError::Deadlock { .. }));
/// ```
pub struct SimRuntime {
    rt: Runtime,
    core: Arc<SimCore>,
}

impl Default for SimRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRuntime")
            .field("now", &self.core.now())
            .finish()
    }
}

impl SimRuntime {
    /// New simulation with the default [`SchedPolicy::PriorityFifo`].
    pub fn new() -> SimRuntime {
        Self::with_policy(SchedPolicy::PriorityFifo)
    }

    /// New simulation with an explicit scheduling policy.
    pub fn with_policy(policy: SchedPolicy) -> SimRuntime {
        Self::build(policy, None)
    }

    /// New simulation replaying a recorded schedule: picks are
    /// regenerated from the trace's policy (seeded, deterministic) and
    /// commit-point preemptions are applied verbatim from the trace's
    /// list instead of fresh strategy draws. This is the `SIM_TRACE`
    /// replay contract — a minimized trace reproduces its failure on
    /// first replay.
    pub fn with_trace(spec: &TraceSpec) -> SimRuntime {
        Self::build(spec.policy, Some(&spec.preemptions))
    }

    fn build(policy: SchedPolicy, replay: Option<&[(u64, u64)]>) -> SimRuntime {
        let core = Arc::new(SimCore::new(policy, replay));
        *core.self_weak.lock() = Arc::downgrade(&core);
        let dyn_core: Arc<dyn ExecutorCore> = Arc::clone(&core) as Arc<dyn ExecutorCore>;
        SimRuntime {
            rt: Runtime { core: dyn_core },
            core,
        }
    }

    /// A probe onto this simulation's schedule fingerprints, valid even
    /// after [`run`](Self::run) consumes the runtime (grab it first).
    /// The sweep harness reads coverage and the preemption log from it.
    pub fn probe(&self) -> SimProbe {
        SimProbe {
            core: Arc::clone(&self.core),
        }
    }

    /// Handle usable *inside* simulated processes (capture a clone in the
    /// closures you spawn). Do not block on it from the driver thread.
    pub fn handle(&self) -> Runtime {
        self.rt.clone()
    }

    /// Current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Install a [`FaultPlan`]: subsequent
    /// [`fault_point`](Runtime::fault_point) hits consume its rules.
    /// Replaces any previous plan (and its occurrence counters).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.core.faults.lock() = Some(FaultState::new(plan));
        self.core.faults_armed.store(true, Ordering::Relaxed);
    }

    /// Run `main` as the main simulated process to completion.
    ///
    /// Returns `main`'s value once it finishes and no process is runnable.
    /// Daemon processes still parked or sleeping at that point are aborted.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Deadlock`] — main unfinished, nothing runnable,
    ///   no pending virtual timer.
    /// * [`RuntimeError::ProcPanicked`] — the main process panicked.
    pub fn run<R, F>(self, main: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&Runtime) -> R + Send + 'static,
    {
        let rt = self.rt.clone();
        let rt_for_main = self.rt.clone();
        let result: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let mut opts = Spawn::new("main");
        opts.main = true;
        let id = rt.core.spawn(
            &rt.core,
            opts,
            Box::new(move || {
                let r = main(&rt_for_main);
                *slot.lock() = Some(r);
            }),
        );
        // Driver loop: advance virtual time when idle; detect deadlock;
        // finish when main is done and the system drains.
        let main_panicked;
        loop {
            let mut st = self.core.st.lock();
            while !st.idle() {
                self.core.driver_cv.wait(&mut st);
            }
            if st.main_done {
                main_panicked = st.procs.get(&id).map(|p| p.panicked).unwrap_or(false);
                drop(st);
                break;
            }
            // Idle but main unfinished: advance the clock if possible.
            if let Some(&Reverse((wake, _, _))) = st.sleepers.peek() {
                st.clock = st.clock.max(wake);
                while let Some(&Reverse((w, _, pid))) = st.sleepers.peek() {
                    if w > st.clock {
                        break;
                    }
                    st.sleepers.pop();
                    // Sleeping procs and timed-parked procs (park_timeout
                    // leaves them Parked with a timer entry) both wake when
                    // their timer expires; entries whose proc was already
                    // unparked or exited are stale and simply discarded.
                    let alive = st
                        .procs
                        .get(&pid)
                        .map(|p| matches!(p.state, PState::Sleeping | PState::Parked))
                        .unwrap_or(false);
                    if alive {
                        st.make_ready(pid);
                    }
                }
                st.schedule_next();
            } else {
                let parked = st.parked_names();
                drop(st);
                self.core.shutdown();
                self.wait_drained();
                return Err(RuntimeError::Deadlock { parked });
            }
        }
        self.core.shutdown();
        self.wait_drained();
        if main_panicked {
            return Err(RuntimeError::ProcPanicked {
                name: "main".to_string(),
            });
        }
        let r = result.lock().take();
        r.ok_or(RuntimeError::ProcPanicked {
            name: "main".to_string(),
        })
    }

    /// Wait until every simulated thread has exited (post-shutdown), so a
    /// finished run leaks no threads.
    fn wait_drained(&self) {
        let mut st = self.core.st.lock();
        while st.live > 0 {
            self.core.driver_cv.wait(&mut st);
        }
    }
}

/// Read-only view of a simulation's schedule fingerprints, obtained via
/// [`SimRuntime::probe`] *before* the runtime is consumed by
/// [`SimRuntime::run`] and read *after* the run finishes (or panics).
pub struct SimProbe {
    core: Arc<SimCore>,
}

impl std::fmt::Debug for SimProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimProbe")
            .field("decision_hash", &self.decision_hash())
            .field("coverage_hash", &self.coverage_hash())
            .field("commit_points_hit", &self.commit_points_hit())
            .finish()
    }
}

impl SimProbe {
    /// FNV-1a over the full decision trace: every grant (priority,
    /// winner, group size), commit-point event, and preemption delay.
    /// Two runs are byte-identical schedules iff these match.
    pub fn decision_hash(&self) -> u64 {
        self.core.st.lock().decision_hash
    }

    /// FNV-1a over the sequence of commit-point codes only — the
    /// commit-point-*ordering* fingerprint. The number of distinct
    /// values across a sweep is the coverage counter.
    pub fn coverage_hash(&self) -> u64 {
        self.core.st.lock().coverage_hash
    }

    /// Total commit-point hits observed.
    pub fn commit_points_hit(&self) -> u64 {
        self.core.st.lock().commit_hits
    }

    /// Every preemption the strategy took, as `(commit-hit, ticks)` —
    /// the preemption list of a [`TraceSpec`] replaying this run.
    pub fn preemptions(&self) -> Vec<(u64, u64)> {
        self.core.st.lock().preempt_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Priority;
    use crate::Spawn;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_returns_main_value() {
        let sim = SimRuntime::new();
        assert_eq!(sim.run(|_| 5).unwrap(), 5);
    }

    #[test]
    fn spawn_join_inside_sim() {
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let h = rt.spawn(|| 10);
                h.join().unwrap() + 1
            })
            .unwrap();
        assert_eq!(v, 11);
    }

    #[test]
    fn priority_order_is_strict() {
        // Three children at different priorities become ready while main
        // holds the CPU; once main parks, they must run highest-first.
        let sim = SimRuntime::new();
        let order = sim
            .run(|rt| {
                let log = Arc::new(Mutex::new(Vec::new()));
                let mut handles = Vec::new();
                for (name, prio) in [("low", 5), ("high", -5), ("mid", 0)] {
                    let log = Arc::clone(&log);
                    handles.push(
                        rt.spawn_with(Spawn::new(name).prio(Priority(prio)), move || {
                            log.lock().push(name)
                        }),
                    );
                }
                for h in handles {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap();
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn virtual_time_advances_only_as_needed() {
        let sim = SimRuntime::new();
        let (t0, t1) = sim
            .run(|rt| {
                let t0 = rt.now();
                rt.sleep(1_000_000); // one virtual second, instant in wall time
                (t0, rt.now())
            })
            .unwrap();
        assert_eq!(t0, 0);
        assert_eq!(t1, 1_000_000);
    }

    #[test]
    fn sleepers_wake_in_time_order() {
        let sim = SimRuntime::new();
        let order = sim
            .run(|rt| {
                let log = Arc::new(Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for (name, d) in [("c", 30u64), ("a", 10), ("b", 20)] {
                    let log = Arc::clone(&log);
                    let rt2 = rt.clone();
                    hs.push(rt.spawn_with(Spawn::new(name), move || {
                        rt2.sleep(d);
                        log.lock().push(name);
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn deadlock_is_detected_with_names() {
        let sim = SimRuntime::new();
        let err = sim.run(|rt| rt.park()).unwrap_err();
        match err {
            RuntimeError::Deadlock { parked } => assert_eq!(parked, vec!["main".to_string()]),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn daemons_are_aborted_at_end_of_run() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let rt2 = rt.clone();
            rt.spawn_with(Spawn::new("daemon").daemon(true), move || {
                c2.store(1, Ordering::SeqCst);
                rt2.park(); // parks forever; aborted at end of run
                c2.store(2, Ordering::SeqCst); // must never execute
            });
            rt.yield_now(); // let the daemon run to its park
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unpark_before_park_buffers_permit_in_sim() {
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let me = rt.current();
            rt.unpark(me);
            rt.park(); // consumes buffered permit, no block
        })
        .unwrap();
    }

    #[test]
    fn park_unpark_handshake_between_procs() {
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let me = rt.current();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("pinger"), move || {
                    rt2.unpark(me);
                    99
                });
                rt.park();
                h.join().unwrap()
            })
            .unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn yield_round_robins_equal_priority() {
        let sim = SimRuntime::new();
        let log = sim
            .run(|rt| {
                let log = Arc::new(Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for name in ["a", "b"] {
                    let log = Arc::clone(&log);
                    let rt2 = rt.clone();
                    hs.push(rt.spawn_with(Spawn::new(name), move || {
                        for _ in 0..3 {
                            log.lock().push(name);
                            rt2.yield_now();
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap();
        assert_eq!(log, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        fn schedule(seed: u64) -> Vec<&'static str> {
            let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
            sim.run(|rt| {
                let log = Arc::new(Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for name in ["a", "b", "c", "d"] {
                    let log = Arc::clone(&log);
                    hs.push(rt.spawn_with(Spawn::new(name), move || log.lock().push(name)));
                }
                for h in hs {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap()
        }
        assert_eq!(schedule(7), schedule(7));
        // Different seeds usually give different orders; at minimum the
        // same seed must reproduce exactly (asserted above).
        let _ = schedule(8);
    }

    #[test]
    fn park_timeout_wakes_on_timer_without_unpark() {
        let sim = SimRuntime::new();
        let (t0, t1) = sim
            .run(|rt| {
                let t0 = rt.now();
                rt.park_timeout(500); // nobody unparks; timer fires
                (t0, rt.now())
            })
            .unwrap();
        assert_eq!(t0, 0);
        assert_eq!(t1, 500);
    }

    #[test]
    fn park_timeout_returns_early_on_unpark() {
        let sim = SimRuntime::new();
        let t1 = sim
            .run(|rt| {
                let me = rt.current();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("waker"), move || rt2.unpark(me));
                rt.park_timeout(1_000_000);
                h.join().unwrap();
                rt.now()
            })
            .unwrap();
        // The waker runs without any sleep: virtual time never advances.
        assert_eq!(t1, 0);
    }

    #[test]
    fn park_timeout_consumes_buffered_permit() {
        let sim = SimRuntime::new();
        let t1 = sim
            .run(|rt| {
                let me = rt.current();
                rt.unpark(me);
                rt.park_timeout(1_000_000); // permit buffered: no block
                rt.now()
            })
            .unwrap();
        assert_eq!(t1, 0);
    }

    #[test]
    fn fault_plan_delay_and_drop_apply() {
        let sim = SimRuntime::new();
        sim.set_fault_plan(FaultPlan::new().delay("step", 2, 250).drop_at("step", 3));
        let (drops, t) = sim
            .run(|rt| {
                let mut drops = 0;
                for _ in 0..4 {
                    if rt.fault_point("step") {
                        drops += 1;
                    }
                }
                (drops, rt.now())
            })
            .unwrap();
        assert_eq!(drops, 1);
        assert_eq!(t, 250);
    }

    #[test]
    fn fault_plan_panic_fires_with_step_payload() {
        let sim = SimRuntime::new();
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 1));
        let err = sim.run(|rt| rt.fault_point("body")).unwrap_err();
        assert!(matches!(err, RuntimeError::ProcPanicked { .. }));
    }

    #[test]
    fn main_panic_is_reported() {
        let sim = SimRuntime::new();
        let err = sim
            .run(|_| {
                if true {
                    panic!("kaboom");
                }
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ProcPanicked { .. }));
    }

    #[test]
    fn join_propagates_child_panic() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let h = rt.spawn_with(Spawn::new("bad"), || {
                    if true {
                        panic!("x");
                    }
                });
                h.join().unwrap_err().to_string()
            })
            .unwrap();
        assert_eq!(got, "process `bad` panicked");
    }

    #[test]
    fn manager_priority_preempts_at_scheduling_points() {
        // A NORMAL worker repeatedly yields; a MANAGER process made ready
        // must always win the next scheduling point.
        let sim = SimRuntime::new();
        let order = sim
            .run(|rt| {
                let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
                let rt_w = rt.clone();
                let log_w = Arc::clone(&log);
                let rt_m = rt.clone();
                let log_m = Arc::clone(&log);
                let mgr = rt.spawn_with(Spawn::new("mgr").prio(Priority::MANAGER), move || {
                    log_m.lock().push("mgr");
                    let _ = rt_m; // manager exits immediately
                });
                let worker = rt.spawn_with(Spawn::new("worker"), move || {
                    for _ in 0..2 {
                        log_w.lock().push("worker");
                        rt_w.yield_now();
                    }
                });
                mgr.join().unwrap();
                worker.join().unwrap();
                let v = log.lock().clone();
                v
            })
            .unwrap();
        // Manager was ready before the worker and at higher priority: it
        // runs first.
        assert_eq!(order[0], "mgr");
    }
}
