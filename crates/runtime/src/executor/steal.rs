//! Work-stealing shared executor: processes as stackful green tasks on
//! K long-lived OS workers.
//!
//! The threaded executor spends one OS thread per process, so a system of
//! 64 objects — each with a manager loop plus pool workers plus callers —
//! costs hundreds of threads before any work is done. This executor keeps
//! the *exact same* [`ExecutorCore`] contract (buffered-permit park,
//! `park_timeout`, abort-on-shutdown unwinding, lazily registered foreign
//! threads) but multiplexes all spawned processes onto a fixed worker
//! pool:
//!
//! * Every spawned process is a **stackful coroutine** (own 1 MiB lazily
//!   committed stack, callee-saved registers switched in ~20 ns of inline
//!   asm). Because *all* blocking in the object runtime funnels through
//!   `Runtime::park` / `park_timeout` (call-cell reply waits, notifier
//!   waits, pool-worker idling), a park simply suspends the coroutine and
//!   frees the worker — manager loops and `PoolMode::{PerCall,Shared}`
//!   bodies become tasks with no changes to the synchronization protocols.
//! * Scheduling is **work stealing**: each worker owns a LIFO deque
//!   (newest-first for cache locality; `yield_now` re-queues at the cold
//!   end), spawns and wakeups from non-worker threads land in a global
//!   injector, and an idle worker steals *half* of a victim's deque in
//!   one batch so a burst fans out in O(log n) steals. Workers also poll
//!   the injector ahead of their own deque every
//!   [`GLOBAL_POLL_INTERVAL`] dispatches, so injected tasks cannot
//!   starve behind a local deque that never drains.
//! * The idle protocol is spin-then-park with the shared budgets from
//!   [`crate::tuning`]: a worker that finds every queue empty burns
//!   [`tuning::WORKER_IDLE_SPIN_ROUNDS`](crate::tuning::WORKER_IDLE_SPIN_ROUNDS),
//!   registers in an idle list, re-checks (producers enqueue *before*
//!   consulting the list, so the recheck closes the sleep/publish race),
//!   and parks on its own parker. Producers wake at most one worker per
//!   enqueue; a worker that grabs a batch wakes the next worker, so
//!   wakeups cascade only while work remains.
//! * `park_timeout` and `sleep` are served by one timer thread holding a
//!   min-heap of deadlines. Timer wakeups carry the park sequence number
//!   they were armed for and are dropped stale, so an early `unpark`
//!   never lets an old timer interrupt a later park.
//!
//! # Lost-wakeup discipline
//!
//! The racy edge is a task suspending while another thread unparks it.
//! A task that decides to park publishes `PARKING` and switches to the
//! scheduler; **only the scheduler** (now on its own stack, the task's
//! context fully saved) moves `PARKING → PARKED` and then re-checks the
//! permit: `unpark` stores the permit *before* CAS-ing `PARKED →
//! RUNNABLE`, and the scheduler stores `PARKED` *before* re-reading the
//! permit (both SeqCst), so whichever side loses the race still observes
//! the other's write — the task is re-queued exactly once, never lost,
//! and never enqueued while its register state is still being saved.
//!
//! # Divergences from the threaded executor
//!
//! * Dropping the last `Runtime` clone shuts the pool down (aborting
//!   still-parked daemon tasks) and joins the workers; the threaded
//!   executor just leaks its threads. In-repo teardown already parks
//!   orderly, so this only changes leak behaviour.
//! * Spawning after `shutdown` records the process as immediately
//!   panicked instead of running it.
//! * Green stacks are 1 MiB with no guard page; deep recursion in a
//!   spawned process is UB where the threaded executor would fault
//!   cleanly. The object runtime's frames are shallow.
//!
//! x86_64 only (the context switch is hand-written for the System V
//! ABI); `Runtime::thread_pool` falls back to the threaded executor on
//! other targets.

use std::alloc::Layout;
use std::cell::{Cell, UnsafeCell};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use super::{current_for, set_current, ExecutorCore};
use crate::error::{Aborted, RuntimeError};
use crate::process::{ProcId, Spawn, SpinWait};
use crate::tuning;

/// Green-task stack size. Lazily committed (plain `malloc`-class
/// allocation, untouched pages cost address space only).
const STACK_SIZE: usize = 1 << 20;
/// Completed tasks' stacks are recycled through a bounded free list.
const STACK_POOL_CAP: usize = 64;
/// Max tasks pulled from the injector in one grab.
const INJ_BATCH_MAX: usize = 16;
/// Max tasks stolen from a victim in one grab.
const STEAL_BATCH_MAX: usize = 16;
/// Every this-many dispatches a worker polls the global injector before
/// its own deque, so injected tasks cannot starve behind a local deque
/// that never drains (cf. tokio's global-queue interval).
const GLOBAL_POLL_INTERVAL: u64 = 61;
/// Re-arm delay (ticks = µs) when a timer fires inside the instant
/// between a task *deciding* to park and the scheduler publishing
/// `PARKED`. The stale-sequence check bounds the retries.
const TIMER_RETRY_TICKS: u64 = 20;

// ---------------------------------------------------------------------
// Context switch (x86_64 System V)
// ---------------------------------------------------------------------

/// Save the callee-saved state of the current continuation on the
/// current stack, store the resulting stack pointer to `*save`, then
/// resume the continuation whose stack pointer is `load`.
///
/// Frame layout at a saved stack pointer `sp` (low → high):
/// `[sp+0]` mxcsr, `[sp+4]` x87 control word, `[sp+8..56]` r15 r14 r13
/// r12 rbx rbp, `[sp+56]` return address.
///
/// # Safety
///
/// `load` must be a stack pointer previously produced by this function
/// (or by [`prepare_stack`]) and not resumed since.
#[unsafe(naked)]
unsafe extern "C" fn ctx_switch(_save: *mut *mut u8, _load: *mut u8) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First resumption target of a fresh task: [`prepare_stack`] parks the
/// task pointer in (callee-saved) r12, so it survives the switch and
/// becomes `task_entry`'s argument. `task_entry` never returns.
#[unsafe(naked)]
unsafe extern "C" fn task_boot() {
    core::arch::naked_asm!(
        "mov rdi, r12",
        "call {entry}",
        "ud2",
        entry = sym task_entry,
    )
}

/// Body of every green task: run the spawned closure under
/// `catch_unwind` (an [`Aborted`] unwind is orderly shutdown, not a
/// panic), then hand control back to the scheduler for good.
unsafe extern "C" fn task_entry(task: *const Task) -> ! {
    // The `Arc<Task>` in the procs registry (pruned only by `join`) and
    // the scheduler's `current` slot keep `*task` alive for the whole
    // run, including this final switch-out.
    let f = unsafe { (*task).closure.lock().take() }.expect("green task started twice");
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    let panicked = match &outcome {
        Ok(()) => false,
        Err(payload) => !payload.is::<Aborted>(),
    };
    // Drop the panic payload *before* the final switch: the stack is
    // recycled, anything still live on it would leak.
    drop(outcome);
    switch_out(Pending::Done { panicked });
    unreachable!("completed green task was resumed");
}

/// A green stack. Allocated uninitialized so pages commit lazily.
struct Stack {
    ptr: *mut u8,
    layout: Layout,
}

unsafe impl Send for Stack {}

impl Stack {
    fn new() -> Stack {
        let layout = Layout::from_size_align(STACK_SIZE, 16).unwrap();
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "green stack allocation failed");
        Stack { ptr, layout }
    }

    fn top(&self) -> *mut u8 {
        unsafe { self.ptr.add(STACK_SIZE) }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, self.layout) };
    }
}

/// Write a fresh [`ctx_switch`] frame onto `stack` that boots into
/// `task_boot` with `task` in r12 and the ABI-default FP control state,
/// and return the stack pointer to load.
///
/// Alignment: the return-address slot sits at an address ≡ 8 (mod 16),
/// so after `ctx_switch`'s `ret` the stack is 16-aligned at `task_boot`,
/// whose `call` then gives `task_entry` a standard System V entry frame.
unsafe fn prepare_stack(stack: &Stack, task: *const Task) -> *mut u8 {
    let top16 = (stack.top() as usize & !15) as *mut u8;
    let sp = unsafe { top16.sub(64) };
    let words = sp as *mut u64;
    let boot: unsafe extern "C" fn() = task_boot;
    unsafe {
        // [0] fp state: mxcsr 0x1F80 (all exceptions masked), fcw 0x037F.
        words.write(0x1F80_u64 | (0x037F_u64 << 32));
        words.add(1).write(0); // r15
        words.add(2).write(0); // r14
        words.add(3).write(0); // r13
        words.add(4).write(task as u64); // r12 → task_entry arg
        words.add(5).write(0); // rbx
        words.add(6).write(0); // rbp
        words.add(7).write(boot as usize as u64); // return address
    }
    sp
}

// ---------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------

const RUNNING: u8 = 0;
/// Decided to park/sleep; register state still being saved. Transient:
/// only the owning scheduler moves a task out of `PARKING`.
const PARKING: u8 = 1;
const PARKED: u8 = 2;
const SLEEPING: u8 = 3;
const RUNNABLE: u8 = 4;
const DONE: u8 = 5;

struct JoinSt {
    done: bool,
    panicked: bool,
    /// Green tasks parked in `join`; unparked by `finish_task`.
    waiters: Vec<ProcId>,
}

struct Task {
    id: ProcId,
    name: String,
    /// Soft affinity: preferred worker index (mod K) for every enqueue
    /// of this task. The task stays stealable; see [`PoolInner::enqueue`].
    affinity: Option<usize>,
    state: AtomicU8,
    /// Buffered unpark permit, exactly the `std::thread::park` token.
    permit: AtomicBool,
    aborted: AtomicBool,
    /// Bumped on every return from park; timer entries armed for an
    /// older sequence are stale and dropped.
    park_seq: AtomicU64,
    /// Saved stack pointer while suspended. Owned by the running task /
    /// its scheduler, exclusively, per the state machine.
    sp: UnsafeCell<*mut u8>,
    stack: Mutex<Option<Stack>>,
    closure: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    join: Mutex<JoinSt>,
    done_cv: Condvar,
}

unsafe impl Send for Task {}
unsafe impl Sync for Task {}

/// What a task asked the scheduler to do with it when it switched out.
enum Pending {
    None,
    Park,
    Sleep,
    Yield,
    Done { panicked: bool },
}

/// Per-OS-worker scheduler state, reachable from task context via TLS.
struct WorkerCtx {
    /// Pool instance token ([`super::alloc_core_token`]); a task of pool
    /// A calling into a *different* pool must take the foreign path.
    token: usize,
    index: usize,
    /// Saved scheduler continuation while a task runs.
    sched_sp: *mut u8,
    current: Option<Arc<Task>>,
    pending: Pending,
}

thread_local! {
    static WORKER_TLS: Cell<*mut WorkerCtx> = const { Cell::new(std::ptr::null_mut()) };
}

/// TLS accessors are `#[inline(never)]`: a green task migrates between
/// OS threads across a park, and an inlined `%fs`-relative TLS load is
/// exactly the kind of thing LLVM hoists/CSEs across the (opaque to it)
/// context switch. An outlined call re-reads the *current* thread's slot
/// at every use site.
#[inline(never)]
fn worker_ctx() -> *mut WorkerCtx {
    WORKER_TLS.with(|c| c.get())
}

#[inline(never)]
fn set_worker_ctx(p: *mut WorkerCtx) {
    WORKER_TLS.with(|c| c.set(p));
}

/// Suspend the calling green task, handing `pending` to its scheduler.
/// Returns when the task is next resumed — possibly on another worker.
fn switch_out(pending: Pending) {
    let w = worker_ctx();
    assert!(!w.is_null(), "switch_out outside a green task");
    unsafe {
        (*w).pending = pending;
        let sp_slot = (*w)
            .current
            .as_ref()
            .expect("switch_out with no current task")
            .sp
            .get();
        let sched = (*w).sched_sp;
        ctx_switch(sp_slot, sched);
    }
    // Resumed. Do not touch `w` here: the task may now be on a
    // different worker; callers re-read TLS if they need scheduler state.
}

// ---------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------

struct WorkerShared {
    /// LIFO run queue: `pop_back` newest for locality; steals take
    /// `pop_front` oldest. `len` mirrors the deque length so idle checks
    /// and steal scans stay lock-free.
    deque: Mutex<VecDeque<Arc<Task>>>,
    len: AtomicUsize,
    /// Dispatch counter driving the periodic injector poll (only this
    /// worker writes it; atomic because `next_task` takes `&self`).
    ticks: AtomicU64,
    /// Parker: permit + condvar, same shape as a task permit.
    park: Mutex<bool>,
    cv: Condvar,
}

impl WorkerShared {
    fn new() -> WorkerShared {
        WorkerShared {
            deque: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            park: Mutex::new(false),
            cv: Condvar::new(),
        }
    }
}

struct ForeignSt {
    permit: bool,
    aborted: bool,
}

/// Park slot for a lazily registered non-pool thread (identical
/// semantics to the threaded executor's foreign slots: parks never
/// abort-panic).
struct ForeignSlot {
    name: String,
    st: Mutex<ForeignSt>,
    cv: Condvar,
}

#[derive(Clone)]
enum Slot {
    Green(Arc<Task>),
    Foreign(Arc<ForeignSlot>),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Park,
    Sleep,
}

struct TimerEnt {
    at: u64,
    seq: u64,
    id: ProcId,
    kind: TimerKind,
}

// Min-heap by deadline.
impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at)
    }
}

struct PoolInner {
    token: usize,
    next_id: AtomicU64,
    epoch0: Instant,
    shutdown: AtomicBool,
    procs: Mutex<HashMap<ProcId, Slot>>,
    injector: Mutex<VecDeque<Arc<Task>>>,
    inj_len: AtomicUsize,
    workers: Vec<WorkerShared>,
    /// Indices of workers parked (or about to park) on their parker.
    idle: Mutex<Vec<usize>>,
    /// Green tasks spawned and not yet finished; workers exit when this
    /// hits zero after shutdown.
    live_tasks: AtomicUsize,
    timers: Mutex<BinaryHeap<TimerEnt>>,
    timer_cv: Condvar,
    stack_pool: Mutex<Vec<Stack>>,
}

impl PoolInner {
    fn now(&self) -> u64 {
        self.epoch0.elapsed().as_micros() as u64
    }

    fn alloc_id(&self) -> ProcId {
        ProcId(self.next_id.fetch_add(1, SeqCst))
    }

    /// The calling green task, iff the current thread is one of *this*
    /// pool's workers currently running a task.
    fn current_green(&self) -> Option<Arc<Task>> {
        let w = worker_ctx();
        if w.is_null() {
            return None;
        }
        unsafe {
            if (*w).token != self.token {
                return None;
            }
            (*w).current.clone()
        }
    }

    /// Queue a RUNNABLE task. A task with an affinity hint goes to its
    /// preferred worker's deque — from any thread — so a shard's manager
    /// and its entry bodies keep re-meeting the same worker's cache. The
    /// hint is *soft*: the deque is the normal steal target, so an
    /// overloaded preferred worker sheds hinted tasks to idle peers, and
    /// the injector-fairness valve is untouched (hinted tasks never cut
    /// ahead of injected ones). Unhinted tasks keep the old routing:
    /// local deque when enqueued from one of this pool's workers, else
    /// the global injector. Finally wake a sleeping worker — the
    /// preferred one when it is idle, any one otherwise.
    fn enqueue(&self, task: Arc<Task>) {
        let hint = task.affinity.map(|a| a % self.workers.len());
        let w = worker_ctx();
        let local = if !w.is_null() && unsafe { (*w).token } == self.token {
            Some(unsafe { (*w).index })
        } else {
            None
        };
        match hint.or(local) {
            Some(i) => {
                let ws = &self.workers[i];
                let mut d = ws.deque.lock();
                d.push_back(task);
                ws.len.store(d.len(), SeqCst);
            }
            None => {
                let mut inj = self.injector.lock();
                inj.push_back(task);
                self.inj_len.store(inj.len(), SeqCst);
            }
        }
        match hint {
            Some(i) => self.wake_preferring(i),
            None => self.wake_one(),
        }
    }

    /// Wake worker `i` if it is idle, else fall back to [`wake_one`]
    /// (Self::wake_one) so a hinted enqueue still guarantees *some*
    /// worker is awake to run or steal the task.
    fn wake_preferring(&self, i: usize) {
        {
            let mut idle = self.idle.lock();
            if let Some(pos) = idle.iter().rposition(|&x| x == i) {
                idle.remove(pos);
                drop(idle);
                let ws = &self.workers[i];
                let mut p = ws.park.lock();
                *p = true;
                ws.cv.notify_all();
                return;
            }
        }
        self.wake_one();
    }

    fn wake_one(&self) {
        let idx = self.idle.lock().pop();
        if let Some(i) = idx {
            let ws = &self.workers[i];
            let mut p = ws.park.lock();
            *p = true;
            ws.cv.notify_all();
        }
    }

    fn wake_all_workers(&self) {
        self.idle.lock().clear();
        for ws in &self.workers {
            let mut p = ws.park.lock();
            *p = true;
            ws.cv.notify_all();
        }
    }

    fn has_work(&self) -> bool {
        self.inj_len.load(SeqCst) > 0 || self.workers.iter().any(|ws| ws.len.load(SeqCst) > 0)
    }

    /// Find the next task for worker `i`: own deque (LIFO), then an
    /// injector batch, then steal-half from a victim. Never holds two
    /// deque locks at once (steals copy out, unlock, then re-queue).
    fn next_task(&self, i: usize) -> Option<Arc<Task>> {
        // Fairness valve: every GLOBAL_POLL_INTERVAL dispatches, look at
        // the injector *before* the local deque. Without it a worker
        // whose deque never drains (e.g. green tasks in a yield loop)
        // never returns to the injector, and — since the wake cascade's
        // halving grabs can leave a task behind — an injected task can
        // starve forever while every worker stays busy.
        let tick = self.workers[i].ticks.fetch_add(1, SeqCst);
        if tick.is_multiple_of(GLOBAL_POLL_INTERVAL) {
            let mut inj = self.injector.lock();
            if let Some(t) = inj.pop_front() {
                self.inj_len.store(inj.len(), SeqCst);
                return Some(t);
            }
        }
        {
            let ws = &self.workers[i];
            let mut d = ws.deque.lock();
            if let Some(t) = d.pop_back() {
                ws.len.store(d.len(), SeqCst);
                return Some(t);
            }
        }
        // Injector: take half of what's queued (≥1, capped), FIFO.
        let mut grabbed: Vec<Arc<Task>> = Vec::new();
        let mut more_elsewhere = false;
        {
            let mut inj = self.injector.lock();
            if !inj.is_empty() {
                let take = inj.len().div_ceil(2).min(INJ_BATCH_MAX);
                grabbed.extend(inj.drain(..take));
                self.inj_len.store(inj.len(), SeqCst);
                more_elsewhere = !inj.is_empty();
            }
        }
        if grabbed.is_empty() {
            // Steal half of the first non-empty victim's deque, oldest
            // first (the victim keeps its hot newest entries).
            for off in 1..self.workers.len() {
                let v = (i + off) % self.workers.len();
                let ws = &self.workers[v];
                if ws.len.load(SeqCst) == 0 {
                    continue;
                }
                let mut d = ws.deque.lock();
                let take = d.len().div_ceil(2).min(STEAL_BATCH_MAX);
                grabbed.extend(d.drain(..take));
                ws.len.store(d.len(), SeqCst);
                more_elsewhere = !d.is_empty();
                drop(d);
                if !grabbed.is_empty() {
                    break;
                }
            }
        }
        let first = grabbed.pop()?; // newest of the batch runs first
        if !grabbed.is_empty() {
            let ws = &self.workers[i];
            let mut d = ws.deque.lock();
            for t in grabbed {
                d.push_back(t);
            }
            ws.len.store(d.len(), SeqCst);
            drop(d);
            // We hold a batch; cascade a wakeup so a peer can share it.
            self.wake_one();
        } else if more_elsewhere {
            self.wake_one();
        }
        Some(first)
    }

    /// Resume `task` on worker `w` until it parks, sleeps, yields, or
    /// finishes, then apply the state transition it requested. All
    /// `PARKING → *` moves happen here, on the scheduler stack, with the
    /// task's register state fully saved.
    fn run_task(&self, w: *mut WorkerCtx, task: Arc<Task>) {
        task.state.store(RUNNING, SeqCst);
        unsafe {
            (*w).pending = Pending::None;
            (*w).current = Some(Arc::clone(&task));
            let sp = *task.sp.get();
            ctx_switch(std::ptr::addr_of_mut!((*w).sched_sp), sp);
            (*w).current = None;
        }
        let pending = unsafe { std::mem::replace(&mut (*w).pending, Pending::None) };
        match pending {
            Pending::Park => {
                let ok = task
                    .state
                    .compare_exchange(PARKING, PARKED, SeqCst, SeqCst)
                    .is_ok();
                debug_assert!(ok, "parking task moved by someone else");
                // Dekker re-check against a racing unpark/abort: they
                // store permit/aborted before reading the state, we store
                // PARKED before reading permit/aborted — one side must
                // see the other.
                if (task.permit.load(SeqCst) || task.aborted.load(SeqCst))
                    && task
                        .state
                        .compare_exchange(PARKED, RUNNABLE, SeqCst, SeqCst)
                        .is_ok()
                {
                    self.enqueue(task);
                }
            }
            Pending::Sleep => {
                let ok = task
                    .state
                    .compare_exchange(PARKING, SLEEPING, SeqCst, SeqCst)
                    .is_ok();
                debug_assert!(ok, "sleeping task moved by someone else");
                // Same re-check for a shutdown that raced the suspension.
                if task.aborted.load(SeqCst)
                    && task
                        .state
                        .compare_exchange(SLEEPING, RUNNABLE, SeqCst, SeqCst)
                        .is_ok()
                {
                    self.enqueue(task);
                }
            }
            Pending::Yield => {
                task.state.store(RUNNABLE, SeqCst);
                // Cold end of the LIFO deque: everything else local runs
                // before the yielder comes around again.
                let ws = &self.workers[unsafe { (*w).index }];
                let mut d = ws.deque.lock();
                d.push_front(task);
                ws.len.store(d.len(), SeqCst);
            }
            Pending::Done { panicked } => self.finish_task(&task, panicked),
            Pending::None => unreachable!("green task switched out with no pending request"),
        }
    }

    fn finish_task(&self, task: &Arc<Task>, panicked: bool) {
        task.state.store(DONE, SeqCst);
        if let Some(stack) = task.stack.lock().take() {
            let mut pool = self.stack_pool.lock();
            if pool.len() < STACK_POOL_CAP {
                pool.push(stack);
            }
        }
        let waiters = {
            let mut j = task.join.lock();
            j.done = true;
            j.panicked = panicked;
            std::mem::take(&mut j.waiters)
        };
        task.done_cv.notify_all();
        for wid in waiters {
            self.unpark_id(wid);
        }
        let prev = self.live_tasks.fetch_sub(1, SeqCst);
        if prev == 1 && self.shutdown.load(SeqCst) {
            // Last task after shutdown: release workers waiting to exit.
            self.wake_all_workers();
            let _g = self.timers.lock();
            self.timer_cv.notify_all();
        }
    }

    fn unpark_id(&self, id: ProcId) {
        let slot = self.procs.lock().get(&id).cloned();
        match slot {
            Some(Slot::Green(t)) => {
                t.permit.store(true, SeqCst);
                if t.state
                    .compare_exchange(PARKED, RUNNABLE, SeqCst, SeqCst)
                    .is_ok()
                {
                    self.enqueue(t);
                }
                // SLEEPING: the permit is buffered for the next park;
                // sleeps are woken only by their timer (or shutdown).
            }
            Some(Slot::Foreign(s)) => {
                let mut st = s.st.lock();
                st.permit = true;
                s.cv.notify_all();
            }
            None => {}
        }
    }

    fn register_timer(&self, ent: TimerEnt) {
        let mut timers = self.timers.lock();
        let new_front = timers.peek().is_none_or(|top| ent.at < top.at);
        timers.push(ent);
        if new_front {
            self.timer_cv.notify_all();
        }
    }

    fn fire_timer(&self, ent: TimerEnt) {
        let slot = self.procs.lock().get(&ent.id).cloned();
        let Some(Slot::Green(t)) = slot else { return };
        match ent.kind {
            TimerKind::Park => {
                if t.park_seq.load(SeqCst) != ent.seq {
                    return; // that park already returned
                }
                match t.state.compare_exchange(PARKED, RUNNABLE, SeqCst, SeqCst) {
                    Ok(_) => self.enqueue(t),
                    // Fired inside the decide-to-park window (timer armed
                    // before the PARKING publish): try again shortly.
                    Err(RUNNING) | Err(PARKING) => self.register_timer(TimerEnt {
                        at: self.now() + TIMER_RETRY_TICKS,
                        ..ent
                    }),
                    Err(_) => {} // already awake (unparked) or done
                }
            }
            TimerKind::Sleep => {
                match t.state.compare_exchange(SLEEPING, RUNNABLE, SeqCst, SeqCst) {
                    Ok(_) => self.enqueue(t),
                    Err(RUNNING) | Err(PARKING) => self.register_timer(TimerEnt {
                        at: self.now() + TIMER_RETRY_TICKS,
                        ..ent
                    }),
                    Err(_) => {} // woken by shutdown, or done
                }
            }
        }
    }

    // --- green-task blocking primitives -------------------------------

    fn green_park(&self, t: &Arc<Task>) {
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
        if t.permit.swap(false, SeqCst) {
            return;
        }
        t.state.store(PARKING, SeqCst);
        switch_out(Pending::Park);
        t.park_seq.fetch_add(1, SeqCst);
        t.permit.store(false, SeqCst);
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
    }

    fn green_park_timeout(&self, t: &Arc<Task>, ticks: u64) {
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
        if t.permit.swap(false, SeqCst) {
            return;
        }
        if ticks == 0 {
            // Pure scheduling point, mirroring the threaded executor's
            // zero-duration wait.
            switch_out(Pending::Yield);
            t.permit.store(false, SeqCst);
            if t.aborted.load(SeqCst) {
                std::panic::panic_any(Aborted);
            }
            return;
        }
        let seq = t.park_seq.load(SeqCst);
        self.register_timer(TimerEnt {
            at: self.now().saturating_add(ticks),
            seq,
            id: t.id,
            kind: TimerKind::Park,
        });
        t.state.store(PARKING, SeqCst);
        switch_out(Pending::Park);
        t.park_seq.fetch_add(1, SeqCst);
        t.permit.store(false, SeqCst);
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
    }

    fn green_sleep(&self, t: &Arc<Task>, ticks: u64) {
        if self.shutdown.load(SeqCst) || t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
        self.register_timer(TimerEnt {
            at: self.now().saturating_add(ticks),
            seq: t.park_seq.load(SeqCst),
            id: t.id,
            kind: TimerKind::Sleep,
        });
        t.state.store(PARKING, SeqCst);
        switch_out(Pending::Sleep);
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
    }

    fn green_yield(&self, t: &Arc<Task>) {
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
        switch_out(Pending::Yield);
        if t.aborted.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
    }

    // --- worker / timer threads ---------------------------------------

    fn idle_wait(&self, i: usize) {
        let mut sw = SpinWait::new(tuning::WORKER_IDLE_SPIN_ROUNDS);
        while sw.spin() {
            if self.has_work() {
                return;
            }
        }
        if self.has_work() {
            return;
        }
        self.idle.lock().push(i);
        // Producers enqueue before popping the idle list, so this
        // re-check observes anything published before we registered.
        if self.has_work() {
            self.withdraw_idle(i);
            return;
        }
        let ws = &self.workers[i];
        let mut p = ws.park.lock();
        loop {
            if *p {
                *p = false;
                break;
            }
            if self.shutdown.load(SeqCst) {
                // Post-shutdown the exit condition (live_tasks == 0) is
                // not tied to a queue publish; poll it.
                let _ = ws.cv.wait_for(&mut p, Duration::from_millis(1));
                *p = false;
                break;
            }
            ws.cv.wait(&mut p);
        }
        drop(p);
        self.withdraw_idle(i);
    }

    fn withdraw_idle(&self, i: usize) {
        let mut idle = self.idle.lock();
        if let Some(pos) = idle.iter().rposition(|&x| x == i) {
            idle.remove(pos);
        }
    }
}

// Raw pointers in `Task`/`Stack` fields; safety is argued at each field.
unsafe impl Send for PoolInner {}
unsafe impl Sync for PoolInner {}

fn worker_main(pool: Arc<PoolInner>, index: usize) {
    let mut ctx = Box::new(WorkerCtx {
        token: pool.token,
        index,
        sched_sp: std::ptr::null_mut(),
        current: None,
        pending: Pending::None,
    });
    let ctx_ptr: *mut WorkerCtx = &mut *ctx;
    set_worker_ctx(ctx_ptr);
    loop {
        if pool.shutdown.load(SeqCst) && pool.live_tasks.load(SeqCst) == 0 {
            break;
        }
        if let Some(t) = pool.next_task(index) {
            pool.run_task(ctx_ptr, t);
            continue;
        }
        pool.idle_wait(index);
    }
    set_worker_ctx(std::ptr::null_mut());
}

fn timer_main(pool: Arc<PoolInner>) {
    loop {
        let mut due: Vec<TimerEnt> = Vec::new();
        {
            let mut timers = pool.timers.lock();
            if pool.shutdown.load(SeqCst) {
                return;
            }
            let now = pool.now();
            let mut next_at = None;
            while let Some(top) = timers.peek() {
                if top.at <= now {
                    due.push(timers.pop().unwrap());
                } else {
                    next_at = Some(top.at);
                    break;
                }
            }
            if due.is_empty() {
                match next_at {
                    Some(at) => {
                        let _ = pool
                            .timer_cv
                            .wait_for(&mut timers, Duration::from_micros(at - now));
                    }
                    None => pool.timer_cv.wait(&mut timers),
                }
                continue;
            }
        }
        for ent in due {
            pool.fire_timer(ent);
        }
    }
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

pub(crate) struct StealCore {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl StealCore {
    pub(crate) fn new(workers: usize) -> StealCore {
        crate::error::silence_abort_panics();
        let k = workers.max(1);
        let inner = Arc::new(PoolInner {
            token: super::alloc_core_token(),
            next_id: AtomicU64::new(1),
            epoch0: Instant::now(),
            shutdown: AtomicBool::new(false),
            procs: Mutex::new(HashMap::new()),
            injector: Mutex::new(VecDeque::new()),
            inj_len: AtomicUsize::new(0),
            workers: (0..k).map(|_| WorkerShared::new()).collect(),
            idle: Mutex::new(Vec::new()),
            live_tasks: AtomicUsize::new(0),
            timers: Mutex::new(BinaryHeap::new()),
            timer_cv: Condvar::new(),
            stack_pool: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(k + 1);
        for i in 0..k {
            let p = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("alps-steal-{i}"))
                    .spawn(move || worker_main(p, i))
                    .expect("failed to spawn steal worker"),
            );
        }
        let p = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name("alps-steal-timer".to_string())
                .spawn(move || timer_main(p))
                .expect("failed to spawn timer thread"),
        );
        StealCore {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// Slot of the calling non-pool thread, registering it lazily
    /// (threaded-executor semantics).
    fn foreign_slot(&self) -> (ProcId, Arc<ForeignSlot>) {
        if let Some(id) = current_for(self.inner.token) {
            if let Some(Slot::Foreign(s)) = self.inner.procs.lock().get(&id).cloned() {
                return (id, s);
            }
        }
        let id = self.inner.alloc_id();
        let slot = Arc::new(ForeignSlot {
            name: format!("foreign-{}", id.as_u64()),
            st: Mutex::new(ForeignSt {
                permit: false,
                aborted: false,
            }),
            cv: Condvar::new(),
        });
        self.inner
            .procs
            .lock()
            .insert(id, Slot::Foreign(Arc::clone(&slot)));
        set_current(self.inner.token, id);
        (id, slot)
    }

    fn shutdown_impl(&self) {
        self.inner.shutdown.store(true, SeqCst);
        let slots: Vec<Slot> = self.inner.procs.lock().values().cloned().collect();
        for slot in slots {
            match slot {
                Slot::Green(t) => {
                    t.aborted.store(true, SeqCst);
                    t.permit.store(true, SeqCst);
                    // Requeue suspended tasks so they resume and unwind.
                    // A task caught in PARKING is requeued by its
                    // scheduler's post-switch abort re-check.
                    if t.state
                        .compare_exchange(PARKED, RUNNABLE, SeqCst, SeqCst)
                        .is_ok()
                        || t.state
                            .compare_exchange(SLEEPING, RUNNABLE, SeqCst, SeqCst)
                            .is_ok()
                    {
                        self.inner.enqueue(t);
                    }
                }
                Slot::Foreign(s) => {
                    let mut st = s.st.lock();
                    st.aborted = true;
                    st.permit = true;
                    s.cv.notify_all();
                }
            }
        }
        self.inner.wake_all_workers();
        let _g = self.inner.timers.lock();
        self.inner.timer_cv.notify_all();
    }
}

impl Drop for StealCore {
    fn drop(&mut self) {
        self.shutdown_impl();
        let handles = std::mem::take(&mut *self.handles.lock());
        let w = worker_ctx();
        let on_pool_thread = !w.is_null() && unsafe { (*w).token } == self.inner.token;
        if on_pool_thread {
            // The last Runtime clone was dropped from inside a green
            // task. Joining would deadlock — this very task keeps
            // live_tasks above zero. Detach: shutdown is signalled, the
            // workers exit once the remaining tasks unwind.
            for h in handles {
                drop(h);
            }
        } else {
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl ExecutorCore for StealCore {
    fn spawn(
        &self,
        _self_arc: &Arc<dyn ExecutorCore>,
        opts: Spawn,
        f: Box<dyn FnOnce() + Send>,
    ) -> ProcId {
        let id = self.inner.alloc_id();
        let task = Arc::new(Task {
            id,
            name: opts.name.clone(),
            affinity: opts.affinity,
            state: AtomicU8::new(RUNNABLE),
            permit: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            park_seq: AtomicU64::new(0),
            sp: UnsafeCell::new(std::ptr::null_mut()),
            stack: Mutex::new(None),
            closure: Mutex::new(Some(f)),
            join: Mutex::new(JoinSt {
                done: false,
                panicked: false,
                waiters: Vec::new(),
            }),
            done_cv: Condvar::new(),
        });
        self.inner
            .procs
            .lock()
            .insert(id, Slot::Green(Arc::clone(&task)));
        if self.inner.shutdown.load(SeqCst) {
            // Post-shutdown spawn: record as immediately panicked.
            task.state.store(DONE, SeqCst);
            let mut j = task.join.lock();
            j.done = true;
            j.panicked = true;
            drop(j);
            task.done_cv.notify_all();
            return id;
        }
        let stack = self
            .inner
            .stack_pool
            .lock()
            .pop()
            .unwrap_or_else(Stack::new);
        unsafe {
            *task.sp.get() = prepare_stack(&stack, Arc::as_ptr(&task));
        }
        *task.stack.lock() = Some(stack);
        self.inner.live_tasks.fetch_add(1, SeqCst);
        self.inner.enqueue(task);
        id
    }

    fn current(&self, _self_arc: &Arc<dyn ExecutorCore>) -> ProcId {
        if let Some(t) = self.inner.current_green() {
            return t.id;
        }
        self.foreign_slot().0
    }

    fn park(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        if let Some(t) = self.inner.current_green() {
            self.inner.green_park(&t);
            return;
        }
        let (_, slot) = self.foreign_slot();
        let mut st = slot.st.lock();
        if st.permit {
            st.permit = false;
            return;
        }
        slot.cv.wait(&mut st);
        st.permit = false;
    }

    fn park_timeout(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        if let Some(t) = self.inner.current_green() {
            self.inner.green_park_timeout(&t, ticks);
            return;
        }
        let (_, slot) = self.foreign_slot();
        let mut st = slot.st.lock();
        if st.permit {
            st.permit = false;
            return;
        }
        let _ = slot.cv.wait_for(&mut st, Duration::from_micros(ticks));
        st.permit = false;
    }

    fn unpark(&self, id: ProcId) {
        self.inner.unpark_id(id);
    }

    fn yield_now(&self, _self_arc: &Arc<dyn ExecutorCore>) {
        if let Some(t) = self.inner.current_green() {
            self.inner.green_yield(&t);
            return;
        }
        std::thread::yield_now();
    }

    fn sleep(&self, _self_arc: &Arc<dyn ExecutorCore>, ticks: u64) {
        if let Some(t) = self.inner.current_green() {
            self.inner.green_sleep(&t, ticks);
            return;
        }
        if self.inner.shutdown.load(SeqCst) {
            std::panic::panic_any(Aborted);
        }
        std::thread::sleep(Duration::from_micros(ticks));
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn join(&self, _self_arc: &Arc<dyn ExecutorCore>, id: ProcId) -> Result<(), RuntimeError> {
        let slot = self.inner.procs.lock().get(&id).cloned();
        let Some(slot) = slot else {
            return Ok(()); // already exited and pruned
        };
        let t = match slot {
            Slot::Green(t) => t,
            Slot::Foreign(_) => return Ok(()), // foreign threads are not joinable
        };
        if let Some(me) = self.inner.current_green() {
            loop {
                {
                    let mut j = t.join.lock();
                    if j.done {
                        break;
                    }
                    if !j.waiters.contains(&me.id) {
                        j.waiters.push(me.id);
                    }
                }
                self.inner.green_park(&me);
            }
        } else {
            let mut j = t.join.lock();
            while !j.done {
                t.done_cv.wait(&mut j);
            }
        }
        self.inner.procs.lock().remove(&id);
        let j = t.join.lock();
        if j.panicked {
            Err(RuntimeError::ProcPanicked {
                name: t.name.clone(),
            })
        } else {
            Ok(())
        }
    }

    fn shutdown(&self) {
        self.shutdown_impl();
    }

    fn is_sim(&self) -> bool {
        false
    }

    fn proc_name(&self, id: ProcId) -> Option<String> {
        match self.inner.procs.lock().get(&id) {
            Some(Slot::Green(t)) => Some(t.name.clone()),
            Some(Slot::Foreign(s)) => Some(s.name.clone()),
            None => None,
        }
    }

    fn os_threads(&self) -> Option<u64> {
        // K workers + 1 timer thread, fixed for the pool's lifetime.
        Some(self.inner.workers.len() as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use crate::process::Priority;
    use crate::{Runtime, Spawn};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn pool(k: usize) -> Runtime {
        Runtime::thread_pool(k)
    }

    #[test]
    fn spawn_and_join_returns_value() {
        let rt = pool(2);
        let h = rt.spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn join_reports_panic() {
        let rt = pool(2);
        let h = rt.spawn_with(Spawn::new("boom"), || {
            if true {
                panic!("bang");
            }
        });
        let err = h.join().unwrap_err();
        assert_eq!(err.to_string(), "process `boom` panicked");
    }

    #[test]
    fn unpark_before_park_buffers_permit() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let me = rt2.current();
            rt2.unpark(me); // self-permit
            rt2.park(); // must not block
            42
        });
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn park_blocks_until_unpark() {
        let rt = pool(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let (rt2, flag2) = (rt.clone(), Arc::clone(&flag));
        let h = rt.spawn(move || {
            flag2.store(1, Ordering::SeqCst);
            rt2.park();
            flag2.store(2, Ordering::SeqCst);
        });
        let id = h.id();
        while flag.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        rt.unpark(id);
        h.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn green_park_timeout_expires_without_unpark() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let t0 = std::time::Instant::now();
            rt2.park_timeout(5_000); // 5 ms, nobody unparks
            t0.elapsed()
        });
        assert!(h.join().unwrap() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn foreign_park_timeout_expires_without_unpark() {
        let rt = pool(2);
        let t0 = std::time::Instant::now();
        rt.park_timeout(5_000); // foreign (test) thread
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn park_timeout_consumes_buffered_permit_immediately() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let me = rt2.current();
            rt2.unpark(me);
            let t0 = std::time::Instant::now();
            rt2.park_timeout(5_000_000); // must not block: permit buffered
            t0.elapsed() < std::time::Duration::from_secs(1)
        });
        assert!(h.join().unwrap());
    }

    #[test]
    fn stale_timer_does_not_wake_a_later_park() {
        let rt = pool(1);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let me = rt2.current();
            // Arm a 50 ms timeout but get unparked immediately…
            rt2.unpark(me);
            rt2.park_timeout(50_000);
            // …then park without a timeout. The stale timer must not
            // end this park; the explicit unparker does, much later.
            let t0 = std::time::Instant::now();
            rt2.park();
            t0.elapsed()
        });
        let id = h.id();
        std::thread::sleep(std::time::Duration::from_millis(120));
        rt.unpark(id);
        // The second park must have lasted until our unpark (~120 ms),
        // not ended by the 50 ms timer armed for the first park.
        assert!(h.join().unwrap() >= std::time::Duration::from_millis(100));
    }

    #[test]
    fn foreign_thread_can_park_and_be_unparked() {
        let rt = pool(2);
        let me = rt.current(); // registers the test thread
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            rt2.unpark(me);
        });
        rt.park();
        h.join().unwrap();
    }

    #[test]
    fn now_is_monotonic_and_green_sleep_advances_it() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let t0 = rt2.now();
            rt2.sleep(2_000);
            let t1 = rt2.now();
            (t0, t1)
        });
        let (t0, t1) = h.join().unwrap();
        assert!(t1 >= t0 + 1_000, "t0={t0} t1={t1}");
    }

    #[test]
    fn proc_name_resolves_while_alive() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn_with(Spawn::new("worker"), move || {
            let me = rt2.current();
            rt2.proc_name(me)
        });
        assert_eq!(h.join().unwrap().as_deref(), Some("worker"));
    }

    #[test]
    fn green_task_can_spawn_and_join() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let inner = rt2.spawn(|| 5);
            inner.join().unwrap() + 1
        });
        assert_eq!(h.join().unwrap(), 6);
    }

    #[test]
    fn priorities_are_advisory_metadata() {
        let rt = pool(2);
        let h = rt.spawn_with(Spawn::new("m").prio(Priority::MANAGER).daemon(true), || 1);
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn many_tasks_on_few_workers() {
        // 200 interdependent tasks on 2 workers: a thread-per-process
        // design would need 200 threads; here parks free the workers.
        let rt = pool(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..200)
            .map(|_| {
                let (rt2, c) = (rt.clone(), Arc::clone(&counter));
                rt.spawn(move || {
                    let inner = rt2.spawn(|| 1usize);
                    c.fetch_add(inner.join().unwrap(), Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(rt.os_threads(), Some(3)); // 2 workers + timer
    }

    #[test]
    fn unpark_ping_pong_across_tasks() {
        // Two tasks alternate strict turns via park/unpark 2000 times;
        // exercises the PARKING→PARKED handshake and task migration.
        let rt = pool(2);
        let ctr = Arc::new(AtomicUsize::new(0));
        let a_id = Arc::new(AtomicUsize::new(0));
        let b_id = Arc::new(AtomicUsize::new(0));
        let turns = 1000usize;
        let mk = |my_id: Arc<AtomicUsize>, peer_id: Arc<AtomicUsize>, parity: usize| {
            let (rt2, ctr2) = (rt.clone(), Arc::clone(&ctr));
            rt.spawn(move || {
                my_id.store(rt2.current().as_u64() as usize, Ordering::SeqCst);
                for k in 0..turns {
                    let my_turn = 2 * k + parity;
                    while ctr2.load(Ordering::SeqCst) != my_turn {
                        rt2.park();
                    }
                    ctr2.store(my_turn + 1, Ordering::SeqCst);
                    loop {
                        let peer = peer_id.load(Ordering::SeqCst);
                        if peer != 0 {
                            rt2.unpark(crate::process::ProcId(peer as u64));
                            break;
                        }
                        rt2.yield_now();
                    }
                }
            })
        };
        let a = mk(Arc::clone(&a_id), Arc::clone(&b_id), 0);
        let b = mk(b_id, a_id, 1);
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(ctr.load(Ordering::SeqCst), 2 * turns);
    }

    #[test]
    fn shutdown_aborts_parked_tasks() {
        let rt = pool(2);
        let parked = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let (rt2, p) = (rt.clone(), Arc::clone(&parked));
                rt.spawn(move || {
                    p.fetch_add(1, Ordering::SeqCst);
                    loop {
                        rt2.park(); // aborts with Aborted on shutdown
                    }
                })
            })
            .collect();
        while parked.load(Ordering::SeqCst) < 8 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        rt.shutdown();
        for h in hs {
            // Aborted unwinds count as panicked joins, like the
            // threaded executor.
            assert!(h.join().is_err());
        }
    }

    #[test]
    fn shutdown_wakes_green_sleepers() {
        let rt = pool(2);
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            rt2.sleep(60_000_000); // 60 s; shutdown must interrupt
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let t0 = std::time::Instant::now();
        rt.shutdown();
        assert!(h.join().is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn spawn_after_shutdown_is_immediately_panicked() {
        let rt = pool(1);
        rt.shutdown();
        let h = rt.spawn(|| 3);
        assert!(h.join().is_err());
    }

    #[test]
    fn affinity_hint_is_soft_tasks_are_stolen_from_a_busy_worker() {
        use std::sync::atomic::AtomicBool;
        let rt = pool(2);
        // Occupy worker 0 with a spinner that never switches out, then
        // hint 8 short tasks at the same worker. If the hint were hard
        // pinning they would wait behind the spinner forever; the soft
        // hint leaves them in worker 0's deque where worker 1 steals
        // them.
        let hold = Arc::new(AtomicBool::new(true));
        let h2 = Arc::clone(&hold);
        let hog = rt.spawn_with(crate::Spawn::new("hog").affinity(0), move || {
            while h2.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
        let done = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&done);
                rt.spawn_with(crate::Spawn::new("hinted").affinity(0), move || {
                    d.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 8 {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(10),
                "hinted tasks starved behind busy preferred worker"
            );
            std::thread::yield_now();
        }
        hold.store(false, Ordering::SeqCst);
        hog.join().unwrap();
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn os_thread_count_is_bounded_by_pool_size() {
        let rt = pool(4);
        assert_eq!(rt.os_threads(), Some(5));
        let hs: Vec<_> = (0..64).map(|_| rt.spawn(|| ())).collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(rt.os_threads(), Some(5));
    }
}
