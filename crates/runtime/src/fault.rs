//! Deterministic fault injection at named protocol steps.
//!
//! A [`FaultPlan`] is a list of rules, each targeting the *nth* hit of a
//! named step (`"intake_push"`, `"drain"`, `"body"`, ...). Instrumented
//! code calls [`Runtime::fault_point`](crate::Runtime::fault_point) at
//! each step; the runtime counts occurrences and fires the matching rule
//! exactly once. Plans are installed on a simulation runtime via
//! [`SimRuntime::set_fault_plan`](crate::SimRuntime::set_fault_plan), so a
//! seeded schedule plus a plan reproduces a failure bit-for-bit. On a
//! runtime with no plan installed (including every threaded runtime) the
//! hook is a constant `None` and the step runs normally.

use std::collections::HashMap;

/// What happens when a fault rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this many virtual ticks at the step, perturbing the schedule.
    Delay(u64),
    /// Panic at the step with payload `"injected fault: <step>"`. At the
    /// `"body"` step this emulates an entry-body panic (the protocol
    /// catches it and reports `BodyFailed`).
    Panic,
    /// Tell the instrumented site to drop the operation (e.g. a call
    /// submission or a drained cell is silently lost). Callers recover
    /// via deadlines; without one the simulation reports a deadlock.
    Drop,
}

#[derive(Debug, Clone)]
struct Rule {
    step: String,
    /// 1-based occurrence of `step` at which the rule fires.
    nth: u64,
    action: FaultAction,
}

/// An ordered set of fault rules, built fluently and installed on a
/// [`SimRuntime`](crate::SimRuntime).
///
/// # Examples
///
/// ```
/// use alps_runtime::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .delay("drain", 1, 500) // 1st drain pauses 500 ticks
///     .panic_at("body", 2); // 2nd body run panics
/// let _ = plan;
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Empty plan: no faults fire.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Delay the `nth` (1-based) hit of `step` by `ticks`.
    pub fn delay(mut self, step: &str, nth: u64, ticks: u64) -> FaultPlan {
        self.rules.push(Rule {
            step: step.to_string(),
            nth,
            action: FaultAction::Delay(ticks),
        });
        self
    }

    /// Panic at the `nth` (1-based) hit of `step`.
    pub fn panic_at(mut self, step: &str, nth: u64) -> FaultPlan {
        self.rules.push(Rule {
            step: step.to_string(),
            nth,
            action: FaultAction::Panic,
        });
        self
    }

    /// Drop the operation at the `nth` (1-based) hit of `step`.
    pub fn drop_at(mut self, step: &str, nth: u64) -> FaultPlan {
        self.rules.push(Rule {
            step: step.to_string(),
            nth,
            action: FaultAction::Drop,
        });
        self
    }

    /// Make the `nth` (1-based) supervised restart *fail*: the object
    /// stays permanently poisoned instead of coming back, as if the
    /// rebuild itself died. Shorthand for `drop_at("restart", nth)` — the
    /// supervision layer consults the `"restart"` step at the top of
    /// every restart attempt (a `delay` rule there perturbs the restart
    /// window instead).
    pub fn fail_restart(self, nth: u64) -> FaultPlan {
        self.drop_at("restart", nth)
    }
}

/// Installed plan plus per-step hit counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    rules: Vec<Rule>,
    counts: HashMap<String, u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            rules: plan.rules,
            counts: HashMap::new(),
        }
    }

    /// Count one hit of `step` and return the action of the rule (if any)
    /// armed for exactly this occurrence.
    pub(crate) fn check(&mut self, step: &str) -> Option<FaultAction> {
        let n = self.counts.entry(step.to_string()).or_insert(0);
        *n += 1;
        let hit = *n;
        self.rules
            .iter()
            .find(|r| r.step == step && r.nth == hit)
            .map(|r| r.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_on_exact_occurrence() {
        let mut st = FaultState::new(
            FaultPlan::new()
                .delay("drain", 2, 100)
                .panic_at("body", 1)
                .drop_at("drain", 3),
        );
        assert_eq!(st.check("drain"), None);
        assert_eq!(st.check("body"), Some(FaultAction::Panic));
        assert_eq!(st.check("drain"), Some(FaultAction::Delay(100)));
        assert_eq!(st.check("drain"), Some(FaultAction::Drop));
        assert_eq!(st.check("drain"), None);
        assert_eq!(st.check("other"), None);
    }
}
