//! Asynchronous typed point-to-point channels (paper §2.1.2).
//!
//! ALPS channels are asynchronous (`send` buffers and continues), typed,
//! first-class values (they can be stored in data structures, passed as
//! procedure parameters and inside messages), and usable in the guards of
//! `select`/`loop` statements. This module provides `Chan<T>` with exactly
//! those properties:
//!
//! * unbounded by default, optionally bounded (`send` then blocks when
//!   full — a buffering limit, not a rendezvous);
//! * FIFO per channel;
//! * *acceptance-condition* support for guards: a receive guard may scan
//!   the queue for the first message satisfying a predicate, leaving
//!   non-matching messages untouched (SR-style semantics, see paper §2.4);
//! * select integration through [`Notifier`] subscription.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::RuntimeError;
use crate::executor::Runtime;
use crate::notifier::{Notifier, WeakNotifier};
use crate::process::ProcId;

struct ChanSt<T> {
    q: VecDeque<T>,
    recv_waiters: Vec<ProcId>,
    send_waiters: Vec<ProcId>,
    subscribers: Vec<WeakNotifier>,
    closed: bool,
}

struct ChanInner<T> {
    st: Mutex<ChanSt<T>>,
    cap: Option<usize>,
    name: String,
}

/// An asynchronous buffered channel carrying values of type `T`.
///
/// Cloning the handle is cheap; all clones refer to the same queue. The
/// paper requires each channel be used for input *or* output by a given
/// process but the type itself does not enforce directionality (split
/// wrappers [`SendHalf`]/[`RecvHalf`] provide it when wanted).
///
/// # Examples
///
/// ```
/// use alps_runtime::{Chan, Runtime};
///
/// let rt = Runtime::threaded();
/// let c: Chan<i64> = Chan::unbounded("nums");
/// c.send(&rt, 1).unwrap();
/// c.send(&rt, 2).unwrap();
/// assert_eq!(c.recv(&rt).unwrap(), 1);
/// assert_eq!(c.recv(&rt).unwrap(), 2);
/// rt.shutdown();
/// ```
pub struct Chan<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        f.debug_struct("Chan")
            .field("name", &self.inner.name)
            .field("len", &st.q.len())
            .field("cap", &self.inner.cap)
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T: Send + 'static> Chan<T> {
    /// Create an unbounded channel with a debug name.
    pub fn unbounded(name: impl Into<String>) -> Chan<T> {
        Self::with_capacity(name, None)
    }

    /// Create a bounded channel: `send` blocks while `cap` messages are
    /// buffered.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (ALPS channels are asynchronous; a rendezvous
    /// channel would change the language semantics).
    pub fn bounded(name: impl Into<String>, cap: usize) -> Chan<T> {
        assert!(cap > 0, "ALPS channels are buffered; capacity must be > 0");
        Self::with_capacity(name, Some(cap))
    }

    fn with_capacity(name: impl Into<String>, cap: Option<usize>) -> Chan<T> {
        Chan {
            inner: Arc::new(ChanInner {
                st: Mutex::new(ChanSt {
                    q: VecDeque::new(),
                    recv_waiters: Vec::new(),
                    send_waiters: Vec::new(),
                    subscribers: Vec::new(),
                    closed: false,
                }),
                cap,
                name: name.into(),
            }),
        }
    }

    /// The channel's debug name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether two handles refer to the same underlying channel.
    pub fn same(&self, other: &Chan<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A stable identity for the underlying channel (pointer-based).
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.inner.st.lock().q.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.st.lock().closed
    }

    /// Send a message. Buffers and returns immediately on an unbounded
    /// channel; blocks while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is closed.
    pub fn send(&self, rt: &Runtime, v: T) -> Result<(), RuntimeError> {
        let mut v = Some(v);
        loop {
            let (recv_waiters, notify_subs) = {
                let mut st = self.inner.st.lock();
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                if let Some(cap) = self.inner.cap {
                    if st.q.len() >= cap {
                        let me = rt.current();
                        if !st.send_waiters.contains(&me) {
                            st.send_waiters.push(me);
                        }
                        drop(st);
                        rt.park();
                        continue;
                    }
                }
                st.q.push_back(v.take().expect("send loop reuse"));
                let rw = std::mem::take(&mut st.recv_waiters);
                let subs = st.subscribers.clone();
                (rw, subs)
            };
            for w in recv_waiters {
                rt.unpark(w);
            }
            self.fan_out(rt, notify_subs);
            return Ok(());
        }
    }

    /// Send a batch of messages, waking receivers and subscribed selects
    /// **once** for the whole batch rather than once per message. On a
    /// bounded channel the batch honors the capacity: the sender blocks
    /// mid-batch while the buffer is full (messages already enqueued stay
    /// enqueued, and their wakeups are delivered before blocking).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is (or becomes) closed;
    /// messages enqueued before the failure remain in the buffer.
    pub fn send_batch(
        &self,
        rt: &Runtime,
        msgs: impl IntoIterator<Item = T>,
    ) -> Result<(), RuntimeError> {
        let mut pending = msgs.into_iter();
        let mut carry: Option<T> = None;
        loop {
            let (recv_waiters, notify_subs, full) = {
                let mut st = self.inner.st.lock();
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                let mut sent_any = false;
                let mut full = false;
                loop {
                    if let Some(cap) = self.inner.cap {
                        if st.q.len() >= cap {
                            full = true;
                            break;
                        }
                    }
                    match carry.take().or_else(|| pending.next()) {
                        Some(v) => {
                            st.q.push_back(v);
                            sent_any = true;
                        }
                        None => break,
                    }
                }
                if full {
                    // Remember where we stopped and register for a wakeup.
                    carry = carry.take().or_else(|| pending.next());
                    if carry.is_none() {
                        full = false; // iterator exhausted exactly at cap
                    } else {
                        let me = rt.current();
                        if !st.send_waiters.contains(&me) {
                            st.send_waiters.push(me);
                        }
                    }
                }
                if sent_any {
                    (
                        std::mem::take(&mut st.recv_waiters),
                        st.subscribers.clone(),
                        full,
                    )
                } else {
                    (Vec::new(), Vec::new(), full)
                }
            };
            for w in recv_waiters {
                rt.unpark(w);
            }
            self.fan_out(rt, notify_subs);
            if !full {
                return Ok(());
            }
            rt.park();
        }
    }

    /// Receive the oldest message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] once the channel is closed *and* drained.
    pub fn recv(&self, rt: &Runtime) -> Result<T, RuntimeError> {
        loop {
            {
                let mut st = self.inner.st.lock();
                if let Some(v) = st.q.pop_front() {
                    let sw = std::mem::take(&mut st.send_waiters);
                    drop(st);
                    for w in sw {
                        rt.unpark(w);
                    }
                    return Ok(v);
                }
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                let me = rt.current();
                if !st.recv_waiters.contains(&me) {
                    st.recv_waiters.push(me);
                }
            }
            rt.park();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, rt: &Runtime) -> Option<T> {
        let mut st = self.inner.st.lock();
        let v = st.q.pop_front();
        if v.is_some() {
            let sw = std::mem::take(&mut st.send_waiters);
            drop(st);
            for w in sw {
                rt.unpark(w);
            }
        }
        v
    }

    /// Remove and return the first message satisfying `pred`, leaving all
    /// other messages in order. This is the *acceptance condition* receive
    /// used by select guards: if no buffered message satisfies the
    /// condition the guard is simply not eligible.
    pub fn recv_match(&self, rt: &Runtime, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut st = self.inner.st.lock();
        let idx = st.q.iter().position(pred)?;
        let v = st.q.remove(idx);
        let sw = std::mem::take(&mut st.send_waiters);
        drop(st);
        for w in sw {
            rt.unpark(w);
        }
        v
    }

    /// Inspect buffered messages without consuming, returning `f`'s answer
    /// over the queue iterator. Used by guard evaluation to test
    /// eligibility and compute `pri` values.
    pub fn peek_with<R>(&self, f: impl FnOnce(&mut dyn Iterator<Item = &T>) -> R) -> R {
        let st = self.inner.st.lock();
        let mut it = st.q.iter();
        f(&mut it)
    }

    /// Close the channel: future sends fail, receivers drain the buffer
    /// then fail, subscribed selects are woken.
    pub fn close(&self, rt: &Runtime) {
        let (rw, sw, subs) = {
            let mut st = self.inner.st.lock();
            st.closed = true;
            (
                std::mem::take(&mut st.recv_waiters),
                std::mem::take(&mut st.send_waiters),
                st.subscribers.clone(),
            )
        };
        for w in rw.into_iter().chain(sw) {
            rt.unpark(w);
        }
        self.fan_out(rt, subs);
    }

    /// Subscribe a select's notifier: every send (and close) will bump it.
    /// Subscribing the same notifier again is a no-op, so a manager's
    /// select loop may subscribe on every iteration without growth. Dead
    /// subscribers are pruned lazily.
    pub fn subscribe(&self, n: &Notifier) {
        let mut st = self.inner.st.lock();
        let p = n.inner_ptr();
        if st.subscribers.iter().any(|w| w.ptr() == p) {
            return;
        }
        st.subscribers.push(n.downgrade());
    }

    fn fan_out(&self, rt: &Runtime, subs: Vec<WeakNotifier>) {
        let mut any_dead = false;
        for s in &subs {
            if !s.notify(rt) {
                any_dead = true;
            }
        }
        if any_dead {
            let mut st = self.inner.st.lock();
            st.subscribers.retain(|w| w.is_alive());
        }
    }

    /// Directional split: a send-only and a receive-only handle.
    pub fn split(&self) -> (SendHalf<T>, RecvHalf<T>) {
        (
            SendHalf { chan: self.clone() },
            RecvHalf { chan: self.clone() },
        )
    }
}

/// Send-only handle to a [`Chan`] (the paper requires each endpoint use a
/// channel in one direction only).
#[derive(Debug, Clone)]
pub struct SendHalf<T> {
    chan: Chan<T>,
}

impl<T: Send + 'static> SendHalf<T> {
    /// See [`Chan::send`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is closed.
    pub fn send(&self, rt: &Runtime, v: T) -> Result<(), RuntimeError> {
        self.chan.send(rt, v)
    }
}

/// Receive-only handle to a [`Chan`].
#[derive(Debug, Clone)]
pub struct RecvHalf<T> {
    chan: Chan<T>,
}

impl<T: Send + 'static> RecvHalf<T> {
    /// See [`Chan::recv`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] once the channel is closed and drained.
    pub fn recv(&self, rt: &Runtime) -> Result<T, RuntimeError> {
        self.chan.recv(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimRuntime;
    use crate::process::Spawn;

    #[test]
    fn fifo_order_preserved() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        for i in 0..10 {
            c.send(&rt, i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(c.recv(&rt).unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send_sim() {
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let c: Chan<&'static str> = Chan::unbounded("c");
                let c2 = c.clone();
                let rt2 = rt.clone();
                rt.spawn_with(Spawn::new("sender"), move || {
                    rt2.sleep(100);
                    c2.send(&rt2, "hello").unwrap();
                });
                c.recv(rt).unwrap()
            })
            .unwrap();
        assert_eq!(v, "hello");
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let c = Chan::bounded("c", 2);
                let c2 = c.clone();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("sender"), move || {
                    for i in 0..4 {
                        c2.send(&rt2, i).unwrap();
                    }
                    "done"
                });
                rt.yield_now(); // sender fills the buffer and blocks at 2
                assert_eq!(c.len(), 2);
                let mut out = Vec::new();
                for _ in 0..4 {
                    out.push(c.recv(rt).unwrap());
                }
                h.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = Chan::<i32>::bounded("bad", 0);
    }

    #[test]
    fn recv_match_skips_non_matching() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        for i in 1..=5 {
            c.send(&rt, i).unwrap();
        }
        // Take the first even message.
        assert_eq!(c.recv_match(&rt, |m| m % 2 == 0), Some(2));
        // Remaining order intact.
        let rest: Vec<i32> = std::iter::from_fn(|| c.try_recv(&rt)).collect();
        assert_eq!(rest, vec![1, 3, 4, 5]);
    }

    #[test]
    fn recv_match_none_when_no_match() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 1).unwrap();
        assert_eq!(c.recv_match(&rt, |m| *m > 10), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn close_fails_sends_and_drains_receives() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 1).unwrap();
        c.close(&rt);
        assert!(c.is_closed());
        assert_eq!(c.send(&rt, 2), Err(RuntimeError::Shutdown));
        assert_eq!(c.recv(&rt).unwrap(), 1); // drain
        assert_eq!(c.recv(&rt), Err(RuntimeError::Shutdown));
    }

    #[test]
    fn send_batch_delivers_all_with_one_notification() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n = Notifier::new();
        c.subscribe(&n);
        let e0 = n.epoch();
        c.send_batch(&rt, 0..5).unwrap();
        // One epoch bump for the whole batch…
        assert_eq!(n.epoch(), e0 + 1);
        // …and every message delivered in order.
        let got: Vec<i32> = std::iter::from_fn(|| c.try_recv(&rt)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_batch_respects_bounded_capacity_sim() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let c = Chan::bounded("c", 2);
                let c2 = c.clone();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("batcher"), move || {
                    c2.send_batch(&rt2, 0..5).unwrap();
                });
                rt.yield_now(); // batcher fills to capacity and parks
                assert_eq!(c.len(), 2);
                let mut out = Vec::new();
                for _ in 0..5 {
                    out.push(c.recv(rt).unwrap());
                }
                h.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_batch_on_closed_channel_fails() {
        let rt = Runtime::threaded();
        let c: Chan<i32> = Chan::unbounded("c");
        c.close(&rt);
        assert_eq!(c.send_batch(&rt, [1, 2]), Err(RuntimeError::Shutdown));
    }

    #[test]
    fn subscriber_notified_on_send() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n = Notifier::new();
        c.subscribe(&n);
        let e0 = n.epoch();
        c.send(&rt, 5).unwrap();
        assert!(n.epoch() > e0);
    }

    #[test]
    fn channels_are_first_class_values() {
        // A channel of channels, as the paper allows (§2.1.2).
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let meta: Chan<Chan<i32>> = Chan::unbounded("meta");
                let meta2 = meta.clone();
                let rt2 = rt.clone();
                rt.spawn_with(Spawn::new("replier"), move || {
                    let reply = meta2.recv(&rt2).unwrap();
                    reply.send(&rt2, 7).unwrap();
                });
                let reply: Chan<i32> = Chan::unbounded("reply");
                meta.send(rt, reply.clone()).unwrap();
                reply.recv(rt).unwrap()
            })
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn peek_with_observes_without_consuming() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 3).unwrap();
        c.send(&rt, 9).unwrap();
        let max = c.peek_with(|it| it.copied().max());
        assert_eq!(max, Some(9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn split_halves_work() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let (tx, rx) = c.split();
        tx.send(&rt, 1).unwrap();
        assert_eq!(rx.recv(&rt).unwrap(), 1);
    }

    #[test]
    fn threaded_multi_producer_stress() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n_producers = 4;
        let per = 250;
        let mut hs = Vec::new();
        for p in 0..n_producers {
            let c2 = c.clone();
            let rt2 = rt.clone();
            hs.push(rt.spawn(move || {
                for i in 0..per {
                    c2.send(&rt2, p * per + i).unwrap();
                }
            }));
        }
        let mut got = Vec::new();
        for _ in 0..n_producers * per {
            got.push(c.recv(&rt).unwrap());
        }
        for h in hs {
            h.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<i32> = (0..n_producers * per).collect();
        assert_eq!(got, want);
    }
}

/// A bounded lock-free multi-producer ring (Vyukov-style sequence
/// numbers), used as the call-intake queue of the object layer: callers
/// `push` without taking any object lock, the manager drains in batches.
///
/// The distinguishing feature is the return value of [`push`]: `Ok(true)`
/// means this push was the **empty→non-empty transition** as seen from the
/// consumer's current drain position. The producer that observes it owns
/// the duty to wake the consumer; every other producer can skip the
/// notification entirely, which is what makes a drain of N calls cost one
/// wakeup instead of N.
///
/// Wakeup protocol (the consumer side must mirror this):
///
/// 1. producers: claim → write → publish → if `was_empty`, notify;
/// 2. consumer: drain until `pop` returns `None`; before sleeping,
///    re-check [`is_empty`] — `false` means some producer has *claimed* a
///    slot it has not yet published (or published one after the drain), so
///    the consumer must retry instead of sleeping, because that producer
///    may not be the one that owes a notification.
///
/// With both rules in place a sleeping consumer is always covered: a push
/// into a drained-empty ring compares its claimed position against the
/// consumer's position and sees the transition, so it notifies.
///
/// [`push`]: IntakeRing::push
/// [`is_empty`]: IntakeRing::is_empty
///
/// ```
/// use alps_runtime::IntakeRing;
/// let r: IntakeRing<u64> = IntakeRing::with_capacity(4);
/// assert_eq!(r.push(1), Ok(true));  // empty → non-empty
/// assert_eq!(r.push(2), Ok(false));
/// assert_eq!(r.pop(), Some(1));
/// assert_eq!(r.pop(), Some(2));
/// assert_eq!(r.pop(), None);
/// ```
pub struct IntakeRing<T> {
    buf: Box<[RingSlot<T>]>,
    mask: usize,
    enqueue_pos: std::sync::atomic::AtomicUsize,
    dequeue_pos: std::sync::atomic::AtomicUsize,
}

struct RingSlot<T> {
    seq: std::sync::atomic::AtomicUsize,
    val: std::cell::UnsafeCell<Option<T>>,
}

// SAFETY: a slot's value is written by exactly one producer (the one
// whose CAS claimed the slot's sequence number) and read by exactly one
// consumer (the one whose CAS claimed the matching dequeue position);
// the Release publish on `seq` orders the write before the Acquire read.
unsafe impl<T: Send> Sync for IntakeRing<T> {}
unsafe impl<T: Send> Send for IntakeRing<T> {}

impl<T> fmt::Debug for IntakeRing<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IntakeRing")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

impl<T> IntakeRing<T> {
    /// Create a ring holding at least `cap` items (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(cap: usize) -> IntakeRing<T> {
        use std::sync::atomic::AtomicUsize;
        let cap = cap.max(2).next_power_of_two();
        let buf: Vec<RingSlot<T>> = (0..cap)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                val: std::cell::UnsafeCell::new(None),
            })
            .collect();
        IntakeRing {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate number of items (claimed slots count as occupied).
    pub fn len(&self) -> usize {
        use std::sync::atomic::Ordering::SeqCst;
        self.enqueue_pos
            .load(SeqCst)
            .saturating_sub(self.dequeue_pos.load(SeqCst))
    }

    /// Whether the ring is empty. A `false` from the consumer's side may
    /// mean a producer has claimed a slot but not yet published it; the
    /// consumer must treat that as "work pending" and not sleep (see the
    /// wakeup protocol above).
    pub fn is_empty(&self) -> bool {
        use std::sync::atomic::Ordering::SeqCst;
        self.enqueue_pos.load(SeqCst) == self.dequeue_pos.load(SeqCst)
    }

    /// Push an item. `Ok(true)` when this push made the ring non-empty
    /// from the consumer's perspective (the caller then owes the consumer
    /// a wakeup); `Err(item)` when the ring is full.
    pub fn push(&self, item: T) -> Result<bool, T> {
        use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
        let mut pos = self.enqueue_pos.load(Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self
                    .enqueue_pos
                    .compare_exchange_weak(pos, pos + 1, SeqCst, Relaxed)
                {
                    Ok(_) => {
                        // SeqCst so the transition test and the consumer's
                        // `is_empty` pre-sleep check totally order.
                        let was_empty = pos == self.dequeue_pos.load(SeqCst);
                        // SAFETY: the CAS gave us exclusive claim on this
                        // slot until the `seq` publish below.
                        unsafe {
                            *slot.val.get() = Some(item);
                        }
                        slot.seq.store(pos + 1, Release);
                        return Ok(was_empty);
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return Err(item);
            } else {
                pos = self.enqueue_pos.load(Relaxed);
            }
        }
    }

    /// Pop every currently-published item in order, applying `f` to each;
    /// returns how many were drained. Stops at the first claimed-but-
    /// unpublished slot, like [`pop`](Self::pop) — the caller must treat
    /// a non-empty ring after `drain_with` as work still pending.
    pub fn drain_with(&self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Some(item) = self.pop() {
            f(item);
            n += 1;
        }
        n
    }

    /// Pop the oldest item, or `None` when the ring is empty *or* the
    /// oldest claimed slot has not been published yet.
    pub fn pop(&self) -> Option<T> {
        use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
        let mut pos = self.dequeue_pos.load(Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self
                    .dequeue_pos
                    .compare_exchange_weak(pos, pos + 1, SeqCst, Relaxed)
                {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive claim on this
                        // published slot.
                        let item = unsafe { (*slot.val.get()).take() };
                        slot.seq.store(pos + self.mask + 1, Release);
                        return item;
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::IntakeRing;

    #[test]
    fn fifo_and_empty_transition() {
        let r: IntakeRing<u32> = IntakeRing::with_capacity(8);
        assert!(r.is_empty());
        assert_eq!(r.push(10), Ok(true));
        assert_eq!(r.push(11), Ok(false));
        assert_eq!(r.push(12), Ok(false));
        assert!(!r.is_empty());
        assert_eq!(r.pop(), Some(10));
        assert_eq!(r.pop(), Some(11));
        assert_eq!(r.pop(), Some(12));
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
        // Drained: the next push is a fresh transition.
        assert_eq!(r.push(13), Ok(true));
        assert_eq!(r.pop(), Some(13));
    }

    #[test]
    fn full_ring_rejects_and_returns_item() {
        let r: IntakeRing<String> = IntakeRing::with_capacity(2);
        assert_eq!(r.push("a".into()), Ok(true));
        assert_eq!(r.push("b".into()), Ok(false));
        assert_eq!(r.push("c".into()), Err("c".to_string()));
        assert_eq!(r.pop(), Some("a".into()));
        assert_eq!(r.push("c".into()), Ok(false));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let r: IntakeRing<u8> = IntakeRing::with_capacity(5);
        assert_eq!(r.capacity(), 8);
        let r: IntakeRing<u8> = IntakeRing::with_capacity(0);
        assert_eq!(r.capacity(), 2);
    }

    #[test]
    fn wraparound_many_rounds() {
        let r: IntakeRing<usize> = IntakeRing::with_capacity(4);
        for round in 0..100 {
            for i in 0..3 {
                assert_eq!(r.push(round * 3 + i), Ok(i == 0));
            }
            for i in 0..3 {
                assert_eq!(r.pop(), Some(round * 3 + i));
            }
        }
    }

    #[test]
    fn multi_producer_stress_no_loss() {
        use std::sync::Arc;
        let r: Arc<IntakeRing<usize>> = Arc::new(IntakeRing::with_capacity(64));
        let producers = 4;
        let per = 5_000usize;
        let mut hs = Vec::new();
        for p in 0..producers {
            let r2 = Arc::clone(&r);
            hs.push(std::thread::spawn(move || {
                let mut transitions = 0u64;
                for i in 0..per {
                    let mut item = p * per + i;
                    loop {
                        match r2.push(item) {
                            Ok(was_empty) => {
                                if was_empty {
                                    transitions += 1;
                                }
                                break;
                            }
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                transitions
            }));
        }
        let mut got = Vec::with_capacity(producers * per);
        while got.len() < producers * per {
            match r.pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        let transitions: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(transitions >= 1, "at least the first push transitions");
        got.sort_unstable();
        let want: Vec<usize> = (0..producers * per).collect();
        assert_eq!(got, want);
        assert!(r.is_empty());
    }
}
