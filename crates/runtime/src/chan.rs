//! Asynchronous typed point-to-point channels (paper §2.1.2).
//!
//! ALPS channels are asynchronous (`send` buffers and continues), typed,
//! first-class values (they can be stored in data structures, passed as
//! procedure parameters and inside messages), and usable in the guards of
//! `select`/`loop` statements. This module provides `Chan<T>` with exactly
//! those properties:
//!
//! * unbounded by default, optionally bounded (`send` then blocks when
//!   full — a buffering limit, not a rendezvous);
//! * FIFO per channel;
//! * *acceptance-condition* support for guards: a receive guard may scan
//!   the queue for the first message satisfying a predicate, leaving
//!   non-matching messages untouched (SR-style semantics, see paper §2.4);
//! * select integration through [`Notifier`] subscription.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::RuntimeError;
use crate::executor::Runtime;
use crate::notifier::{Notifier, WeakNotifier};
use crate::process::ProcId;

struct ChanSt<T> {
    q: VecDeque<T>,
    recv_waiters: Vec<ProcId>,
    send_waiters: Vec<ProcId>,
    subscribers: Vec<WeakNotifier>,
    closed: bool,
}

struct ChanInner<T> {
    st: Mutex<ChanSt<T>>,
    cap: Option<usize>,
    name: String,
}

/// An asynchronous buffered channel carrying values of type `T`.
///
/// Cloning the handle is cheap; all clones refer to the same queue. The
/// paper requires each channel be used for input *or* output by a given
/// process but the type itself does not enforce directionality (split
/// wrappers [`SendHalf`]/[`RecvHalf`] provide it when wanted).
///
/// # Examples
///
/// ```
/// use alps_runtime::{Chan, Runtime};
///
/// let rt = Runtime::threaded();
/// let c: Chan<i64> = Chan::unbounded("nums");
/// c.send(&rt, 1).unwrap();
/// c.send(&rt, 2).unwrap();
/// assert_eq!(c.recv(&rt).unwrap(), 1);
/// assert_eq!(c.recv(&rt).unwrap(), 2);
/// rt.shutdown();
/// ```
pub struct Chan<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        f.debug_struct("Chan")
            .field("name", &self.inner.name)
            .field("len", &st.q.len())
            .field("cap", &self.inner.cap)
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T: Send + 'static> Chan<T> {
    /// Create an unbounded channel with a debug name.
    pub fn unbounded(name: impl Into<String>) -> Chan<T> {
        Self::with_capacity(name, None)
    }

    /// Create a bounded channel: `send` blocks while `cap` messages are
    /// buffered.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (ALPS channels are asynchronous; a rendezvous
    /// channel would change the language semantics).
    pub fn bounded(name: impl Into<String>, cap: usize) -> Chan<T> {
        assert!(cap > 0, "ALPS channels are buffered; capacity must be > 0");
        Self::with_capacity(name, Some(cap))
    }

    fn with_capacity(name: impl Into<String>, cap: Option<usize>) -> Chan<T> {
        Chan {
            inner: Arc::new(ChanInner {
                st: Mutex::new(ChanSt {
                    q: VecDeque::new(),
                    recv_waiters: Vec::new(),
                    send_waiters: Vec::new(),
                    subscribers: Vec::new(),
                    closed: false,
                }),
                cap,
                name: name.into(),
            }),
        }
    }

    /// The channel's debug name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether two handles refer to the same underlying channel.
    pub fn same(&self, other: &Chan<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A stable identity for the underlying channel (pointer-based).
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.inner.st.lock().q.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.st.lock().closed
    }

    /// Send a message. Buffers and returns immediately on an unbounded
    /// channel; blocks while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is closed.
    pub fn send(&self, rt: &Runtime, v: T) -> Result<(), RuntimeError> {
        let mut v = Some(v);
        loop {
            let (recv_waiters, notify_subs) = {
                let mut st = self.inner.st.lock();
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                if let Some(cap) = self.inner.cap {
                    if st.q.len() >= cap {
                        let me = rt.current();
                        if !st.send_waiters.contains(&me) {
                            st.send_waiters.push(me);
                        }
                        drop(st);
                        rt.park();
                        continue;
                    }
                }
                st.q.push_back(v.take().expect("send loop reuse"));
                let rw = std::mem::take(&mut st.recv_waiters);
                let subs = st.subscribers.clone();
                (rw, subs)
            };
            for w in recv_waiters {
                rt.unpark(w);
            }
            self.fan_out(rt, notify_subs);
            return Ok(());
        }
    }

    /// Send a batch of messages, waking receivers and subscribed selects
    /// **once** for the whole batch rather than once per message. On a
    /// bounded channel the batch honors the capacity: the sender blocks
    /// mid-batch while the buffer is full (messages already enqueued stay
    /// enqueued, and their wakeups are delivered before blocking).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is (or becomes) closed;
    /// messages enqueued before the failure remain in the buffer.
    pub fn send_batch(
        &self,
        rt: &Runtime,
        msgs: impl IntoIterator<Item = T>,
    ) -> Result<(), RuntimeError> {
        let mut pending = msgs.into_iter();
        let mut carry: Option<T> = None;
        loop {
            let (recv_waiters, notify_subs, full) = {
                let mut st = self.inner.st.lock();
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                let mut sent_any = false;
                let mut full = false;
                loop {
                    if let Some(cap) = self.inner.cap {
                        if st.q.len() >= cap {
                            full = true;
                            break;
                        }
                    }
                    match carry.take().or_else(|| pending.next()) {
                        Some(v) => {
                            st.q.push_back(v);
                            sent_any = true;
                        }
                        None => break,
                    }
                }
                if full {
                    // Remember where we stopped and register for a wakeup.
                    carry = carry.take().or_else(|| pending.next());
                    if carry.is_none() {
                        full = false; // iterator exhausted exactly at cap
                    } else {
                        let me = rt.current();
                        if !st.send_waiters.contains(&me) {
                            st.send_waiters.push(me);
                        }
                    }
                }
                if sent_any {
                    (
                        std::mem::take(&mut st.recv_waiters),
                        st.subscribers.clone(),
                        full,
                    )
                } else {
                    (Vec::new(), Vec::new(), full)
                }
            };
            for w in recv_waiters {
                rt.unpark(w);
            }
            self.fan_out(rt, notify_subs);
            if !full {
                return Ok(());
            }
            rt.park();
        }
    }

    /// Receive the oldest message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] once the channel is closed *and* drained.
    pub fn recv(&self, rt: &Runtime) -> Result<T, RuntimeError> {
        loop {
            {
                let mut st = self.inner.st.lock();
                if let Some(v) = st.q.pop_front() {
                    let sw = std::mem::take(&mut st.send_waiters);
                    drop(st);
                    for w in sw {
                        rt.unpark(w);
                    }
                    return Ok(v);
                }
                if st.closed {
                    return Err(RuntimeError::Shutdown);
                }
                let me = rt.current();
                if !st.recv_waiters.contains(&me) {
                    st.recv_waiters.push(me);
                }
            }
            rt.park();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, rt: &Runtime) -> Option<T> {
        let mut st = self.inner.st.lock();
        let v = st.q.pop_front();
        if v.is_some() {
            let sw = std::mem::take(&mut st.send_waiters);
            drop(st);
            for w in sw {
                rt.unpark(w);
            }
        }
        v
    }

    /// Remove and return the first message satisfying `pred`, leaving all
    /// other messages in order. This is the *acceptance condition* receive
    /// used by select guards: if no buffered message satisfies the
    /// condition the guard is simply not eligible.
    pub fn recv_match(&self, rt: &Runtime, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut st = self.inner.st.lock();
        let idx = st.q.iter().position(pred)?;
        let v = st.q.remove(idx);
        let sw = std::mem::take(&mut st.send_waiters);
        drop(st);
        for w in sw {
            rt.unpark(w);
        }
        v
    }

    /// Inspect buffered messages without consuming, returning `f`'s answer
    /// over the queue iterator. Used by guard evaluation to test
    /// eligibility and compute `pri` values.
    pub fn peek_with<R>(&self, f: impl FnOnce(&mut dyn Iterator<Item = &T>) -> R) -> R {
        let st = self.inner.st.lock();
        let mut it = st.q.iter();
        f(&mut it)
    }

    /// Close the channel: future sends fail, receivers drain the buffer
    /// then fail, subscribed selects are woken.
    pub fn close(&self, rt: &Runtime) {
        let (rw, sw, subs) = {
            let mut st = self.inner.st.lock();
            st.closed = true;
            (
                std::mem::take(&mut st.recv_waiters),
                std::mem::take(&mut st.send_waiters),
                st.subscribers.clone(),
            )
        };
        for w in rw.into_iter().chain(sw) {
            rt.unpark(w);
        }
        self.fan_out(rt, subs);
    }

    /// Subscribe a select's notifier: every send (and close) will bump it.
    /// Subscribing the same notifier again is a no-op, so a manager's
    /// select loop may subscribe on every iteration without growth. Dead
    /// subscribers are pruned lazily.
    pub fn subscribe(&self, n: &Notifier) {
        let mut st = self.inner.st.lock();
        let p = n.inner_ptr();
        if st.subscribers.iter().any(|w| w.ptr() == p) {
            return;
        }
        st.subscribers.push(n.downgrade());
    }

    fn fan_out(&self, rt: &Runtime, subs: Vec<WeakNotifier>) {
        let mut any_dead = false;
        for s in &subs {
            if !s.notify(rt) {
                any_dead = true;
            }
        }
        if any_dead {
            let mut st = self.inner.st.lock();
            st.subscribers.retain(|w| w.is_alive());
        }
    }

    /// Directional split: a send-only and a receive-only handle.
    pub fn split(&self) -> (SendHalf<T>, RecvHalf<T>) {
        (
            SendHalf { chan: self.clone() },
            RecvHalf { chan: self.clone() },
        )
    }
}

/// Send-only handle to a [`Chan`] (the paper requires each endpoint use a
/// channel in one direction only).
#[derive(Debug, Clone)]
pub struct SendHalf<T> {
    chan: Chan<T>,
}

impl<T: Send + 'static> SendHalf<T> {
    /// See [`Chan::send`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] if the channel is closed.
    pub fn send(&self, rt: &Runtime, v: T) -> Result<(), RuntimeError> {
        self.chan.send(rt, v)
    }
}

/// Receive-only handle to a [`Chan`].
#[derive(Debug, Clone)]
pub struct RecvHalf<T> {
    chan: Chan<T>,
}

impl<T: Send + 'static> RecvHalf<T> {
    /// See [`Chan::recv`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Shutdown`] once the channel is closed and drained.
    pub fn recv(&self, rt: &Runtime) -> Result<T, RuntimeError> {
        self.chan.recv(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimRuntime;
    use crate::process::Spawn;

    #[test]
    fn fifo_order_preserved() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        for i in 0..10 {
            c.send(&rt, i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(c.recv(&rt).unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send_sim() {
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let c: Chan<&'static str> = Chan::unbounded("c");
                let c2 = c.clone();
                let rt2 = rt.clone();
                rt.spawn_with(Spawn::new("sender"), move || {
                    rt2.sleep(100);
                    c2.send(&rt2, "hello").unwrap();
                });
                c.recv(rt).unwrap()
            })
            .unwrap();
        assert_eq!(v, "hello");
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let c = Chan::bounded("c", 2);
                let c2 = c.clone();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("sender"), move || {
                    for i in 0..4 {
                        c2.send(&rt2, i).unwrap();
                    }
                    "done"
                });
                rt.yield_now(); // sender fills the buffer and blocks at 2
                assert_eq!(c.len(), 2);
                let mut out = Vec::new();
                for _ in 0..4 {
                    out.push(c.recv(rt).unwrap());
                }
                h.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = Chan::<i32>::bounded("bad", 0);
    }

    #[test]
    fn recv_match_skips_non_matching() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        for i in 1..=5 {
            c.send(&rt, i).unwrap();
        }
        // Take the first even message.
        assert_eq!(c.recv_match(&rt, |m| m % 2 == 0), Some(2));
        // Remaining order intact.
        let rest: Vec<i32> = std::iter::from_fn(|| c.try_recv(&rt)).collect();
        assert_eq!(rest, vec![1, 3, 4, 5]);
    }

    #[test]
    fn recv_match_none_when_no_match() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 1).unwrap();
        assert_eq!(c.recv_match(&rt, |m| *m > 10), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn close_fails_sends_and_drains_receives() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 1).unwrap();
        c.close(&rt);
        assert!(c.is_closed());
        assert_eq!(c.send(&rt, 2), Err(RuntimeError::Shutdown));
        assert_eq!(c.recv(&rt).unwrap(), 1); // drain
        assert_eq!(c.recv(&rt), Err(RuntimeError::Shutdown));
    }

    #[test]
    fn send_batch_delivers_all_with_one_notification() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n = Notifier::new();
        c.subscribe(&n);
        let e0 = n.epoch();
        c.send_batch(&rt, 0..5).unwrap();
        // One epoch bump for the whole batch…
        assert_eq!(n.epoch(), e0 + 1);
        // …and every message delivered in order.
        let got: Vec<i32> = std::iter::from_fn(|| c.try_recv(&rt)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_batch_respects_bounded_capacity_sim() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let c = Chan::bounded("c", 2);
                let c2 = c.clone();
                let rt2 = rt.clone();
                let h = rt.spawn_with(Spawn::new("batcher"), move || {
                    c2.send_batch(&rt2, 0..5).unwrap();
                });
                rt.yield_now(); // batcher fills to capacity and parks
                assert_eq!(c.len(), 2);
                let mut out = Vec::new();
                for _ in 0..5 {
                    out.push(c.recv(rt).unwrap());
                }
                h.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_batch_on_closed_channel_fails() {
        let rt = Runtime::threaded();
        let c: Chan<i32> = Chan::unbounded("c");
        c.close(&rt);
        assert_eq!(c.send_batch(&rt, [1, 2]), Err(RuntimeError::Shutdown));
    }

    #[test]
    fn subscriber_notified_on_send() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n = Notifier::new();
        c.subscribe(&n);
        let e0 = n.epoch();
        c.send(&rt, 5).unwrap();
        assert!(n.epoch() > e0);
    }

    #[test]
    fn channels_are_first_class_values() {
        // A channel of channels, as the paper allows (§2.1.2).
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let meta: Chan<Chan<i32>> = Chan::unbounded("meta");
                let meta2 = meta.clone();
                let rt2 = rt.clone();
                rt.spawn_with(Spawn::new("replier"), move || {
                    let reply = meta2.recv(&rt2).unwrap();
                    reply.send(&rt2, 7).unwrap();
                });
                let reply: Chan<i32> = Chan::unbounded("reply");
                meta.send(rt, reply.clone()).unwrap();
                reply.recv(rt).unwrap()
            })
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn peek_with_observes_without_consuming() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        c.send(&rt, 3).unwrap();
        c.send(&rt, 9).unwrap();
        let max = c.peek_with(|it| it.copied().max());
        assert_eq!(max, Some(9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn split_halves_work() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let (tx, rx) = c.split();
        tx.send(&rt, 1).unwrap();
        assert_eq!(rx.recv(&rt).unwrap(), 1);
    }

    #[test]
    fn threaded_multi_producer_stress() {
        let rt = Runtime::threaded();
        let c = Chan::unbounded("c");
        let n_producers = 4;
        let per = 250;
        let mut hs = Vec::new();
        for p in 0..n_producers {
            let c2 = c.clone();
            let rt2 = rt.clone();
            hs.push(rt.spawn(move || {
                for i in 0..per {
                    c2.send(&rt2, p * per + i).unwrap();
                }
            }));
        }
        let mut got = Vec::new();
        for _ in 0..n_producers * per {
            got.push(c.recv(&rt).unwrap());
        }
        for h in hs {
            h.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<i32> = (0..n_producers * per).collect();
        assert_eq!(got, want);
    }
}
