//! # alps-runtime — the ALPS kernel substrate
//!
//! Runtime support for the ALPS reproduction ("Synchronization and
//! Scheduling in ALPS Objects", ICDCS 1988): lightweight processes with
//! priorities, asynchronous typed channels, parallel (`par`) combinators,
//! an epoch [`Notifier`] for building `select`, and two interchangeable
//! executors:
//!
//! * [`Runtime::threaded`] — one OS thread per process, real parallelism;
//! * [`SimRuntime`] — deterministic cooperative simulation with strict
//!   priorities, virtual time, reproducible schedules, and deadlock
//!   detection.
//!
//! The paper's kernel ran on a 16-node transputer network and assumed
//! Mach-style lightweight threads; this crate is the documented
//! substitution (see the repository `DESIGN.md`, §3).
//!
//! ## Example
//!
//! ```
//! use alps_runtime::{Chan, Priority, Runtime, SimRuntime, Spawn};
//!
//! let sim = SimRuntime::new();
//! let total = sim
//!     .run(|rt| {
//!         let c: Chan<u64> = Chan::unbounded("work");
//!         let c2 = c.clone();
//!         let rt2 = rt.clone();
//!         rt.spawn_with(Spawn::new("producer"), move || {
//!             for i in 1..=10 {
//!                 c2.send(&rt2, i).unwrap();
//!             }
//!         });
//!         (0..10).map(|_| c.recv(rt).unwrap()).sum::<u64>()
//!     })
//!     .unwrap();
//! assert_eq!(total, 55);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chan;
mod error;
mod executor;
pub mod explore;
mod fault;
pub mod metrics;
mod notifier;
mod par;
mod process;
pub mod tuning;

pub use chan::{Chan, IntakeRing, RecvHalf, SendHalf};
pub use error::{Aborted, RuntimeError};
pub use executor::{ProcHandle, Runtime, SchedPolicy, SimProbe, SimRuntime, TICKS_PER_MS};
pub use explore::{CommitPoint, TraceSpec};
pub use fault::{FaultAction, FaultPlan};
pub use notifier::{Notifier, NotifyBatch, WaitOutcome};
pub use par::{par, par_for};
pub use process::{Priority, ProcId, Spawn, SpinWait};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Runtime>();
        assert_ss::<Chan<u64>>();
        assert_ss::<Notifier>();
        assert_ss::<RuntimeError>();
        assert_ss::<ProcId>();
        assert_ss::<Priority>();
        assert_ss::<Spawn>();
    }
}
