//! Strategy-driven schedule exploration for the simulation executor.
//!
//! The seeded sweep used to sample interleavings blindly with
//! [`SchedPolicy::PriorityRandom`]. Following "Process algebra with
//! strategic interleaving" (PAPERS.md), this module makes the sim
//! scheduler *strategy pluggable* and perturbs schedules around the
//! protocol's **commit points** — the five places the call protocol
//! actually commits a racy decision (see [`CommitPoint`]).
//!
//! Three layers live here:
//!
//! 1. **Strategies** ([`SchedStrategy`], crate-private): the policy
//!    behind every scheduling decision. Each strategy owns its own
//!    seeded streams (separate *pick* and *preempt* streams, salted per
//!    strategy), so replaying a recorded preemption list cannot desync
//!    the pick sequence, and two strategies started from the same seed
//!    diverge.
//! 2. **Traces** ([`TraceSpec`]): a replayable schedule — the policy
//!    (which fixes every pick deterministically) plus the explicit list
//!    of `(commit-hit, ticks)` preemptions taken. Printable as the
//!    `SIM_TRACE=` string and parseable back.
//! 3. **The sweep harness** ([`sweep_explore`], [`for_each_policy`]):
//!    seeds × strategies with coverage counters, automatic delta-
//!    minimization of any failure ([`shrink_preemptions`]) and a
//!    one-line replay recipe.
//!
//! Replay contract (same as `SIM_SEED` always had): a [`TraceSpec`] is a
//! pure function from schedule to behaviour. Picks are regenerated from
//! the policy's seeded pick stream; preemptions are applied verbatim
//! from the recorded list, keyed by the global commit-hit index.

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;

use crate::executor::{SchedPolicy, SimRuntime};

/// The five places the call protocol commits a racy decision. Annotated
/// in `alps-core` via [`Runtime::sim_point`](crate::Runtime::sim_point)
/// — a no-op on real executors, one branch on the sim executor, where a
/// strategy may inject a bounded virtual delay to perturb the schedule
/// right where interleavings actually matter.
///
/// All annotation sites are **lock-free by construction**: preempting a
/// simulated process that holds a real mutex would let a rival OS-block
/// on that mutex while holding the simulated CPU, which the deadlock
/// detector cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CommitPoint {
    /// A caller is about to publish a call into the intake ring or the
    /// SPSC fast lane (`submit_call`).
    IntakePush = 1,
    /// The manager is about to drain the lane + intake ring
    /// (`drain_intake`, before taking the drain lock).
    RingDrain = 2,
    /// The finish-vs-cancel CAS on a call cell: annotated on both sides
    /// — the caller just before attempting a deadline cancel, and the
    /// manager just before publishing a result.
    FinishCas = 3,
    /// A supervised restart is about to sweep in-flight calls
    /// (`handle_body_panic`, before the restart bookkeeping).
    RestartSweep = 4,
    /// The SPSC fast lane just changed hands: a promote or demote
    /// decision was published (after the drain lock is released).
    LaneSwitch = 5,
}

impl CommitPoint {
    /// Every commit point, in code order.
    pub const ALL: [CommitPoint; 5] = [
        CommitPoint::IntakePush,
        CommitPoint::RingDrain,
        CommitPoint::FinishCas,
        CommitPoint::RestartSweep,
        CommitPoint::LaneSwitch,
    ];

    /// Stable numeric code, folded into coverage/decision hashes.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Human-readable name (used in docs and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            CommitPoint::IntakePush => "intake-push",
            CommitPoint::RingDrain => "ring-drain",
            CommitPoint::FinishCas => "finish-cas",
            CommitPoint::RestartSweep => "restart-sweep",
            CommitPoint::LaneSwitch => "lane-switch",
        }
    }
}

/// FNV-1a offset basis (64-bit).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one `u64` into an FNV-1a hash, byte-wise (little-endian).
pub(crate) fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A tiny deterministic PRNG: splitmix64 over a Weyl sequence. Each
/// strategy owns *separate* instances for picks and preemptions so the
/// two decision kinds never share a stream (replay suppresses preempt
/// draws without desyncing picks).
pub(crate) struct Prng {
    s: u64,
}

impl Prng {
    pub(crate) fn new(seed: u64) -> Prng {
        Prng { s: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// Per-strategy stream salts: strategies started from the same seed must
// diverge, and a strategy's pick stream must stay independent of its
// preempt stream.
const PICK_SALT_RANDOM: u64 = 0x517c_c1b7_2722_0a95;
const PICK_SALT_TARGETED: u64 = 0x6c62_272e_07bb_0142;
const PREEMPT_SALT_PCT: u64 = 0x2f72_3602_1e4f_3a1b;
const PREEMPT_SALT_TARGETED: u64 = 0x9216_d5d9_8979_fb1b;

/// A scheduling strategy: the pluggable policy behind every sim
/// scheduling decision. Implementations must be deterministic — pure
/// functions of their seed and their call sequence.
pub(crate) trait SchedStrategy: Send {
    /// Choose the winner among the `group_len` equal-priority runnable
    /// processes at the front of the ready queue (FIFO order within the
    /// group). Only consulted when `group_len >= 2`.
    fn pick(&mut self, group_len: usize) -> usize;

    /// Consulted once per commit-point hit (`hit` is the global 0-based
    /// hit counter). Return `Some(ticks)` to preempt the running process
    /// with a virtual sleep of `ticks` — under strict priorities a plain
    /// yield would reschedule the same process immediately, so a sleep
    /// is what actually lets rivals run.
    fn preempt(&mut self, cp: CommitPoint, hit: u64) -> Option<u64>;
}

/// FIFO picks, no preemption: the fully deterministic default.
struct Fifo;

impl SchedStrategy for Fifo {
    fn pick(&mut self, _group_len: usize) -> usize {
        0
    }
    fn preempt(&mut self, _cp: CommitPoint, _hit: u64) -> Option<u64> {
        None
    }
}

/// Seeded random picks among equal priorities, no preemption — the
/// original `PriorityRandom` behaviour.
struct RandomPick {
    rng: Prng,
}

impl SchedStrategy for RandomPick {
    fn pick(&mut self, group_len: usize) -> usize {
        (self.rng.next() % group_len as u64) as usize
    }
    fn preempt(&mut self, _cp: CommitPoint, _hit: u64) -> Option<u64> {
        None
    }
}

/// Rotating picks among equal priorities: a cheap liveness baseline that
/// guarantees every member of a persistent front group runs.
struct RoundRobinPick {
    counter: u64,
}

impl SchedStrategy for RoundRobinPick {
    fn pick(&mut self, group_len: usize) -> usize {
        let i = (self.counter % group_len as u64) as usize;
        self.counter = self.counter.wrapping_add(1);
        i
    }
    fn preempt(&mut self, _cp: CommitPoint, _hit: u64) -> Option<u64> {
        None
    }
}

/// PCT-style preemption-bounded search: picks stay FIFO so the at-most-
/// `budget` seeded preemptions are the *only* perturbation of the
/// default schedule — small budgets cover small bug depths with high
/// probability (Burckhardt et al.'s PCT argument).
struct Pct {
    preempt_rng: Prng,
    budget: u32,
}

impl SchedStrategy for Pct {
    fn pick(&mut self, _group_len: usize) -> usize {
        0
    }
    fn preempt(&mut self, _cp: CommitPoint, _hit: u64) -> Option<u64> {
        if self.budget == 0 {
            return None;
        }
        let r = self.preempt_rng.next();
        if r.is_multiple_of(crate::tuning::PCT_GATE_ONE_IN) {
            self.budget -= 1;
            Some(1u64 << ((r >> 8) % crate::tuning::PREEMPT_DELAY_LOG2_SPREAD))
        } else {
            None
        }
    }
}

/// Commit-point-targeted racing: random picks plus an aggressive
/// preemption at roughly every other commit point, with delays spread
/// over `1..=64` ticks so same-kind events reorder across each other's
/// windows. This is the strategy that actually buys distinct
/// commit-point *orderings* rather than mere pick permutations.
struct Targeted {
    pick_rng: Prng,
    preempt_rng: Prng,
}

impl SchedStrategy for Targeted {
    fn pick(&mut self, group_len: usize) -> usize {
        (self.pick_rng.next() % group_len as u64) as usize
    }
    fn preempt(&mut self, _cp: CommitPoint, _hit: u64) -> Option<u64> {
        let r = self.preempt_rng.next();
        if r.is_multiple_of(crate::tuning::TARGETED_GATE_ONE_IN) {
            Some(1u64 << ((r >> 8) % crate::tuning::PREEMPT_DELAY_LOG2_SPREAD))
        } else {
            None
        }
    }
}

/// Replay wrapper: picks delegate to the base strategy (identical stream
/// by construction), preemptions come verbatim from a recorded list
/// keyed by commit-hit index. The base strategy's preempt stream is
/// never advanced — which is exactly why it must be a separate stream.
struct Replay {
    inner: Box<dyn SchedStrategy>,
    preemptions: HashMap<u64, u64>,
}

impl SchedStrategy for Replay {
    fn pick(&mut self, group_len: usize) -> usize {
        self.inner.pick(group_len)
    }
    fn preempt(&mut self, _cp: CommitPoint, hit: u64) -> Option<u64> {
        self.preemptions.get(&hit).copied()
    }
}

/// Build the strategy for a policy; with `replay`, wrap it so the
/// recorded preemption list is applied instead of fresh draws.
pub(crate) fn build_strategy(
    policy: SchedPolicy,
    replay: Option<&[(u64, u64)]>,
) -> Box<dyn SchedStrategy> {
    let base: Box<dyn SchedStrategy> = match policy {
        SchedPolicy::PriorityFifo => Box::new(Fifo),
        SchedPolicy::PriorityRandom(s) => Box::new(RandomPick {
            rng: Prng::new(s ^ PICK_SALT_RANDOM),
        }),
        SchedPolicy::RoundRobin(s) => Box::new(RoundRobinPick { counter: s }),
        SchedPolicy::PreemptionBounded { seed, bound } => Box::new(Pct {
            preempt_rng: Prng::new(seed ^ PREEMPT_SALT_PCT),
            budget: bound,
        }),
        SchedPolicy::TargetedRace(s) => Box::new(Targeted {
            pick_rng: Prng::new(s ^ PICK_SALT_TARGETED),
            preempt_rng: Prng::new(s ^ PREEMPT_SALT_TARGETED),
        }),
    };
    match replay {
        None => base,
        Some(list) => Box::new(Replay {
            inner: base,
            preemptions: list.iter().copied().collect(),
        }),
    }
}

/// A replayable schedule: the policy (fixing every pick) plus the exact
/// preemptions taken, as `(commit-hit index, delay ticks)` pairs.
///
/// Serialized as `SIM_TRACE=<policy>/<hit>@<ticks>,<hit>@<ticks>,…`
/// where `<policy>` is one of `fifo`, `random:<seed>`, `rr:<seed>`,
/// `pct:<seed>:<bound>`, `targeted:<seed>`. An empty preemption list
/// (`random:7/`) is valid: the policy seed alone determines the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Scheduling policy the failing run used (fixes the pick stream).
    pub policy: SchedPolicy,
    /// Preemptions to apply, keyed by global commit-hit index.
    pub preemptions: Vec<(u64, u64)>,
}

impl TraceSpec {
    /// The same policy with a different preemption list.
    fn with(&self, preemptions: Vec<(u64, u64)>) -> TraceSpec {
        TraceSpec {
            policy: self.policy,
            preemptions,
        }
    }

    /// Parse the `SIM_TRACE` string form.
    ///
    /// # Errors
    ///
    /// A description of the malformed component.
    pub fn parse(s: &str) -> Result<TraceSpec, String> {
        let (pol, rest) = match s.split_once('/') {
            Some((p, r)) => (p, r),
            None => (s, ""),
        };
        let policy = parse_policy_token(pol.trim())?;
        let mut preemptions = Vec::new();
        for item in rest.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (h, t) = item
                .split_once('@')
                .ok_or_else(|| format!("bad preemption `{item}` (expected <hit>@<ticks>)"))?;
            let hit: u64 = h
                .parse()
                .map_err(|_| format!("bad hit index in `{item}`"))?;
            let ticks: u64 = t
                .parse()
                .map_err(|_| format!("bad tick count in `{item}`"))?;
            preemptions.push((hit, ticks));
        }
        Ok(TraceSpec {
            policy,
            preemptions,
        })
    }
}

impl std::fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/", policy_token(self.policy))?;
        for (i, (hit, ticks)) in self.preemptions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{hit}@{ticks}")?;
        }
        Ok(())
    }
}

/// Canonical token for a policy in the `SIM_TRACE` string.
fn policy_token(p: SchedPolicy) -> String {
    match p {
        SchedPolicy::PriorityFifo => "fifo".to_string(),
        SchedPolicy::PriorityRandom(s) => format!("random:{s}"),
        SchedPolicy::RoundRobin(s) => format!("rr:{s}"),
        SchedPolicy::PreemptionBounded { seed, bound } => format!("pct:{seed}:{bound}"),
        SchedPolicy::TargetedRace(s) => format!("targeted:{s}"),
    }
}

fn parse_policy_token(tok: &str) -> Result<SchedPolicy, String> {
    let mut parts = tok.split(':');
    let kind = parts.next().unwrap_or("");
    let mut num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("policy `{tok}`: missing {what}"))?
            .parse()
            .map_err(|_| format!("policy `{tok}`: bad {what}"))
    };
    let policy = match kind {
        "fifo" => SchedPolicy::PriorityFifo,
        "random" => SchedPolicy::PriorityRandom(num("seed")?),
        "rr" => SchedPolicy::RoundRobin(num("seed")?),
        "pct" => {
            let seed = num("seed")?;
            let bound = num("bound")? as u32;
            SchedPolicy::PreemptionBounded { seed, bound }
        }
        "targeted" => SchedPolicy::TargetedRace(num("seed")?),
        other => return Err(format!("unknown policy `{other}`")),
    };
    if parts.next().is_some() {
        return Err(format!("policy `{tok}`: trailing components"));
    }
    Ok(policy)
}

/// Delta-minimize a failing preemption list: find a (locally) minimal
/// subset of `spec.preemptions` for which `still_fails` still returns
/// `true`. Classic ddmin over complements (try-empty fast path, chunked
/// removal with granularity doubling) plus a final greedy single-removal
/// pass. The returned spec is guaranteed to satisfy `still_fails` —
/// every kept candidate was re-verified by replay.
pub fn shrink_preemptions(
    spec: &TraceSpec,
    still_fails: &mut dyn FnMut(&TraceSpec) -> bool,
) -> TraceSpec {
    if spec.preemptions.is_empty() {
        return spec.clone();
    }
    let empty = spec.with(Vec::new());
    if still_fails(&empty) {
        return empty;
    }
    let mut cur = spec.preemptions.clone();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut lo = 0;
        while lo < cur.len() {
            let hi = (lo + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (hi - lo));
            cand.extend_from_slice(&cur[..lo]);
            cand.extend_from_slice(&cur[hi..]);
            if !cand.is_empty() && still_fails(&spec.with(cand.clone())) {
                cur = cand;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
            lo = hi;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    let mut i = 0;
    while cur.len() > 1 && i < cur.len() {
        let mut cand = cur.clone();
        cand.remove(i);
        if still_fails(&spec.with(cand.clone())) {
            cur = cand;
        } else {
            i += 1;
        }
    }
    spec.with(cur)
}

/// The strategy matrix CI sweeps: every entry is a valid `SIM_STRATEGY`
/// token (as is `fifo`, kept out of the default matrix because it
/// explores exactly one schedule).
pub const STRATEGY_MATRIX: [&str; 4] = ["random", "rr", "pct", "targeted"];

/// Map a strategy token + seed to a concrete policy.
///
/// # Panics
///
/// On an unknown token (the valid ones are `fifo` plus
/// [`STRATEGY_MATRIX`]).
pub fn policy_for(strategy: &str, seed: u64) -> SchedPolicy {
    match strategy {
        "fifo" => SchedPolicy::PriorityFifo,
        "random" => SchedPolicy::PriorityRandom(seed),
        "rr" => SchedPolicy::RoundRobin(seed),
        "pct" => SchedPolicy::PreemptionBounded {
            seed,
            bound: crate::tuning::PCT_DEFAULT_BOUND,
        },
        "targeted" => SchedPolicy::TargetedRace(seed),
        other => {
            panic!("unknown strategy `{other}` (expected all, fifo, random, rr, pct or targeted)")
        }
    }
}

/// Parse a `SIM_STRATEGY`-style list (`all` or a comma list of tokens)
/// into canonical strategy names, deduplicated, order-preserving.
fn parse_strategies(raw: &str) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    let mut push = |s: &'static str| {
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for tok in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        if tok == "all" {
            STRATEGY_MATRIX.iter().for_each(|s| push(s));
            continue;
        }
        if tok == "fifo" {
            push("fifo");
            continue;
        }
        match STRATEGY_MATRIX.iter().find(|s| **s == tok) {
            Some(s) => push(s),
            None => panic!("unknown SIM_STRATEGY token `{tok}` (expected all, fifo, random, rr, pct or targeted)"),
        }
    }
    if out.is_empty() {
        STRATEGY_MATRIX.to_vec()
    } else {
        out
    }
}

/// Strategies to sweep, from `SIM_STRATEGY` (default: the full
/// [`STRATEGY_MATRIX`]). Accepts `all` or a comma list, e.g.
/// `SIM_STRATEGY=targeted` or `SIM_STRATEGY=random,pct`.
pub fn strategies_from_env() -> Vec<&'static str> {
    parse_strategies(&std::env::var("SIM_STRATEGY").unwrap_or_else(|_| "all".to_string()))
}

/// Seeds to sweep: `SIM_SEED=<n>` replays exactly one seed;
/// `SIM_SWEEP_SEEDS=<n>` sweeps `0..n` (default 16 as a smoke test; CI
/// sets 64 per strategy-matrix job).
pub fn seeds_from_env() -> Vec<u64> {
    if let Ok(s) = std::env::var("SIM_SEED") {
        let seed: u64 = s.parse().expect("SIM_SEED must be an integer");
        return vec![seed];
    }
    let n: u64 = std::env::var("SIM_SWEEP_SEEDS")
        .ok()
        .map(|s| s.parse().expect("SIM_SWEEP_SEEDS must be an integer"))
        .unwrap_or(16);
    (0..n).collect()
}

fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// Run `scenario` once per (seed, strategy) cell — seeds are split
/// round-robin across the strategy list, so `SIM_SWEEP_SEEDS=64` with
/// the default matrix runs 16 schedules per strategy — then report
/// per-strategy coverage (`SIM_COVERAGE` lines on stderr: distinct
/// commit-point orderings observed).
///
/// On a failure the harness replays the recorded schedule, verifies it
/// reproduces, delta-minimizes the preemption list
/// ([`shrink_preemptions`]) and panics with a `SIM_TRACE=` string that
/// replays the minimized schedule exactly. With `SIM_TRACE_OUT=<path>`
/// set, the same line is appended to `<path>` (CI uploads it as an
/// artifact).
///
/// Environment:
///
/// * `SIM_TRACE=<trace>` — skip the sweep, replay one schedule.
/// * `SIM_SEED` / `SIM_SWEEP_SEEDS` — see [`seeds_from_env`].
/// * `SIM_STRATEGY` — see [`strategies_from_env`].
pub fn sweep_explore(name: &str, scenario: impl Fn(SimRuntime)) {
    if let Ok(trace) = std::env::var("SIM_TRACE") {
        let spec = TraceSpec::parse(&trace)
            .unwrap_or_else(|e| panic!("SIM_TRACE `{trace}` did not parse: {e}"));
        eprintln!("replaying scenario `{name}` under SIM_TRACE={spec}");
        scenario(SimRuntime::with_trace(&spec));
        return;
    }
    let strategies = strategies_from_env();
    let seeds = seeds_from_env();
    let mut coverage: HashMap<&str, HashSet<u64>> = HashMap::new();
    let mut runs: HashMap<&str, u64> = HashMap::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let strategy = strategies[i % strategies.len()];
        let policy = policy_for(strategy, seed);
        let sim = SimRuntime::with_policy(policy);
        let probe = sim.probe();
        *runs.entry(strategy).or_default() += 1;
        match std::panic::catch_unwind(AssertUnwindSafe(|| scenario(sim))) {
            Ok(()) => {
                coverage
                    .entry(strategy)
                    .or_default()
                    .insert(probe.coverage_hash());
            }
            Err(payload) => {
                shrink_and_panic(name, strategy, seed, policy, &probe, payload, &scenario)
            }
        }
    }
    for s in &strategies {
        eprintln!(
            "SIM_COVERAGE scenario={name} strategy={s} seeds={} distinct_orderings={}",
            runs.get(s).copied().unwrap_or(0),
            coverage.get(s).map(|c| c.len()).unwrap_or(0),
        );
    }
}

/// Failure path of [`sweep_explore`]: minimize and report. Never returns.
fn shrink_and_panic(
    name: &str,
    strategy: &str,
    seed: u64,
    policy: SchedPolicy,
    probe: &crate::executor::SimProbe,
    payload: Box<dyn std::any::Any + Send>,
    scenario: &impl Fn(SimRuntime),
) -> ! {
    let msg = payload_msg(payload);
    let full = TraceSpec {
        policy,
        preemptions: probe.preemptions(),
    };
    // Quiet hook: every ddmin replay that still fails would otherwise
    // dump its panic message + backtrace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut fails = |spec: &TraceSpec| {
        std::panic::catch_unwind(AssertUnwindSafe(|| scenario(SimRuntime::with_trace(spec))))
            .is_err()
    };
    let reproduced = fails(&full);
    let min = if reproduced {
        shrink_preemptions(&full, &mut fails)
    } else {
        full.clone()
    };
    std::panic::set_hook(prev_hook);
    if !reproduced {
        // Should be impossible (the sim is deterministic); keep the raw
        // seed recipe rather than a trace we could not verify.
        panic!(
            "scenario `{name}` failed under strategy `{strategy}` at seed {seed}, but the \
             recorded trace did not reproduce on replay (non-determinism outside the sim?): {msg}"
        );
    }
    let trace = min.to_string();
    if let Ok(path) = std::env::var("SIM_TRACE_OUT") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "scenario={name} SIM_TRACE={trace}");
        }
    }
    panic!(
        "scenario `{name}` failed under strategy `{strategy}` at seed {seed}: {msg}\n  \
         minimized to {} of {} preemptions — replay with SIM_TRACE='{trace}'",
        min.preemptions.len(),
        full.preemptions.len(),
    );
}

/// Like [`sweep_explore`] but for scenarios that need to build *several*
/// sims per cell (determinism checks, compiled-vs-interpreted
/// agreement): calls `f(strategy, policy, seed)` per (seed, strategy)
/// cell and decorates any panic with the reproducing cell. No trace
/// shrinking — these scenarios define their own notion of failure across
/// runs, not within one schedule.
pub fn for_each_policy(name: &str, f: impl Fn(&'static str, SchedPolicy, u64)) {
    let strategies = strategies_from_env();
    for (i, &seed) in seeds_from_env().iter().enumerate() {
        let strategy = strategies[i % strategies.len()];
        let policy = policy_for(strategy, seed);
        if let Err(payload) =
            std::panic::catch_unwind(AssertUnwindSafe(|| f(strategy, policy, seed)))
        {
            panic!(
                "scenario `{name}` failed under strategy `{strategy}` at seed {seed} \
                 (replay with SIM_SEED={seed} SIM_STRATEGY={strategy}): {}",
                payload_msg(payload),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_spec_roundtrips_through_display() {
        let specs = [
            TraceSpec {
                policy: SchedPolicy::PriorityFifo,
                preemptions: vec![],
            },
            TraceSpec {
                policy: SchedPolicy::PriorityRandom(7),
                preemptions: vec![(3, 16), (9, 1)],
            },
            TraceSpec {
                policy: SchedPolicy::RoundRobin(12),
                preemptions: vec![(0, 64)],
            },
            TraceSpec {
                policy: SchedPolicy::PreemptionBounded { seed: 5, bound: 8 },
                preemptions: vec![(1, 2), (2, 4), (40, 8)],
            },
            TraceSpec {
                policy: SchedPolicy::TargetedRace(u64::MAX),
                preemptions: vec![],
            },
        ];
        for spec in specs {
            let s = spec.to_string();
            assert_eq!(TraceSpec::parse(&s).unwrap(), spec, "roundtrip of `{s}`");
        }
    }

    #[test]
    fn trace_spec_rejects_malformed_input() {
        for bad in [
            "bogus:1/",
            "random/1@2",
            "pct:3/1@2",
            "random:5/3-4",
            "random:5/x@2",
            "rr:1:2/",
        ] {
            assert!(TraceSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn ddmin_finds_minimal_failing_pair() {
        // Synthetic predicate: the run fails iff the preemption subset
        // still contains BOTH (5, 2) and (11, 8).
        let a = (5u64, 2u64);
        let b = (11u64, 8u64);
        let spec = TraceSpec {
            policy: SchedPolicy::TargetedRace(3),
            preemptions: (0..20).map(|i| (i, 1 + (i % 7))).collect::<Vec<_>>(),
        };
        let mut spec = spec;
        spec.preemptions[5] = a;
        spec.preemptions[11] = b;
        let mut calls = 0;
        let min = shrink_preemptions(&spec, &mut |s| {
            calls += 1;
            s.preemptions.contains(&a) && s.preemptions.contains(&b)
        });
        let mut got = min.preemptions.clone();
        got.sort_unstable();
        assert_eq!(got, vec![a, b], "ddmin must isolate exactly the pair");
        assert!(calls < 200, "ddmin used {calls} replays for 20 preemptions");
    }

    #[test]
    fn ddmin_empty_fast_path_and_singleton() {
        let spec = TraceSpec {
            policy: SchedPolicy::PriorityRandom(1),
            preemptions: vec![(1, 1), (2, 2), (3, 3)],
        };
        // Failure independent of preemptions: minimizes to the empty list.
        let min = shrink_preemptions(&spec, &mut |_| true);
        assert!(min.preemptions.is_empty());
        // Failure pinned to one element.
        let min = shrink_preemptions(&spec, &mut |s| s.preemptions.contains(&(2, 2)));
        assert_eq!(min.preemptions, vec![(2, 2)]);
    }

    #[test]
    fn strategy_lists_parse_and_dedupe() {
        assert_eq!(parse_strategies("all"), STRATEGY_MATRIX.to_vec());
        assert_eq!(parse_strategies(""), STRATEGY_MATRIX.to_vec());
        assert_eq!(parse_strategies("targeted"), vec!["targeted"]);
        assert_eq!(parse_strategies("pct, random ,pct"), vec!["pct", "random"]);
        assert_eq!(
            parse_strategies("fifo,all"),
            vec!["fifo", "random", "rr", "pct", "targeted"]
        );
    }

    #[test]
    #[should_panic(expected = "unknown SIM_STRATEGY token")]
    fn unknown_strategy_token_panics() {
        parse_strategies("quantum");
    }

    #[test]
    fn strategies_diverge_from_the_same_seed() {
        // The pick streams of random and targeted must differ, and pct's
        // preempt stream must actually fire within a realistic number of
        // commit hits.
        let mut random = build_strategy(SchedPolicy::PriorityRandom(42), None);
        let mut targeted = build_strategy(SchedPolicy::TargetedRace(42), None);
        let a: Vec<usize> = (0..32).map(|_| random.pick(8)).collect();
        let b: Vec<usize> = (0..32).map(|_| targeted.pick(8)).collect();
        assert_ne!(a, b, "salted pick streams must diverge");

        let mut pct = build_strategy(SchedPolicy::PreemptionBounded { seed: 42, bound: 8 }, None);
        let fired = (0..512)
            .filter(|&h| pct.preempt(CommitPoint::IntakePush, h).is_some())
            .count();
        assert!(
            (1..=8).contains(&fired),
            "pct must fire within budget, got {fired}"
        );
    }

    #[test]
    fn replay_wrapper_pins_preemptions_without_desyncing_picks() {
        let policy = SchedPolicy::TargetedRace(9);
        let mut live = build_strategy(policy, None);
        let recorded = vec![(2u64, 16u64), (5, 4)];
        let mut replay = build_strategy(policy, Some(&recorded));
        let live_picks: Vec<usize> = (0..16).map(|_| live.pick(4)).collect();
        let replay_picks: Vec<usize> = (0..16).map(|_| replay.pick(4)).collect();
        assert_eq!(live_picks, replay_picks, "picks must be identical");
        for hit in 0..8 {
            let want = recorded.iter().find(|(h, _)| *h == hit).map(|(_, t)| *t);
            assert_eq!(replay.preempt(CommitPoint::RingDrain, hit), want);
        }
    }
}
