//! Lightweight measurement utilities used by the benchmark harness and by
//! property tests that validate scheduling invariants from event logs.
//!
//! # Memory ordering
//!
//! Every atomic in this module uses `Ordering::Relaxed`, and that is a
//! deliberate contract, not an oversight: all updates are single-location
//! atomic RMWs (`fetch_add` / `fetch_max`), so no increment can be lost
//! regardless of ordering — Relaxed only permits *reordering* against
//! other memory, never torn or dropped RMWs. Nothing here is used to
//! publish data: readers treat the values as advisory telemetry, and a
//! multi-field read (e.g. [`Histogram::mean`], which divides `sum` by the
//! bucket total) may observe a momentarily inconsistent cross-field
//! snapshot while writers race. Code that needs a happens-before edge
//! must get it from the runtime's own synchronization (parking, channel
//! handoff), never from these counters.
//!
//! A second contract covers the *conditional* updates ([`Histogram`]'s
//! running maximum, and the EWMA in the object layer's stats): those use
//! `fetch_update(Relaxed, Relaxed, ..)` — a CAS loop whose closure reads
//! only the prior value of the same location it writes. Relaxed is
//! sufficient for the same single-location reason as above: CAS failure
//! reloads the current value, so a racing update can make the loop
//! retry but never publish a value computed from a stale read, and the
//! success/failure orderings need not fence anything because no *other*
//! location's data is being published through the word.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter, cheap to share across processes.
///
/// ```
/// use alps_runtime::metrics::Counter;
/// let c = Counter::new();
/// c.add(2);
/// c.incr();
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A log-bucketed histogram of `u64` samples (e.g. wait times in ticks).
///
/// Buckets are powers of two: bucket *i* holds samples in
/// `[2^i, 2^(i+1))`, with bucket 0 holding 0 and 1. Percentile estimates
/// return the upper bound of the bucket containing the requested rank —
/// coarse, but dependency-free and lock-free on the record path.
///
/// ```
/// use alps_runtime::metrics::Histogram;
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 2);
/// assert!(h.max() >= 100);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Kept to a single unconditional RMW (the bucket
    /// increment): the count is derived from the buckets, and the sum/max
    /// updates are skipped when they would not change anything — `record`
    /// sits on the per-call fast path of the object layer.
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()).saturating_sub(1).min(63) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if v != 0 {
            self.sum.fetch_add(v, Ordering::Relaxed);
            // Conditional-update idiom (see the module doc's second
            // ordering contract): the closure returns `None` when the
            // current max already covers `v`, which skips the write —
            // and the RMW — entirely on the common path; a losing race
            // reloads and re-decides, so no larger value is ever
            // overwritten by a smaller one.
            let _ = self
                .max
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
                    (v > prev).then_some(v)
                });
        }
    }

    /// Number of recorded samples (sum over the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one, bucket by bucket. Built for
    /// the multi-process case — a coordinator summing per-connection or
    /// per-process histograms that each ran for a long time — so every
    /// addition **saturates** instead of wrapping: a counter pinned at
    /// `u64::MAX` reads as "a lot", while a wrapped one reads as "almost
    /// nothing" and silently inverts every derived percentile. `other` may
    /// be concurrently recording; this reads a relaxed snapshot (the same
    /// advisory-telemetry contract as every reader in this module).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                let _ = mine.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
                    Some(prev.saturating_add(v))
                });
            }
        }
        let s = other.sum.load(Ordering::Relaxed);
        if s != 0 {
            let _ = self
                .sum
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
                    Some(prev.saturating_add(s))
                });
        }
        let m = other.max.load(Ordering::Relaxed);
        let _ = self
            .max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
                (m > prev).then_some(m)
            });
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0 < p <= 100`). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max()
    }
}

/// A timestamped event log for invariant checking in tests.
///
/// Property tests record semantic events (reader entered, writer entered,
/// …) with the runtime clock, then replay the log to assert safety
/// invariants such as "no reader overlaps a writer".
///
/// ```
/// use alps_runtime::metrics::EventLog;
/// let log: EventLog<&'static str> = EventLog::new();
/// log.record(10, "start");
/// log.record(20, "stop");
/// let evs = log.snapshot();
/// assert_eq!(evs, vec![(10, "start"), (20, "stop")]);
/// ```
#[derive(Debug)]
pub struct EventLog<E> {
    events: Mutex<Vec<(u64, E)>>,
}

impl<E> Default for EventLog<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventLog<E> {
    /// New empty log.
    pub fn new() -> EventLog<E> {
        EventLog {
            events: Mutex::new(Vec::new()),
        }
    }

    /// Append an event at time `t`.
    pub fn record(&self, t: u64, e: E) {
        self.events.lock().push((t, e));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E: Clone> EventLog<E> {
    /// Copy of all events in record order.
    pub fn snapshot(&self) -> Vec<(u64, E)> {
        self.events.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 11, "clones share state");
    }

    #[test]
    fn histogram_zero_and_one_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn histogram_mean_and_max() {
        let h = Histogram::new();
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert!((h.mean() - 4.0).abs() < 1e-9);
        assert_eq!(h.max(), 6);
    }

    #[test]
    fn histogram_percentiles_are_monotonic() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn histogram_merge_folds_counts_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [2u64, 4] {
            a.record(v);
        }
        for v in [8u64, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 1000);
        assert!((a.mean() - (2.0 + 4.0 + 8.0 + 1000.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        let a = Histogram::new();
        let b = Histogram::new();
        // Drive one bucket and the sum near the top, then fold in more:
        // a wrapping add would land near zero and invert every percentile.
        a.buckets[3].store(u64::MAX - 1, Ordering::Relaxed);
        a.sum.store(u64::MAX - 1, Ordering::Relaxed);
        b.buckets[3].store(10, Ordering::Relaxed);
        b.sum.store(10, Ordering::Relaxed);
        b.max.store(12, Ordering::Relaxed);
        a.merge(&b);
        assert_eq!(a.buckets[3].load(Ordering::Relaxed), u64::MAX);
        assert_eq!(a.sum.load(Ordering::Relaxed), u64::MAX);
        assert_eq!(a.max(), 12);
    }

    #[test]
    fn event_log_round_trip() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.record(1, 'a');
        log.record(2, 'b');
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot(), vec![(1, 'a'), (2, 'b')]);
    }
}
