//! Partial interception: the manager receives only an *initial
//! subsequence* of parameters/results (paper §2.6); the remainder flows
//! caller↔body directly. These tests pin the splicing logic.

use alps_core::{vals, AlpsError, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
use alps_runtime::{SimRuntime, Spawn};

#[test]
fn uninterecepted_result_remainder_reaches_caller() {
    // Two public results; the manager intercepts only the first. The
    // second must arrive untouched.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Split")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int, Ty::Str])
                    .intercept_params(1)
                    .intercept_results(1)
                    .body(|_ctx, args| {
                        let v = args[0].as_int()?;
                        Ok(vec![Value::Int(v), Value::str(format!("tail-{v}"))])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                let slot = acc.slot();
                mgr.start_as_is(acc)?;
                let done = mgr.await_slot("P", slot)?;
                // Manager sees only the intercepted first result.
                assert_eq!(done.results().len(), 1);
                let bumped = done.results()[0].as_int()? + 1000;
                mgr.finish(done, vals![bumped])?;
            })
            .spawn(rt)
            .unwrap();
        let r = obj.call("P", vals![7i64]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].as_int().unwrap(), 1007); // rewritten by manager
        assert_eq!(r[1].as_str().unwrap(), "tail-7"); // direct from body
    })
    .unwrap();
}

#[test]
fn unintercepted_param_remainder_reaches_body() {
    // Two public params; manager intercepts the first only and rewrites
    // it; the second must reach the body unchanged.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Split")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int, Ty::Str])
                    .results([Ty::Str])
                    .intercept_params(1)
                    .body(|_ctx, args| {
                        Ok(vec![Value::str(format!(
                            "{}+{}",
                            args[0].as_int()?,
                            args[1].as_str()?
                        ))])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                assert_eq!(acc.params().len(), 1, "only the prefix is intercepted");
                let doubled = acc.params()[0].as_int()? * 2;
                mgr.start(acc, vals![doubled], vals![])?;
                let done = mgr.await_done("P")?;
                mgr.finish_as_is(done)?;
            })
            .spawn(rt)
            .unwrap();
        let r = obj.call("P", vals![21i64, "keep"]).unwrap();
        assert_eq!(r[0].as_str().unwrap(), "42+keep");
    })
    .unwrap();
}

#[test]
fn finish_validates_prefix_types() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Strict")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercept_results(1)
                    .body(|_ctx, _| Ok(vec![Value::Int(1)])),
            )
            .manager(|mgr| {
                let acc = mgr.accept("P")?;
                let slot = acc.slot();
                mgr.start_as_is(acc)?;
                let done = mgr.await_slot("P", slot)?;
                // Wrong type for the intercepted result: must error.
                match mgr.finish(done, vals!["wrong"]) {
                    Err(AlpsError::TypeMismatch { .. }) => {}
                    other => panic!("expected TypeMismatch, got {other:?}"),
                }
                // NOTE: `finish` consumed the token; the caller has been
                // failed by the token drop. Subsequent calls still work.
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        // First call fails (manager misuse), second succeeds.
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(
            matches!(
                e,
                AlpsError::ProtocolViolation { .. } | AlpsError::BodyFailed { .. }
            ),
            "{e}"
        );
        let r = obj.call("P", vals![]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 1);
    })
    .unwrap();
}

#[test]
fn execute_with_returns_results_and_hidden() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Exec")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercept_params(1)
                    .intercept_results(1)
                    .hidden_params([Ty::Int])
                    .hidden_results([Ty::Int])
                    .body(|_ctx, args| {
                        let v = args[0].as_int()?;
                        let h = args[1].as_int()?;
                        Ok(vec![Value::Int(v * 10), Value::Int(h + 1)])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                let prefix = acc.params().to_vec();
                let (results, hidden) = mgr.execute_with(acc, prefix, vals![500i64])?;
                assert_eq!(hidden[0].as_int()?, 501);
                assert_eq!(results.len(), 1);
            })
            .spawn(rt)
            .unwrap();
        let r = obj.call("P", vals![3i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 30);
    })
    .unwrap();
}

#[test]
fn accept_slot_targets_one_array_element() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let gate = alps_core::ChanValue::new("gate", vec![]);
        let gate2 = gate.clone();
        let obj = ObjectBuilder::new("Slots")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .array(3)
                    .intercepted()
                    .body(|ctx, _| Ok(vec![Value::Int(ctx.slot() as i64)])),
            )
            .manager(move |mgr| {
                mgr.receive(&gate2)?; // let all three attach
                                      // Serve slot 2 first, then 0, then 1.
                for want in [2usize, 0, 1] {
                    let acc = mgr.accept_slot("P", want)?;
                    assert_eq!(acc.slot(), want);
                    mgr.execute(acc)?;
                }
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        let mut hs = Vec::new();
        for i in 0..3 {
            let obj2 = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{i}")), move || {
                obj2.call("P", vals![]).unwrap()[0].as_int().unwrap()
            }));
        }
        for _ in 0..10 {
            rt.yield_now();
        }
        gate.send(rt, vals![]).unwrap();
        let mut got: Vec<i64> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2], "each call ran on its own slot");
    })
    .unwrap();
}

#[test]
fn managers_can_select_on_external_channels() {
    // A manager mixing entry guards with a command channel (paper §2.3:
    // "the manager can be programmed to exchange messages with the
    // executing processes").
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let commands = alps_core::ChanValue::new("commands", vec![Ty::Str]);
        let cmd2 = commands.clone();
        let obj = ObjectBuilder::new("Cmd")
            .entry(
                EntryDef::new("Get")
                    .results([Ty::Str])
                    .intercept_results(1)
                    .body(|_ctx, _| Ok(vec![Value::str("-")])),
            )
            .manager(move |mgr| {
                let mut mode = "normal".to_string();
                loop {
                    let sel = mgr.select(vec![Guard::receive(&cmd2), Guard::accept("Get")])?;
                    match sel {
                        Selected::Received { msg, .. } => {
                            mode = msg[0].as_str()?.to_string();
                        }
                        Selected::Accepted { call, .. } => {
                            let slot = call.slot();
                            mgr.start_as_is(call)?;
                            let done = mgr.await_slot("Get", slot)?;
                            mgr.finish(done, vals![mode.clone()])?;
                        }
                        _ => unreachable!(),
                    }
                }
            })
            .spawn(rt)
            .unwrap();
        assert_eq!(
            obj.call("Get", vals![]).unwrap()[0].as_str().unwrap(),
            "normal"
        );
        commands.send(rt, vals!["maintenance"]).unwrap();
        // Give the manager a chance to drain the channel first.
        for _ in 0..5 {
            rt.yield_now();
        }
        assert_eq!(
            obj.call("Get", vals![]).unwrap()[0].as_str().unwrap(),
            "maintenance"
        );
    })
    .unwrap();
}
