//! End-to-end tests of the call protocol: accept/start/await/finish,
//! execute, combining, hidden parameters/results, implicit starts, `#P`,
//! shutdown, and failure handling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use alps_core::{
    argv, vals, AlpsError, EntryDef, Guard, ObjectBuilder, PoolMode, Selected, Ty, Value,
};
use alps_runtime::{Runtime, SimRuntime, Spawn};

/// A managed echo object: manager accepts and executes each call.
fn echo_object(rt: &Runtime) -> alps_core::ObjectHandle {
    ObjectBuilder::new("Echo")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Echo")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

#[test]
fn execute_round_trip_sim() {
    let sim = SimRuntime::new();
    let v = sim
        .run(|rt| {
            let obj = echo_object(rt);
            obj.call("Echo", vals![5i64]).unwrap()[0].as_int().unwrap()
        })
        .unwrap();
    assert_eq!(v, 5);
}

#[test]
fn execute_round_trip_threaded() {
    let rt = Runtime::threaded();
    let obj = echo_object(&rt);
    for i in 0..20i64 {
        let got = obj.call("Echo", vals![i]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, i);
    }
    obj.shutdown();
}

#[test]
fn stats_track_protocol_transitions() {
    let sim = SimRuntime::new();
    let stats = sim
        .run(|rt| {
            let obj = echo_object(rt);
            for i in 0..3i64 {
                obj.call("Echo", vals![i]).unwrap();
            }
            obj.stats()
        })
        .unwrap();
    assert_eq!(stats.calls(), 3);
    assert_eq!(stats.accepts(), 3);
    assert_eq!(stats.starts(), 3);
    assert_eq!(stats.finishes(), 3);
    assert_eq!(stats.combines(), 0);
}

#[test]
fn unknown_entry_and_arity_and_type_errors() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = echo_object(rt);
        assert!(matches!(
            obj.call("Nope", vals![]),
            Err(AlpsError::UnknownEntry { .. })
        ));
        assert!(matches!(
            obj.call("Echo", vals![]),
            Err(AlpsError::ArityMismatch { .. })
        ));
        assert!(matches!(
            obj.call("Echo", vals!["str"]),
            Err(AlpsError::TypeMismatch { .. })
        ));
    })
    .unwrap();
}

#[test]
fn manager_rewrites_intercepted_params_and_results() {
    let sim = SimRuntime::new();
    let v = sim
        .run(|rt| {
            let obj = ObjectBuilder::new("Adjust")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercept_params(1)
                        .intercept_results(1)
                        .body(|_ctx, args| Ok(vec![Value::Int(args[0].as_int()? * 10)])),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    // Manager doubles the incoming parameter...
                    let doubled = acc.params()[0].as_int()? * 2;
                    let slot = acc.slot();
                    mgr.start(acc, vals![doubled], vals![])?;
                    let done = mgr.await_slot("P", slot)?;
                    // ...and adds one to the outgoing result.
                    let bumped = done.results()[0].as_int()? + 1;
                    mgr.finish(done, vals![bumped])?;
                })
                .spawn(rt)
                .unwrap();
            obj.call("P", vals![3i64]).unwrap()[0].as_int().unwrap()
        })
        .unwrap();
    // caller 3 -> manager doubles to 6 -> body *10 = 60 -> manager +1 = 61
    assert_eq!(v, 61);
}

#[test]
fn hidden_params_and_results_flow_through_manager_only() {
    // The spooler pattern (paper §2.8.1): the manager supplies a printer
    // number as a hidden parameter and receives it back as a hidden
    // result; the caller sees neither.
    let sim = SimRuntime::new();
    let printers_seen = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));
    let seen2 = Arc::clone(&printers_seen);
    sim.run(move |rt| {
        let obj = ObjectBuilder::new("Spooler")
            .entry(
                EntryDef::new("Print")
                    .params([Ty::Str])
                    .array(2)
                    .intercepted()
                    .hidden_params([Ty::Int])
                    .hidden_results([Ty::Int])
                    .body(move |_ctx, args| {
                        // args = [file, printer#]
                        let printer = args[1].as_int()?;
                        seen2.lock().push(printer);
                        Ok(vec![Value::Int(printer)])
                    }),
            )
            .manager(|mgr| {
                let mut free = vec![7i64, 9];
                loop {
                    let sel = mgr.select(vec![
                        Guard::accept("Print").when(|v| {
                            let _ = v;
                            true
                        }),
                        Guard::await_done("Print"),
                    ])?;
                    match sel {
                        Selected::Accepted { call, .. } => {
                            let p = free.pop().expect("printer available");
                            mgr.start(call, vals![], vals![p])?;
                        }
                        Selected::Ready { done, .. } => {
                            let p = done.hidden()[0].as_int()?;
                            free.push(p);
                            mgr.finish_as_is(done)?;
                        }
                        _ => unreachable!(),
                    }
                }
            })
            .spawn(rt)
            .unwrap();
        // Caller passes only the file name; gets no results.
        let out = obj.call("Print", vals!["a.txt"]).unwrap();
        assert!(out.is_empty());
        let out = obj.call("Print", vals!["b.txt"]).unwrap();
        assert!(out.is_empty());
    })
    .unwrap();
    let seen = printers_seen.lock().clone();
    assert_eq!(seen.len(), 2);
    assert!(seen.iter().all(|p| *p == 7 || *p == 9));
}

#[test]
fn combining_answers_without_execution() {
    // Dictionary pattern (paper §2.7.1): identical queries are combined.
    let sim = SimRuntime::new();
    let executions = Arc::new(AtomicUsize::new(0));
    let ex2 = Arc::clone(&executions);
    let (n_starts, n_combines) = sim
        .run(move |rt| {
            let obj = ObjectBuilder::new("Dict")
                .entry(
                    EntryDef::new("Search")
                        .params([Ty::Str])
                        .results([Ty::Str])
                        .array(4)
                        .intercept_params(1)
                        .intercept_results(1)
                        .body(move |ctx, args| {
                            ex2.fetch_add(1, Ordering::SeqCst);
                            ctx.sleep(100); // model dictionary lookup cost
                            Ok(vec![Value::str(format!(
                                "meaning-of-{}",
                                args[0].as_str()?
                            ))])
                        }),
                )
                .manager(|mgr| {
                    // word -> list of calls waiting for that word's answer
                    use std::collections::HashMap;
                    let mut waiting: HashMap<String, Vec<alps_core::AcceptedCall>> = HashMap::new();
                    let mut in_flight: HashMap<usize, String> = HashMap::new();
                    loop {
                        let sel =
                            mgr.select(vec![Guard::accept("Search"), Guard::await_done("Search")])?;
                        match sel {
                            Selected::Accepted { call, .. } => {
                                let word = call.params()[0].as_str()?.to_string();
                                if let Some(q) = waiting.get_mut(&word) {
                                    // Already being searched: combine.
                                    q.push(call);
                                } else {
                                    waiting.insert(word.clone(), Vec::new());
                                    in_flight.insert(call.slot(), word);
                                    mgr.start_as_is(call)?;
                                }
                            }
                            Selected::Ready { done, .. } => {
                                let word = in_flight.remove(&done.slot()).unwrap();
                                let meaning = done.results()[0].clone();
                                let waiters = waiting.remove(&word).unwrap_or_default();
                                mgr.finish_as_is(done)?;
                                for acc in waiters {
                                    mgr.finish_accepted(acc, vec![meaning.clone()])?;
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                })
                .spawn(rt)
                .unwrap();
            // Three concurrent identical queries + one distinct.
            let mut handles = Vec::new();
            for word in ["apple", "apple", "apple", "pear"] {
                let obj2 = obj.clone();
                let rt2 = rt.clone();
                handles.push(rt.spawn_with(Spawn::new(format!("q-{word}")), move || {
                    let _ = rt2;
                    obj2.call("Search", vals![word]).unwrap()[0]
                        .as_str()
                        .unwrap()
                        .to_string()
                }));
            }
            let answers: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(answers[0], "meaning-of-apple");
            assert_eq!(answers[1], "meaning-of-apple");
            assert_eq!(answers[2], "meaning-of-apple");
            assert_eq!(answers[3], "meaning-of-pear");
            (obj.stats().starts(), obj.stats().combines())
        })
        .unwrap();
    // Only two executions (apple once, pear once); two combined replies.
    assert_eq!(executions.load(Ordering::SeqCst), 2);
    assert_eq!(n_starts, 2);
    assert_eq!(n_combines, 2);
}

#[test]
fn combining_requires_full_param_interception() {
    let sim = SimRuntime::new();
    let err = sim
        .run(|rt| {
            let obj = ObjectBuilder::new("Bad")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int, Ty::Int])
                        .results([Ty::Int])
                        .intercept_params(1) // only 1 of 2
                        .body(|_ctx, _| Ok(vec![Value::Int(0)])),
                )
                .manager(|mgr| {
                    let acc = mgr.accept("P")?;
                    // Combining must fail: parameters not fully intercepted.
                    match mgr.finish_accepted(acc, vals![1i64]) {
                        Err(e @ AlpsError::BadCombining { .. }) => Err(e),
                        other => panic!("expected BadCombining, got {other:?}"),
                    }
                })
                .spawn(rt)
                .unwrap();
            let e = obj.call("P", vals![1i64, 2i64]).unwrap_err();
            let me = loop {
                if let Some(me) = obj.manager_error() {
                    break me;
                }
                rt.yield_now();
            };
            (e, me)
        })
        .unwrap();
    // The manager error is surfaced, and the caller was failed when the
    // object shut down (exact error depends on teardown interleaving).
    assert!(matches!(err.1, AlpsError::BadCombining { .. }));
}

#[test]
fn implicit_entries_run_without_manager() {
    let sim = SimRuntime::new();
    let v = sim
        .run(|rt| {
            let obj = ObjectBuilder::new("Plain")
                .entry(
                    EntryDef::new("Status")
                        .results([Ty::Str])
                        .body(|_ctx, _| Ok(vec![Value::str("ok")])),
                )
                .spawn(rt)
                .unwrap();
            obj.call("Status", vals![]).unwrap()[0]
                .as_str()
                .unwrap()
                .to_string()
        })
        .unwrap();
    assert_eq!(v, "ok");
}

#[test]
fn mixed_intercepted_and_implicit_entries() {
    // Paper §2.3: "the flexibility to define entry procedures that are not
    // intercepted by the manager (e.g. a procedure that returns the
    // object's status)".
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Mixed")
            .entry(
                EntryDef::new("Work")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| Ok(vec![args[0].clone()])),
            )
            .entry(
                EntryDef::new("Status")
                    .results([Ty::Str])
                    .body(|_ctx, _| Ok(vec![Value::str("alive")])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Work")?;
                mgr.execute(acc)?;
            })
            .spawn(rt)
            .unwrap();
        assert_eq!(
            obj.call("Status", vals![]).unwrap()[0].as_str().unwrap(),
            "alive"
        );
        assert_eq!(
            obj.call("Work", vals![9i64]).unwrap()[0].as_int().unwrap(),
            9
        );
        assert_eq!(obj.stats().implicit_starts(), 1);
        assert_eq!(obj.stats().starts(), 1);
    })
    .unwrap();
}

#[test]
fn pending_counts_attached_and_queued() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        // Manager that never accepts until told via a channel.
        let gate = alps_core::ChanValue::new("gate", vec![]);
        let gate2 = gate.clone();
        let obj = ObjectBuilder::new("Gated")
            .entry(
                EntryDef::new("P")
                    .array(2)
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .manager(move |mgr| {
                // Wait for the gate, then drain everything.
                mgr.receive(&gate2)?;
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        // Fire 5 calls: 2 attach to slots, 3 queue.
        let mut hs = Vec::new();
        for i in 0..5 {
            let obj2 = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{i}")), move || {
                obj2.call("P", vals![]).unwrap();
            }));
        }
        // Let the callers run until they block.
        for _ in 0..20 {
            rt.yield_now();
        }
        assert_eq!(obj.pending("P").unwrap(), 5);
        gate.send(rt, vals![]).unwrap();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(obj.pending("P").unwrap(), 0);
    })
    .unwrap();
}

#[test]
fn body_failure_reaches_caller_through_finish() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Fragile")
            .entry(
                EntryDef::new("Boom")
                    .intercepted()
                    .body(|_ctx, _| Err::<Vec<Value>, _>(AlpsError::Custom("kapow".into()))),
            )
            .entry(
                EntryDef::new("Panics")
                    .intercepted()
                    .body(|_ctx, _| -> alps_core::Result<Vec<Value>> { panic!("argh") }),
            )
            .manager(|mgr| loop {
                let sel = mgr.select(vec![
                    Guard::accept("Boom"),
                    Guard::accept("Panics"),
                    Guard::await_done("Boom"),
                    Guard::await_done("Panics"),
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => {
                        assert!(done.failure().is_some());
                        mgr.finish_as_is(done)?;
                    }
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        let e = obj.call("Boom", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::BodyFailed { .. }), "{e}");
        assert!(e.to_string().contains("kapow"));
        let e = obj.call("Panics", vals![]).unwrap_err();
        assert!(e.to_string().contains("argh"));
        // The object survives failures.
        assert_eq!(obj.stats().body_failures(), 2);
        assert!(!obj.is_closed());
    })
    .unwrap();
}

#[test]
fn dropping_accepted_call_fails_caller_but_object_survives() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Sloppy")
            .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
            .manager(|mgr| {
                let first = mgr.accept("P")?;
                drop(first); // protocol violation
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::ProtocolViolation { .. }), "{e}");
        // Subsequent calls work.
        obj.call("P", vals![]).unwrap();
    })
    .unwrap();
}

#[test]
fn shutdown_fails_waiting_callers() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Doomed")
            .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
            .manager(|mgr| {
                // Never accept; park until shutdown.
                loop {
                    mgr.select(vec![Guard::cond(false), Guard::accept("Nonexistent")])
                        .map(|_| ())?;
                }
            });
        // Manager references a nonexistent entry: the select errors, the
        // manager dies with UnknownEntry, the object shuts down.
        let handle = obj.spawn(rt).unwrap();
        let e = handle.call("P", vals![]).unwrap_err();
        assert!(
            matches!(e, AlpsError::ObjectClosed { .. }),
            "unexpected: {e}"
        );
        assert!(matches!(
            handle.manager_error(),
            Some(AlpsError::UnknownEntry { .. })
        ));
    })
    .unwrap();
}

#[test]
fn calls_after_shutdown_fail_fast() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = echo_object(rt);
        obj.shutdown();
        let e = obj.call("Echo", vals![1i64]).unwrap_err();
        assert!(matches!(e, AlpsError::ObjectClosed { .. }));
    })
    .unwrap();
}

#[test]
fn local_procedures_not_callable_externally_but_callable_inline() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("WithLocal")
            .entry(
                EntryDef::new("Outer")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .body(|ctx, args| {
                        let r = ctx.call_local("Helper", args)?;
                        Ok(r)
                    }),
            )
            .entry(
                EntryDef::new("Helper")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .local()
                    .body(|_ctx, args| Ok(vec![Value::Int(args[0].as_int()? + 100)])),
            )
            .spawn(rt)
            .unwrap();
        let e = obj.call("Helper", vals![1i64]).unwrap_err();
        assert!(matches!(e, AlpsError::LocalEntryCalled { .. }));
        let v = obj.call("Outer", vals![1i64]).unwrap()[0].as_int().unwrap();
        assert_eq!(v, 101);
    })
    .unwrap();
}

#[test]
fn intercepted_local_procedure_is_scheduled_by_manager() {
    // Paper §2.3: if P and Q call a common local procedure R, the manager
    // can control P and Q even after starting them by intercepting R.
    let sim = SimRuntime::new();
    let r_count = Arc::new(AtomicUsize::new(0));
    let rc = Arc::clone(&r_count);
    sim.run(move |rt| {
        let obj = ObjectBuilder::new("LocalSched")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, _| {
                        let r = ctx.call_local("R", vals![])?;
                        Ok(r)
                    }),
            )
            .entry(
                EntryDef::new("R")
                    .results([Ty::Int])
                    .local()
                    .intercepted()
                    .body(move |_ctx, _| {
                        rc.fetch_add(1, Ordering::SeqCst);
                        Ok(vec![Value::Int(42)])
                    }),
            )
            .pool(PoolMode::PerSlot)
            .manager(|mgr| loop {
                let sel = mgr.select(vec![
                    Guard::accept("P"),
                    Guard::accept("R"),
                    Guard::await_done("P"),
                    Guard::await_done("R"),
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        let v = obj.call("P", vals![]).unwrap()[0].as_int().unwrap();
        assert_eq!(v, 42);
        // R went through the protocol: 2 accepts total (P and R).
        assert_eq!(obj.stats().accepts(), 2);
    })
    .unwrap();
    assert_eq!(r_count.load(Ordering::SeqCst), 1);
}

#[test]
fn hidden_array_allows_parallel_service() {
    // With an array of 3 and a manager that starts calls without awaiting
    // them immediately, three calls are serviced concurrently.
    let sim = SimRuntime::new();
    let (t_total, n) = sim
        .run(|rt| {
            let obj = ObjectBuilder::new("Par")
                .entry(EntryDef::new("Work").array(3).intercepted().body(|ctx, _| {
                    ctx.sleep(1_000);
                    Ok(vec![])
                }))
                .manager(|mgr| loop {
                    let sel = mgr.select(vec![Guard::accept("Work"), Guard::await_done("Work")])?;
                    match sel {
                        Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                        Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                        _ => unreachable!(),
                    }
                })
                .spawn(rt)
                .unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..3 {
                let obj2 = obj.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    obj2.call("Work", vals![]).unwrap();
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            (rt.now() - t0, 3)
        })
        .unwrap();
    let _ = n;
    // Three overlapping 1000-tick jobs finish in ~1000 virtual ticks, not
    // 3000 (they overlap in virtual time).
    assert!(t_total < 2_000, "expected parallel service, took {t_total}");
}

#[test]
fn serial_execute_takes_sum_of_service_times() {
    let sim = SimRuntime::new();
    let t_total = sim
        .run(|rt| {
            let obj = ObjectBuilder::new("Serial")
                .entry(EntryDef::new("Work").array(3).intercepted().body(|ctx, _| {
                    ctx.sleep(1_000);
                    Ok(vec![])
                }))
                .manager(|mgr| loop {
                    let acc = mgr.accept("Work")?;
                    mgr.execute(acc)?; // exclusive: one at a time
                })
                .spawn(rt)
                .unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..3 {
                let obj2 = obj.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    obj2.call("Work", vals![]).unwrap();
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            rt.now() - t0
        })
        .unwrap();
    assert!(t_total >= 3_000, "expected serial service, took {t_total}");
}

#[test]
fn build_errors_are_reported() {
    let rt = Runtime::threaded();
    // Duplicate entries.
    let e = ObjectBuilder::new("X")
        .entry(EntryDef::new("P").body(|_, _| Ok(vec![])))
        .entry(EntryDef::new("P").body(|_, _| Ok(vec![])))
        .spawn(&rt)
        .unwrap_err();
    assert!(e.to_string().contains("duplicate"));
    // Missing body.
    let e = ObjectBuilder::new("X")
        .entry(EntryDef::new("P"))
        .spawn(&rt)
        .unwrap_err();
    assert!(e.to_string().contains("no body"));
    // Intercept without manager.
    let e = ObjectBuilder::new("X")
        .entry(EntryDef::new("P").intercepted().body(|_, _| Ok(vec![])))
        .spawn(&rt)
        .unwrap_err();
    assert!(e.to_string().contains("no manager"));
    // Hidden params without intercept.
    let e = ObjectBuilder::new("X")
        .entry(
            EntryDef::new("P")
                .hidden_params([Ty::Int])
                .body(|_, _| Ok(vec![])),
        )
        .spawn(&rt)
        .unwrap_err();
    assert!(e.to_string().contains("hidden"));
    // Intercept prefix longer than the signature.
    let e = ObjectBuilder::new("X")
        .entry(
            EntryDef::new("P")
                .intercept_params(1)
                .body(|_, _| Ok(vec![])),
        )
        .manager(|_mgr| Ok(()))
        .spawn(&rt)
        .unwrap_err();
    assert!(e.to_string().contains("intercepts"));
    rt.shutdown();
}

#[test]
fn per_call_and_shared_pools_serve_calls() {
    for mode in [PoolMode::PerCall, PoolMode::Shared(2), PoolMode::PerSlot] {
        let sim = SimRuntime::new();
        let ok = sim
            .run(move |rt| {
                let obj = ObjectBuilder::new("Pooled")
                    .entry(
                        EntryDef::new("Echo")
                            .params([Ty::Int])
                            .results([Ty::Int])
                            .array(4)
                            .intercepted()
                            .body(|_ctx, args| Ok(vec![args[0].clone()])),
                    )
                    .pool(mode)
                    .manager(|mgr| loop {
                        let sel =
                            mgr.select(vec![Guard::accept("Echo"), Guard::await_done("Echo")])?;
                        match sel {
                            Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                            Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                            _ => unreachable!(),
                        }
                    })
                    .spawn(rt)
                    .unwrap();
                (0..8i64).all(|i| obj.call("Echo", vals![i]).unwrap()[0].as_int().unwrap() == i)
            })
            .unwrap();
        assert!(ok, "pool mode {mode:?} failed");
    }
}

// ---------------------------------------------------------------------------
// Interned entry ids (`entry_id` / `call_id` fast path)
// ---------------------------------------------------------------------------

#[test]
fn entry_id_resolves_and_unknown_entry_errors() {
    let rt = Runtime::threaded();
    let obj = echo_object(&rt);
    let id = obj.entry_id("Echo").unwrap();
    assert_eq!(id.index(), 0);
    match obj.entry_id("Nope") {
        Err(AlpsError::UnknownEntry { .. }) => {}
        other => panic!("expected UnknownEntry, got {other:?}"),
    }
    obj.shutdown();
    rt.shutdown();
}

#[test]
fn call_id_matches_call_on_managed_and_implicit_entries() {
    let rt = Runtime::threaded();
    // Managed (intercepted) entry.
    let managed = echo_object(&rt);
    let id = managed.entry_id("Echo").unwrap();
    for i in 0..4i64 {
        let by_name = managed.call("Echo", vals![i]).unwrap();
        let by_id = managed.call_id(id, argv![i]).unwrap();
        assert_eq!(by_id, by_name);
    }
    managed.shutdown();
    // Implicit (non-intercepted) entry: the id path takes the inline
    // fast path; results must be identical to the resolving call.
    let plain = ObjectBuilder::new("Plain")
        .entry(
            EntryDef::new("Twice")
                .params([Ty::Int])
                .results([Ty::Int])
                .body(|_ctx, args| Ok(argv![args[0].as_int().unwrap() * 2])),
        )
        .spawn(&rt)
        .unwrap();
    let tid = plain.entry_id("Twice").unwrap();
    for i in 0..4i64 {
        let by_name = plain.call("Twice", vals![i]).unwrap();
        let by_id = plain.call_id(tid, argv![i]).unwrap();
        assert_eq!(by_id, by_name);
        assert_eq!(by_id[0], Value::Int(i * 2));
    }
    plain.shutdown();
    rt.shutdown();
}

#[test]
fn foreign_entry_id_is_a_typed_error_not_a_panic() {
    let rt = Runtime::threaded();
    let a = echo_object(&rt);
    let b = ObjectBuilder::new("Other")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .spawn(&rt)
        .unwrap();
    // An id minted by `a` must be rejected by `b` even though the entry
    // index would be in range there.
    let id = a.entry_id("Echo").unwrap();
    match b.call_id(id, argv![1i64]) {
        Err(AlpsError::ForeignEntryId { .. }) => {}
        other => panic!("expected ForeignEntryId, got {other:?}"),
    }
    // And the id keeps working on its own object afterwards.
    assert_eq!(a.call_id(id, argv![9i64]).unwrap()[0], Value::Int(9));
    a.shutdown();
    b.shutdown();
    rt.shutdown();
}
