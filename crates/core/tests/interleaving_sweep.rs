//! Seeded-interleaving sweep: the call protocol, deadline/cancellation
//! machinery, select semantics, restart sweeps, and lane handoffs under
//! the strategy-driven schedule explorer (`alps_runtime::explore`).
//!
//! Every scenario runs once per (seed, strategy) cell; seeds are split
//! round-robin across the strategy matrix (`random`, `rr`, `pct`,
//! `targeted`). A failing cell is replayed, its commit-point preemption
//! schedule is delta-minimized, and the failure is reported as a
//! `SIM_TRACE=` string that reproduces the exact schedule:
//!
//! ```text
//! SIM_TRACE='targeted:9/3@16' cargo test -p alps-core --test interleaving_sweep
//! ```
//!
//! * `SIM_SEED=<n>` — run only seed `n` (replay mode).
//! * `SIM_SWEEP_SEEDS=<n>` — sweep seeds `0..n` (default 16 as a smoke
//!   test; CI's `sim-sweep` matrix sets 64 per strategy).
//! * `SIM_STRATEGY=<list>` — strategies to sweep: `all` (default) or a
//!   comma list of `fifo`, `random`, `rr`, `pct`, `targeted`.
//! * `SIM_TRACE=<trace>` — skip the sweep and replay one minimized
//!   schedule exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{
    vals, AdmissionPolicy, AlpsError, EntryDef, Guard, ObjectBuilder, RestartPolicy, RetryPolicy,
    Selected, ShardedBuilder, Ty, Value,
};
use alps_runtime::explore::{for_each_policy, sweep_explore};
use alps_runtime::{FaultPlan, SimRuntime, Spawn};

/// The canonical protocol scenario: several callers race deadline-bounded
/// and plain calls against a combining-capable manager. Returns a trace
/// of observable outcomes for the determinism check.
fn protocol_scenario(sim: SimRuntime) -> Vec<String> {
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Swept")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        let v = args[0].as_int()?;
                        // Service time depends on the payload so seeds
                        // shuffle completion order, not just start order.
                        ctx.sleep(20 + (v as u64 % 7) * 30);
                        Ok(vec![Value::Int(v * 2)])
                    }),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("P"), Guard::await_done("P")])? {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        let outcomes: Arc<parking_lot::Mutex<Vec<(i64, String)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for i in 0..8i64 {
            let (o2, out2) = (obj.clone(), Arc::clone(&outcomes));
            joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                // Odd callers use a tight deadline that some schedules
                // satisfy and others do not; even callers always wait.
                let r = if i % 2 == 1 {
                    o2.call_deadline("P", vals![i], 120)
                } else {
                    o2.call("P", vals![i])
                };
                let tag = match r {
                    Ok(vals) => format!("ok:{}", vals[0].as_int().unwrap()),
                    Err(AlpsError::Timeout { .. }) => "timeout".to_string(),
                    Err(e) => panic!("caller {i}: unexpected error {e:?}"),
                };
                out2.lock().push((i, tag));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Invariants that must hold under EVERY schedule.
        let stats = obj.stats();
        assert_eq!(stats.calls(), 8);
        let outs = outcomes.lock();
        assert_eq!(outs.len(), 8, "every caller got exactly one answer");
        for (i, tag) in outs.iter() {
            if *tag != "timeout" {
                assert_eq!(tag, &format!("ok:{}", i * 2), "caller {i} got wrong result");
            }
        }
        let timeouts = outs.iter().filter(|(_, t)| t == "timeout").count() as u64;
        assert_eq!(stats.timeouts(), timeouts);
        // A timed-out Started/Ready cell is eventually tombstoned; a
        // timed-out attached/queued cell is reaped by its caller. Either
        // way reaps account for every undelivered completion.
        assert!(stats.reaps() <= timeouts);
        // Deterministic trace: caller outcomes in completion order.
        let mut trace: Vec<String> = outs.iter().map(|(i, t)| format!("{i}={t}")).collect();
        drop(outs);
        trace.push(format!("t_end={}", rt.now()));
        trace
    })
    .unwrap()
}

#[test]
fn protocol_invariants_hold_across_seeds() {
    sweep_explore("protocol", |sim| {
        protocol_scenario(sim);
    });
}

#[test]
fn same_seed_reproduces_the_same_schedule() {
    for_each_policy("determinism", |_strategy, policy, seed| {
        let a = protocol_scenario(SimRuntime::with_policy(policy));
        let b = protocol_scenario(SimRuntime::with_policy(policy));
        assert_eq!(
            a, b,
            "seed {seed}: two runs of the same seed diverged — the simulator \
             is not deterministic"
        );
    });
}

#[test]
fn select_semantics_hold_across_seeds() {
    // The paper's bounded-buffer guards (§2.4.1) under random scheduling:
    // FIFO per entry, never an admitted Remove on an empty buffer.
    sweep_explore("select", |sim| {
        let got = sim
            .run(|rt| {
                let depth = Arc::new(AtomicU64::new(0));
                let (d_dep, d_rem) = (Arc::clone(&depth), Arc::clone(&depth));
                let n = 3u64;
                let obj = ObjectBuilder::new("Buf")
                    .entry(
                        EntryDef::new("Deposit")
                            .params([Ty::Int])
                            .intercepted()
                            .body(move |_ctx, _args| {
                                let now = d_dep.fetch_add(1, Ordering::SeqCst);
                                assert!(now < n, "deposit admitted into a full buffer");
                                Ok(vec![])
                            }),
                    )
                    .entry(
                        EntryDef::new("Remove")
                            .results([Ty::Int])
                            .intercepted()
                            .body(move |_ctx, _| {
                                let was = d_rem.fetch_sub(1, Ordering::SeqCst);
                                assert!(was > 0, "remove admitted from an empty buffer");
                                Ok(vec![Value::Int(was as i64)])
                            }),
                    )
                    .manager(move |mgr| {
                        let mut count = 0u64;
                        loop {
                            let sel = mgr.select(vec![
                                Guard::accept("Deposit").when(move |_| count < n),
                                Guard::accept("Remove").when(move |_| count > 0),
                            ])?;
                            match sel {
                                Selected::Accepted { guard, call } => {
                                    mgr.execute(call)?;
                                    if guard == 0 {
                                        count += 1;
                                    } else {
                                        count -= 1;
                                    }
                                }
                                _ => unreachable!(),
                            }
                        }
                    })
                    .spawn(rt)
                    .unwrap();
                let mut joins = Vec::new();
                for i in 0..6i64 {
                    let (o2, is_producer) = (obj.clone(), i % 2 == 0);
                    joins.push(rt.spawn_with(Spawn::new(format!("proc{i}")), move || {
                        for k in 0..4i64 {
                            if is_producer {
                                o2.call("Deposit", vals![i * 10 + k]).unwrap();
                            } else {
                                o2.call("Remove", vals![]).unwrap();
                            }
                        }
                    }));
                }
                for j in joins {
                    j.join().unwrap();
                }
                obj.stats().finishes()
            })
            .unwrap();
        assert_eq!(got, 24, "all 24 operations completed");
    });
}

#[test]
fn injected_body_panic_is_caught_and_replayable() {
    // Acceptance scenario: a FaultPlan forces a panic inside the 3rd body
    // execution. Under every schedule the victim caller must observe
    // BodyFailed (never a hang, never a lost cell), the other callers
    // must succeed, and the object must stay usable.
    sweep_explore("fault-injection", |sim| {
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 3));
        sim.run(|rt| {
            let obj = ObjectBuilder::new("Faulty")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|_ctx, args| Ok(vec![args[0].clone()])),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    // The injected panic surfaces through execute as
                    // BodyFailed; keep serving regardless.
                    match mgr.execute(acc) {
                        Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                        Err(e) => return Err(e),
                    }
                })
                .spawn(rt)
                .unwrap();
            let mut failures = 0u32;
            for i in 0..6i64 {
                match obj.call("P", vals![i]) {
                    Ok(r) => assert_eq!(r[0].as_int().unwrap(), i),
                    Err(AlpsError::BodyFailed { message, .. }) => {
                        assert!(
                            message.contains("injected fault: body"),
                            "unexpected failure payload: {message}"
                        );
                        failures += 1;
                    }
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
            assert_eq!(failures, 1, "exactly the 3rd body execution was killed");
            assert_eq!(obj.stats().body_failures(), 1);
        })
        .unwrap();
    });
}

#[test]
fn restart_during_drain_sweeps_cleanly_across_seeds() {
    // Acceptance scenario: an injected panic kills the 3rd body execution
    // of a supervised object while 8 retrying callers are in flight. Under
    // EVERY schedule: each caller eventually succeeds (retry absorbs the
    // transient restart error), every delivered result is tagged with the
    // epoch of the generation that computed it — never a pre-restart
    // value after the sweep — and the object restarts exactly once.
    sweep_explore("restart-during-drain", |sim| {
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 3));
        sim.run(move |rt| {
            // `state_init` bumps the epoch: generation g computes results
            // tagged g*1000.
            let epoch = Arc::new(AtomicU64::new(0));
            let (e_body, e_init) = (Arc::clone(&epoch), Arc::clone(&epoch));
            let obj = ObjectBuilder::new("SweptSup")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(move |ctx, args| {
                            let v = args[0].as_int()?;
                            ctx.sleep(10 + (v as u64 % 5) * 15);
                            let tag = e_body.load(Ordering::SeqCst) as i64;
                            Ok(vec![Value::Int(v * 2 + tag * 1000)])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .supervise(RestartPolicy::AlwaysFresh)
                .state_init(move || {
                    e_init.fetch_add(1, Ordering::SeqCst);
                })
                .spawn(rt)
                .unwrap();
            let mut joins = Vec::new();
            for i in 0..8i64 {
                let o2 = obj.clone();
                joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                    let r = o2
                        .call_retry("P", vals![i], RetryPolicy::new(10, 100_000))
                        .unwrap_or_else(|e| panic!("caller {i}: {e:?}"));
                    let v = r[0].as_int().unwrap();
                    let (tag, base) = (v / 1000, v % 1000);
                    assert_eq!(base, i * 2, "caller {i} got a wrong or torn result");
                    assert!(tag <= 1, "caller {i}: result from impossible epoch {tag}");
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let stats = obj.stats();
            assert_eq!(stats.restarts(), 1, "exactly one restart");
            assert_eq!(obj.generation(), 1);
            assert!(
                stats.retries() >= 1,
                "the panicked call's caller must have retried"
            );
            // Post-restart service keeps working on the same handle.
            let r = obj.call("P", vals![50i64]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 50 * 2 + 1000);
        })
        .unwrap();
    });
}

#[test]
fn restart_with_pooled_bodies_queued_across_seeds() {
    // Acceptance scenario for the shared-pool executor path: a supervised
    // object runs its bodies on a Shared(2) pool behind an array(4) entry,
    // so at the moment the injected panic kills the 3rd body execution
    // there are sibling bodies started-but-unfinished on pool workers and
    // more calls queued behind them. Under EVERY schedule: the restart
    // sweeps the started generation cleanly (no hung caller, no torn
    // result), retrying callers ride out the transient errors, the object
    // restarts exactly once, and the new generation's pool serves again.
    sweep_explore("restart-pooled-drain", |sim| {
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 3));
        sim.run(move |rt| {
            let epoch = Arc::new(AtomicU64::new(0));
            let (e_body, e_init) = (Arc::clone(&epoch), Arc::clone(&epoch));
            let obj = ObjectBuilder::new("SweptPool")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .array(4)
                        .intercepted()
                        .body(move |ctx, args| {
                            let v = args[0].as_int()?;
                            // Spread service times so several bodies are
                            // in flight when the fault fires.
                            ctx.sleep(15 + (v as u64 % 4) * 25);
                            let tag = e_body.load(Ordering::SeqCst) as i64;
                            Ok(vec![Value::Int(v * 2 + tag * 1000)])
                        }),
                )
                .pool(alps_core::PoolMode::Shared(2))
                .manager(|mgr| loop {
                    match mgr.select(vec![Guard::accept("P"), Guard::await_done("P")])? {
                        Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                        Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                        _ => unreachable!(),
                    }
                })
                .supervise(RestartPolicy::AlwaysFresh)
                .state_init(move || {
                    e_init.fetch_add(1, Ordering::SeqCst);
                })
                .spawn(rt)
                .unwrap();
            let mut joins = Vec::new();
            for i in 0..8i64 {
                let o2 = obj.clone();
                joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                    let r = o2
                        .call_retry("P", vals![i], RetryPolicy::new(12, 400_000))
                        .unwrap_or_else(|e| panic!("caller {i}: {e:?}"));
                    let v = r[0].as_int().unwrap();
                    let (tag, base) = (v / 1000, v % 1000);
                    assert_eq!(base, i * 2, "caller {i} got a wrong or torn result");
                    assert!(tag <= 1, "caller {i}: result from impossible epoch {tag}");
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let stats = obj.stats();
            assert_eq!(stats.restarts(), 1, "exactly one restart");
            assert_eq!(obj.generation(), 1);
            assert!(
                stats.retries() >= 1,
                "at least the panicked call's caller retried"
            );
            // The fresh generation's pool executes bodies again.
            let r = obj.call("P", vals![30i64]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 30 * 2 + 1000);
            assert!(obj.pool_jobs_executed() >= 1);
        })
        .unwrap();
    });
}

#[test]
fn combined_retirement_races_restart_sweep_across_seeds() {
    // Shard-combining leader/follower retirement racing the restart
    // sweep: six callers issue waves of same-key combined reads against
    // a 2-shard supervised group while an injected panic kills the 3rd
    // body execution. The interesting window — the one TargetedRace
    // preempts into — is a leader holding a combining cell when the
    // sweep fails its in-flight call: the leader must publish the error
    // to its followers (never park them forever), the combining map must
    // drop the cell so a retry can re-lead, and the owner shard must
    // come back. Under EVERY schedule: all callers eventually succeed,
    // the group restarts exactly once, and combining still works after
    // the sweep.
    sweep_explore("combined-vs-restart", |sim| {
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 3));
        sim.run(move |rt| {
            let group = ShardedBuilder::new("ComboSup", 2)
                .spawn(rt, |i| {
                    ObjectBuilder::new(format!("ComboSup{i}"))
                        .entry(
                            EntryDef::new("Get")
                                .params([Ty::Int])
                                .results([Ty::Int])
                                .intercepted()
                                .body(|ctx, args| {
                                    let v = args[0].as_int()?;
                                    // Bodies outlast the largest commit-point
                                    // preemption delay (64 ticks) so same-key
                                    // rivals reliably arrive while the leader
                                    // is still executing.
                                    ctx.sleep(40 + (v as u64 % 3) * 20);
                                    Ok(vec![Value::Int(v * 2)])
                                }),
                        )
                        .manager(|mgr| loop {
                            let acc = mgr.accept("Get")?;
                            mgr.execute(acc)?;
                        })
                        .supervise(RestartPolicy::AlwaysFresh)
                })
                .unwrap();
            let gid = group.entry_id("Get").unwrap();
            let mut joins = Vec::new();
            for c in 0..6i64 {
                let (g2, rt2) = (group.clone(), rt.clone());
                joins.push(rt.spawn_with(Spawn::new(format!("combo{c}")), move || {
                    for w in 0..3i64 {
                        // Same key per wave across all callers, so each
                        // wave is one combinable burst.
                        let key = (w + 1) * 10;
                        let mut attempts = 0u32;
                        let r = loop {
                            match g2.call_id_combined(gid, vals![key]) {
                                Ok(r) => break r,
                                // Transients of the restart window: the
                                // leader's own failed call (BodyFailed),
                                // a follower's cloned copy of it, calls
                                // refused mid-sweep (ObjectRestarting),
                                // and a follower whose leader unwound
                                // (reported as ObjectClosed).
                                Err(AlpsError::BodyFailed { .. })
                                | Err(AlpsError::ObjectRestarting { .. })
                                | Err(AlpsError::ObjectClosed { .. }) => {
                                    attempts += 1;
                                    assert!(
                                        attempts <= 32,
                                        "caller {c} wave {w}: retries exhausted"
                                    );
                                    rt2.sleep(25);
                                }
                                Err(e) => panic!("caller {c} wave {w}: {e:?}"),
                            }
                        };
                        assert_eq!(r[0].as_int().unwrap(), key * 2, "caller {c} wave {w}");
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let stats = group.stats();
            assert_eq!(
                stats.restarts, 1,
                "exactly the injected panic restarted (summed across shards)"
            );
            assert!(
                stats.combined_follows >= 1,
                "same-key waves against slow bodies must combine at least once"
            );
            assert!(
                stats.combined_leads + stats.combined_follows >= 18,
                "every wave call either led or followed"
            );
            // The combining map is clean after the storm: a fresh
            // combined read leads, executes post-restart, and succeeds.
            let r = group.call_combined("Get", vals![777i64]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 777 * 2);
        })
        .unwrap();
    });
}

#[test]
fn shed_under_storm_bounds_intake_across_seeds() {
    // Acceptance scenario: 16 callers storm a ShedNewest object whose
    // intake holds 4. Under EVERY schedule: no caller ever hangs, every
    // refusal is an immediate `Overloaded` counted by the stats, every
    // admitted call completes with the right result, and the object ends
    // the storm alive.
    sweep_explore("shed-under-storm", |sim| {
        sim.run(move |rt| {
            let obj = ObjectBuilder::new("StormShed")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            ctx.sleep(40);
                            Ok(vec![args[0].clone()])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .admission(AdmissionPolicy::ShedNewest)
                .intake_capacity(4)
                .spawn(rt)
                .unwrap();
            let tallies: Arc<parking_lot::Mutex<(u64, u64)>> =
                Arc::new(parking_lot::Mutex::new((0, 0)));
            let mut joins = Vec::new();
            for i in 0..16i64 {
                let (o2, t2) = (obj.clone(), Arc::clone(&tallies));
                joins.push(rt.spawn_with(Spawn::new(format!("storm{i}")), move || {
                    for k in 0..2i64 {
                        match o2.call("P", vals![i * 10 + k]) {
                            Ok(r) => {
                                assert_eq!(r[0].as_int().unwrap(), i * 10 + k);
                                t2.lock().0 += 1;
                            }
                            Err(AlpsError::Overloaded { .. }) => t2.lock().1 += 1,
                            Err(e) => panic!("storm caller {i}: {e:?}"),
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let (ok, shed) = *tallies.lock();
            assert_eq!(ok + shed, 32, "every call was answered — no hangs");
            assert!(ok >= 1, "admitted work is served even mid-storm");
            assert!(shed >= 1, "16 callers against capacity 4 must shed");
            let stats = obj.stats();
            assert_eq!(stats.sheds(), shed, "stats account for every refusal");
            assert_eq!(stats.finishes(), ok, "every admitted call completed");
            assert!(!obj.is_closed(), "the storm never killed the object");
        })
        .unwrap();
    });
}

#[test]
fn lane_promotion_races_a_second_producer_across_seeds() {
    // Acceptance scenario for the SPSC fast lane: two callers hammer a
    // lane-eligible entry from the very first call with the promotion
    // threshold at 1, so every drain pass is a promotion opportunity and
    // every pop of the non-owner is a demotion trigger. Under EVERY
    // schedule: all calls complete with the right result, at least one
    // promotion happens (the first non-empty drain pass promotes whoever
    // it popped last), and the owner word never leaks — promotions and
    // demotions stay balanced to within the one lane that may still be
    // held at the end.
    sweep_explore("lane-promotion-race", |sim| {
        sim.run(move |rt| {
            let obj = ObjectBuilder::new("LaneRace")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            let v = args[0].as_int()?;
                            // Spread service times so seeds shuffle how
                            // many of each caller's pushes share a drain
                            // batch with the rival's.
                            ctx.sleep(5 + (v as u64 % 3) * 10);
                            Ok(vec![Value::Int(v * 2)])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .lane_promote_after(1)
                .spawn(rt)
                .unwrap();
            let mut joins = Vec::new();
            for i in 0..2i64 {
                let o2 = obj.clone();
                joins.push(rt.spawn_with(Spawn::new(format!("producer{i}")), move || {
                    for k in 0..8i64 {
                        let v = i * 100 + k;
                        let r = o2.call("P", vals![v]).unwrap();
                        assert_eq!(r[0].as_int().unwrap(), v * 2, "producer {i} call {k}");
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let stats = obj.stats();
            assert_eq!(stats.calls(), 16);
            assert_eq!(
                stats.finishes(),
                16,
                "no call lost across the lane handoffs"
            );
            assert!(
                stats.lane_promotes() >= 1,
                "threshold 1 must promote on the first drained call"
            );
            // Demotion is the only way the owner word frees before
            // shutdown, so the two counters bound each other: every
            // demote released a promoted lane, and at most one
            // promotion can still be outstanding.
            assert!(stats.lane_demotes() <= stats.lane_promotes());
            assert!(stats.lane_promotes() <= stats.lane_demotes() + 1);
        })
        .unwrap();
    });
}

#[test]
fn lane_demotion_during_drain_keeps_every_call_across_seeds() {
    // Acceptance scenario: a solo caller earns the lane (phase 1), then
    // keeps streaming while a competitor storms the shared ring (phase
    // 2). The drain loop must detect the competition mid-stream —
    // possibly with the owner's next push already in the lane — release
    // the lane, and serve both queues without losing, duplicating, or
    // reordering anyone's calls. Under EVERY schedule: phase 1 promotes,
    // phase 2 demotes at least once, every call completes correctly, and
    // the object still serves after the storm.
    sweep_explore("lane-demotion-during-drain", |sim| {
        sim.run(move |rt| {
            let obj = ObjectBuilder::new("LaneDemote")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            let v = args[0].as_int()?;
                            ctx.sleep(5 + (v as u64 % 3) * 10);
                            Ok(vec![Value::Int(v * 2)])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .lane_promote_after(1)
                .spawn(rt)
                .unwrap();
            // One task plays the owner through both phases so its pid —
            // the one the warmup promoted — is the pid still pushing
            // (now through the lane) when the rival's ring traffic
            // forces the demotion.
            let warmed = Arc::new(AtomicU64::new(0));
            let mut joins = Vec::new();
            {
                let (o2, w2) = (obj.clone(), Arc::clone(&warmed));
                joins.push(rt.spawn_with(Spawn::new("owner".to_string()), move || {
                    // Phase 1 (solo): the drain pass that classifies the
                    // first call already sees a streak of 1 and
                    // promotes, so the lane is earned before the flag.
                    for k in 0..4i64 {
                        let r = o2.call("P", vals![k]).unwrap();
                        assert_eq!(r[0].as_int().unwrap(), k * 2);
                    }
                    w2.store(1, Ordering::SeqCst);
                    // Phase 2: keep streaming over the earned lane.
                    for k in 0..8i64 {
                        let v = 1000 + k;
                        let r = o2.call("P", vals![v]).unwrap();
                        assert_eq!(r[0].as_int().unwrap(), v * 2, "owner call {k}");
                    }
                }));
            }
            {
                let (o2, w2, rt2) = (obj.clone(), Arc::clone(&warmed), rt.clone());
                joins.push(rt.spawn_with(Spawn::new("rival".to_string()), move || {
                    // Virtual sleep, not yield: a yield-spinner is always
                    // runnable, and the sim clock only advances when
                    // nothing is — the bodies' sleeps would never fire.
                    while w2.load(Ordering::SeqCst) == 0 {
                        rt2.sleep(7);
                    }
                    for k in 0..8i64 {
                        let v = 2000 + k;
                        let r = o2.call("P", vals![v]).unwrap();
                        assert_eq!(r[0].as_int().unwrap(), v * 2, "rival call {k}");
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert!(
                obj.stats().lane_promotes() >= 1,
                "solo streak with threshold 1 must have promoted"
            );
            let stats = obj.stats();
            assert_eq!(stats.calls(), 20);
            assert_eq!(stats.finishes(), 20, "competition never loses a call");
            // The rival's ring pops either found the lane held (foreign
            // pop → demote) or found it already released by an idle
            // sweep — and both paths count a demotion.
            assert!(
                stats.lane_demotes() >= 1,
                "a competing producer must force at least one demotion"
            );
            assert!(stats.lane_demotes() <= stats.lane_promotes());
            assert!(stats.lane_promotes() <= stats.lane_demotes() + 1);
            // The object is in a servable state whoever holds the lane.
            let r = obj.call("P", vals![7i64]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 14);
        })
        .unwrap();
    });
}

#[test]
fn restart_sweep_fails_lane_held_cells_across_seeds() {
    // Acceptance scenario: a supervised object whose dominant caller owns
    // the fast lane is killed by an injected body panic while both it and
    // a rival have calls in flight — so at sweep time the lane may hold a
    // pushed-but-undrained cell. The restart sweep must fail lane-held
    // cells exactly like ring-held ones (transient, retryable) and
    // release the owner word so the post-restart world re-earns the lane
    // from scratch. Under EVERY schedule: every caller eventually
    // succeeds through its retry policy, the object restarts exactly
    // once, and a sequential caller can re-earn the lane afterwards.
    sweep_explore("restart-sweeps-lane", |sim| {
        // Bodies 1-4 are the warmup; the 6th body execution lands inside
        // the concurrent phase, with the rival's or the owner's next
        // call possibly sitting in the lane or ring.
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 6));
        sim.run(move |rt| {
            let obj = ObjectBuilder::new("LaneRestart")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            let v = args[0].as_int()?;
                            ctx.sleep(5 + (v as u64 % 4) * 10);
                            Ok(vec![Value::Int(v * 2)])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .supervise(RestartPolicy::AlwaysFresh)
                .lane_promote_after(1)
                .spawn(rt)
                .unwrap();
            // Warmup: the owner earns the lane before the fault window.
            let o2 = obj.clone();
            rt.spawn_with(Spawn::new("owner-warmup".to_string()), move || {
                for k in 0..4i64 {
                    let r = o2.call("P", vals![k]).unwrap();
                    assert_eq!(r[0].as_int().unwrap(), k * 2);
                }
            })
            .join()
            .unwrap();
            assert!(obj.stats().lane_promotes() >= 1);
            // Concurrent phase: the 6th body panic fires somewhere in
            // here. Retry absorbs the transient restart failures —
            // including a cell the sweep pulled straight out of the lane.
            let mut joins = Vec::new();
            for (name, base) in [("owner", 1000i64), ("rival", 2000i64)] {
                let o2 = obj.clone();
                joins.push(rt.spawn_with(Spawn::new(name.to_string()), move || {
                    for k in 0..4i64 {
                        let v = base + k;
                        let r = o2
                            .call_retry("P", vals![v], RetryPolicy::new(12, 400_000))
                            .unwrap_or_else(|e| panic!("{name} call {k}: {e:?}"));
                        assert_eq!(r[0].as_int().unwrap(), v * 2, "{name} call {k}");
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let stats = obj.stats();
            assert_eq!(stats.restarts(), 1, "exactly the injected panic restarted");
            assert_eq!(obj.generation(), 1);
            // The sweep released the owner word, so a sequential caller
            // can re-earn the lane in the new generation: with threshold
            // 1 the second call promotes even if the first pop still had
            // to demote a stale pre-restart owner.
            let before = stats.lane_promotes();
            for k in 0..3i64 {
                let r = obj.call("P", vals![500 + k]).unwrap();
                assert_eq!(r[0].as_int().unwrap(), (500 + k) * 2);
            }
            assert!(
                obj.stats().lane_promotes() > before.max(1),
                "the post-restart generation re-earns the lane"
            );
        })
        .unwrap();
    });
}

#[test]
fn injected_intake_drop_is_rescued_by_the_deadline() {
    // Drop the very first intake publish: the call never reaches the
    // manager, so only the caller's deadline can answer it. The second
    // call must go through untouched.
    sweep_explore("drop-rescue", |sim| {
        sim.set_fault_plan(FaultPlan::new().drop_at("intake_push", 1));
        sim.run(|rt| {
            let obj = ObjectBuilder::new("Lossy")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|_ctx, args| Ok(vec![args[0].clone()])),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .spawn(rt)
                .unwrap();
            let err = obj.call_deadline("P", vals![1i64], 300).unwrap_err();
            assert!(matches!(err, AlpsError::Timeout { .. }), "{err:?}");
            let r = obj.call_deadline("P", vals![2i64], 300).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 2);
            assert_eq!(obj.stats().timeouts(), 1);
        })
        .unwrap();
    });
}
