//! Stress tests for the lock-free call-intake ring: many producers
//! hammering one managed object, shutdown mid-storm, and the FIFO
//! guarantee the batch drain must preserve.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use alps_core::{
    argv, vals, AlpsError, EntryDef, Guard, ObjectBuilder, ObjectHandle, Selected, Ty,
};
use alps_runtime::{Priority, Runtime, SimRuntime, Spawn};

/// A managed echo object: the manager accepts and executes each call, so
/// every reply must equal its own argument — any misrouted or corrupted
/// reply shows up as a value mismatch.
fn echo_object(rt: &Runtime, slots: usize) -> ObjectHandle {
    ObjectBuilder::new("Stress")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .array(slots)
                .intercepted()
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Echo")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

const PRODUCERS: i64 = 16;

/// Tag every call with a value unique across all producers so a reply
/// delivered to the wrong caller can never look correct.
fn tag(producer: i64, seq: i64) -> i64 {
    producer * 1_000_000 + seq
}

/// 16 producers, mixed `call`/`call_id`, no shutdown: every call must
/// come back with its own payload, and the intake must drain completely.
#[test]
fn contended_intake_no_lost_or_misrouted_replies() {
    const PER: i64 = 200;
    let rt = Runtime::threaded();
    let obj = echo_object(&rt, 4);
    let id = obj.entry_id("Echo").unwrap();

    let mut hs = Vec::new();
    for p in 0..PRODUCERS {
        let obj2 = obj.clone();
        hs.push(rt.spawn_with(Spawn::new(format!("prod{p}")), move || {
            for i in 0..PER {
                let want = tag(p, i);
                // Alternate the resolving and the interned entry paths.
                let got = if i % 2 == 0 {
                    obj2.call_id(id, argv![want]).unwrap()[0].as_int().unwrap()
                } else {
                    obj2.call("Echo", vals![want]).unwrap()[0].as_int().unwrap()
                };
                assert_eq!(got, want, "misrouted reply for producer {p} seq {i}");
            }
        }));
    }
    for h in hs {
        h.join().unwrap();
    }

    let total = (PRODUCERS * PER) as u64;
    let stats = obj.stats();
    assert_eq!(stats.calls(), total, "lost calls");
    assert_eq!(stats.finishes(), total, "lost or duplicated replies");
    // Clean drain: nothing attached, queued, or stuck in the ring.
    assert_eq!(obj.pending("Echo").unwrap(), 0);
    // The batch counters actually saw the traffic: the per-drain batch
    // sizes must sum back to the number of intercepted calls.
    let h = stats.drain_batch();
    let drained_sum = (h.mean() * h.count() as f64).round() as u64;
    assert_eq!(drained_sum, total);
    assert!(stats.mgr_wakeups() > 0);

    obj.shutdown();
    rt.shutdown();
}

/// 16 producers with a shutdown fired mid-storm: each producer's
/// successful calls must form a prefix of its sequence (once one call
/// fails with `ObjectClosed`, no later call may succeed), every success
/// echoes its own payload, and the ring drains to zero.
#[test]
fn shutdown_mid_storm_fails_cleanly_without_losing_replies() {
    const PER: i64 = 5_000;
    let rt = Runtime::threaded();
    let obj = echo_object(&rt, 4);
    let id = obj.entry_id("Echo").unwrap();
    let started = Arc::new(AtomicBool::new(false));

    let mut hs = Vec::new();
    for p in 0..PRODUCERS {
        let obj2 = obj.clone();
        let started2 = Arc::clone(&started);
        hs.push(rt.spawn_with(Spawn::new(format!("prod{p}")), move || {
            let mut ok = 0i64;
            let mut failed = 0i64;
            for i in 0..PER {
                started2.store(true, Ordering::SeqCst);
                let want = tag(p, i);
                let res = if i % 2 == 0 {
                    obj2.call_id(id, argv![want])
                } else {
                    obj2.call("Echo", vals![want]).map(Into::into)
                };
                match res {
                    Ok(vals) => {
                        assert_eq!(
                            vals[0].as_int().unwrap(),
                            want,
                            "misrouted reply for producer {p} seq {i}"
                        );
                        assert_eq!(
                            failed, 0,
                            "success after ObjectClosed (producer {p} seq {i})"
                        );
                        ok += 1;
                    }
                    Err(AlpsError::ObjectClosed { .. }) => failed += 1,
                    Err(e) => panic!("unexpected error for producer {p} seq {i}: {e}"),
                }
            }
            (ok, failed)
        }));
    }

    // Let the storm build, then pull the plug while calls are in flight.
    while !started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    obj.shutdown();

    let mut total_ok = 0i64;
    let mut total_failed = 0i64;
    for h in hs {
        let (ok, failed) = h.join().unwrap();
        total_ok += ok;
        total_failed += failed;
    }
    // Every call was answered exactly once — success or ObjectClosed.
    assert_eq!(total_ok + total_failed, PRODUCERS * PER);
    assert!(total_ok > 0, "shutdown fired before any call completed");
    assert!(total_failed > 0, "shutdown fired after the storm ended");
    // Clean drain: the ring and the per-entry lists are empty.
    assert_eq!(obj.pending("Echo").unwrap(), 0);
    rt.shutdown();
}

/// Batch drain preserves per-entry FIFO: six producers run at a sim
/// priority *above* the manager's, so all six calls pile up in the
/// intake ring before the manager gets a turn; its first select then
/// drains them in one batch, and `accept` must observe exactly the push
/// order.
#[test]
fn batch_drain_preserves_accept_fifo_order() {
    const CALLERS: i64 = 6;
    let sim = SimRuntime::new();
    let (order, max_batch) = sim
        .run(|rt| {
            let log: Arc<parking_lot::Mutex<Vec<i64>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let log2 = Arc::clone(&log);
            let obj = ObjectBuilder::new("Fifo")
                .entry(
                    EntryDef::new("Echo")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercept_params(1)
                        .body(|_ctx, args| Ok(argv![args[0].clone()])),
                )
                .manager(move |mgr| loop {
                    match mgr.select(vec![Guard::accept("Echo")])? {
                        Selected::Accepted { call, .. } => {
                            log2.lock().push(call.params()[0].as_int()?);
                            mgr.execute(call)?;
                        }
                        _ => unreachable!(),
                    }
                })
                .spawn(rt)
                .unwrap();
            let mut hs = Vec::new();
            for i in 0..CALLERS {
                let obj2 = obj.clone();
                hs.push(rt.spawn_with(
                    Spawn::new(format!("c{i}")).prio(Priority(-20)),
                    move || {
                        obj2.call("Echo", vals![i]).unwrap();
                    },
                ));
            }
            for h in hs {
                h.join().unwrap();
            }
            let order = log.lock().clone();
            (order, obj.stats().drain_batch().max())
        })
        .unwrap();
    // Accept order == ring push order == sim spawn order.
    assert_eq!(order, (0..CALLERS).collect::<Vec<_>>());
    // All six calls arrived in a single drained batch.
    assert!(
        max_batch >= CALLERS as u64,
        "expected one big batch, got max_batch={max_batch}"
    );
}

/// One producer issuing strictly sequential calls must see them accepted
/// in issue order under the threaded runtime too (per-producer FIFO
/// through the ring, the drain, and the waitq).
#[test]
fn per_producer_fifo_threaded() {
    const PER: i64 = 300;
    let rt = Runtime::threaded();
    let log: Arc<parking_lot::Mutex<Vec<i64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let obj = ObjectBuilder::new("Fifo")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercept_params(1)
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .manager(move |mgr| loop {
            let acc = mgr.accept("Echo")?;
            log2.lock().push(acc.params()[0].as_int()?);
            mgr.execute(acc)?;
        })
        .spawn(&rt)
        .unwrap();
    for i in 0..PER {
        obj.call("Echo", vals![i]).unwrap();
    }
    assert_eq!(*log.lock(), (0..PER).collect::<Vec<_>>());
    obj.shutdown();
    rt.shutdown();
}
