//! Strategy-level regression tests for the schedule explorer: decision
//! traces are deterministic per (seed, strategy), strategies genuinely
//! diverge on the same seed, fault injection composes with preemption
//! strategies without lost wakeups, TargetedRace out-explores random
//! picking on the coverage metric, and the trace shrinker hands back a
//! minimized schedule that reproduces on the first replay.
//!
//! These tests pin their own seeds and strategies (they are about the
//! explorer itself), so they ignore `SIM_SEED`/`SIM_STRATEGY`.

use std::collections::HashSet;
use std::panic::AssertUnwindSafe;

use alps_core::{vals, AlpsError, EntryDef, ObjectBuilder, Ty, Value};
use alps_runtime::explore::{policy_for, shrink_preemptions, STRATEGY_MATRIX};
use alps_runtime::{FaultPlan, SchedPolicy, SimRuntime, Spawn, TraceSpec};

/// A commit-point-churning scenario: three same-priority callers (one
/// deadline-bounded) drive intake pushes, ring drains, finish/cancel
/// CASes, and lane promotions. Small enough to run hundreds of times,
/// racy enough that schedules actually differ.
fn churn(sim: SimRuntime) -> (u64, u64) {
    let probe = sim.probe();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Churn")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        let v = args[0].as_int()?;
                        ctx.sleep(10 + (v as u64 % 3) * 10);
                        Ok(vec![Value::Int(v * 2)])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.execute(acc)?;
            })
            .lane_promote_after(2)
            .spawn(rt)
            .unwrap();
        let mut joins = Vec::new();
        for i in 0..3i64 {
            let (o2, rt2) = (obj.clone(), rt.clone());
            joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                // Seed-dependent arrival jitter (drawn from the sim's own
                // seeded stream) so the commit-point sequence varies with
                // the seed even under pure pick randomization — the
                // callers are otherwise symmetric and a pick among them
                // would not change the coverage ordering at all.
                if i == 2 {
                    rt2.sleep((rt2.rand_u64() % 8) * 10 + 1);
                }
                for k in 0..2i64 {
                    let v = i * 10 + k;
                    // Caller 1 uses a deadline that preemption delays can
                    // push past — both outcomes are legal, and the
                    // cancel path exercises the finish-vs-cancel CAS.
                    let r = if i == 1 {
                        o2.call_deadline("P", vals![v], 80)
                    } else {
                        o2.call("P", vals![v])
                    };
                    match r {
                        Ok(out) => assert_eq!(out[0].as_int().unwrap(), v * 2),
                        Err(AlpsError::Timeout { .. }) => assert_eq!(i, 1),
                        Err(e) => panic!("caller {i}: {e:?}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    })
    .unwrap();
    (probe.decision_hash(), probe.coverage_hash())
}

/// Satellite: the same (seed, strategy) cell must replay byte-identically
/// — the decision-trace hash covers every grant, every commit-point
/// event, and every preemption tick.
#[test]
fn same_seed_and_strategy_hash_identically() {
    for strategy in ["fifo", "random", "rr", "pct", "targeted"] {
        for seed in [3u64, 11] {
            let a = churn(SimRuntime::with_policy(policy_for(strategy, seed)));
            let b = churn(SimRuntime::with_policy(policy_for(strategy, seed)));
            assert_eq!(
                a, b,
                "strategy `{strategy}` seed {seed}: decision/coverage hashes diverged \
                 across two runs of the same cell"
            );
        }
    }
}

/// Satellite: different strategies on the same seed must explore
/// different schedules. A single seed can coincide for a low-probability
/// strategy (pct fires no preemption on many seeds, degenerating to
/// fifo), so the claim is over each strategy's hash *vector* across a
/// seed range: no two strategies may produce the same vector.
#[test]
fn strategies_diverge_on_equal_seeds() {
    let strategies = ["fifo", "random", "rr", "pct", "targeted"];
    let mut vectors: Vec<(&str, Vec<u64>)> = Vec::new();
    for strategy in strategies {
        let v: Vec<u64> = (0..8u64)
            .map(|seed| churn(SimRuntime::with_policy(policy_for(strategy, seed))).0)
            .collect();
        vectors.push((strategy, v));
    }
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            assert_ne!(
                vectors[i].1, vectors[j].1,
                "strategies `{}` and `{}` produced identical decision traces on \
                 every probe seed — they are not exploring distinct schedules",
                vectors[i].0, vectors[j].0
            );
        }
    }
}

/// Satellite: fault injection composes with preemption strategies. An
/// injected delay in the manager's drain classification — the window
/// where a pushed call is popped but not yet attached — combined with
/// PCT preemptions at the surrounding commit points must never lose a
/// caller's wakeup: every plain caller resolves (a lost wakeup would
/// park it forever and surface as a sim deadlock, failing `run`), and
/// every deadline caller resolves within its generous budget.
#[test]
fn drain_delay_under_preemption_bounded_resolves_every_caller() {
    for seed in 0..64u64 {
        let sim = SimRuntime::with_policy(SchedPolicy::PreemptionBounded { seed, bound: 8 });
        sim.set_fault_plan(FaultPlan::new().delay("drain", 1, 150));
        sim.run(|rt| {
            let obj = ObjectBuilder::new("DelayedDrain")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            ctx.sleep(10);
                            Ok(vec![args[0].clone()])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                })
                .spawn(rt)
                .unwrap();
            let mut joins = Vec::new();
            for i in 0..6i64 {
                let o2 = obj.clone();
                joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                    let r = if i % 2 == 1 {
                        // The budget dwarfs the injected 150-tick delay
                        // plus any preemption stack, so a timeout here
                        // would itself be a liveness failure.
                        o2.call_deadline("P", vals![i], 5_000)
                    } else {
                        o2.call("P", vals![i])
                    };
                    let out = r.unwrap_or_else(|e| panic!("caller {i}: {e:?}"));
                    assert_eq!(out[0].as_int().unwrap(), i);
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(obj.stats().finishes(), 6, "every caller resolved");
        })
        .unwrap();
    }
}

/// Number of distinct commit-point orderings `strategy` reaches on the
/// churn scenario across `seeds` seeds.
fn distinct_orderings(strategy: &str, seeds: u64) -> usize {
    let mut seen = HashSet::new();
    for seed in 0..seeds {
        let (_, cov) = churn(SimRuntime::with_policy(policy_for(strategy, seed)));
        seen.insert(cov);
    }
    seen.len()
}

/// Acceptance gate: at equal seed count, TargetedRace must reach at
/// least twice the distinct commit-point orderings of PriorityRandom,
/// and PriorityRandom itself must not regress below its recorded
/// baseline (the floor CI fails on).
#[test]
fn targeted_race_doubles_random_coverage() {
    // Recorded baseline for PriorityRandom on the churn scenario at 64
    // seeds (measured 4 at introduction, targeted measured 61; see
    // DESIGN.md "Schedule exploration"). Kept deliberately below the
    // measured value so only a real coverage regression — not hash-set
    // noise — trips it.
    const RANDOM_BASELINE_FLOOR: usize = 3;
    let random = distinct_orderings("random", 64);
    let targeted = distinct_orderings("targeted", 64);
    eprintln!("SIM_COVERAGE scenario=churn strategy=random seeds=64 distinct_orderings={random}");
    eprintln!(
        "SIM_COVERAGE scenario=churn strategy=targeted seeds=64 distinct_orderings={targeted}"
    );
    assert!(
        random >= RANDOM_BASELINE_FLOOR,
        "PriorityRandom coverage regressed: {random} distinct orderings < \
         recorded floor {RANDOM_BASELINE_FLOOR}"
    );
    assert!(
        targeted >= 2 * random,
        "TargetedRace must at least double PriorityRandom's distinct \
         commit-point orderings at equal seed count: targeted={targeted} random={random}"
    );
}

/// A deadline so tight that it only fails when commit-point preemptions
/// stack inside the call window — the planted schedule-dependent bug for
/// the shrinker test below.
fn fragile_deadline(sim: SimRuntime) {
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Fragile")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(10);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.execute(acc)?;
            })
            .spawn(rt)
            .unwrap();
        // Two calls so several intake/drain commit points land inside
        // deadline windows; 60 ticks absorbs the 10-tick body plus
        // protocol overhead but not a stacked preemption delay.
        for k in 0..2i64 {
            let r = obj.call_deadline("P", vals![k], 60);
            assert!(r.is_ok(), "deadline missed under preemption: {r:?}");
        }
    })
    .unwrap();
}

/// Acceptance: a seeded schedule-dependent failure is delta-minimized to
/// a `SIM_TRACE` that reproduces on the FIRST replay, and the trace
/// string round-trips through parse.
#[test]
fn shrinker_minimizes_a_failing_schedule_to_a_replaying_trace() {
    // Hunt a failing cell under TargetedRace. The scenario is fragile by
    // construction, so a failure shows up within a few seeds.
    let mut found = None;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for seed in 0..256u64 {
        let policy = SchedPolicy::TargetedRace(seed);
        let sim = SimRuntime::with_policy(policy);
        let probe = sim.probe();
        if std::panic::catch_unwind(AssertUnwindSafe(|| fragile_deadline(sim))).is_err() {
            found = Some(TraceSpec {
                policy,
                preemptions: probe.preemptions(),
            });
            break;
        }
    }
    let full = found.expect("no TargetedRace seed in 0..256 broke the fragile deadline");
    assert!(
        !full.preemptions.is_empty(),
        "a fragile-deadline failure without preemptions cannot be schedule-dependent"
    );
    let mut fails = |spec: &TraceSpec| {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            fragile_deadline(SimRuntime::with_trace(spec))
        }))
        .is_err()
    };
    assert!(fails(&full), "the recorded full trace must reproduce");
    let min = shrink_preemptions(&full, &mut fails);
    std::panic::set_hook(prev_hook);
    assert!(min.preemptions.len() <= full.preemptions.len());
    assert!(
        !min.preemptions.is_empty(),
        "removing every preemption cannot still fail"
    );
    // The replay contract, end to end through the printed string: parse
    // the SIM_TRACE line back and it must fail on the first replay.
    let reparsed = TraceSpec::parse(&min.to_string()).expect("minimized trace reparses");
    assert_eq!(reparsed.policy, min.policy);
    assert_eq!(reparsed.preemptions, min.preemptions);
    let replay_fails = |spec: &TraceSpec| {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            fragile_deadline(SimRuntime::with_trace(spec))
        }))
        .is_err()
    };
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reproduced = replay_fails(&reparsed);
    std::panic::set_hook(prev_hook);
    assert!(
        reproduced,
        "minimized SIM_TRACE must fail on the first replay"
    );
}

/// The default strategy matrix stays in sync with the policies it names
/// (CI's sim-sweep matrix axes are generated from this list).
#[test]
fn strategy_matrix_tokens_resolve() {
    for s in STRATEGY_MATRIX {
        let p = policy_for(s, 9);
        assert_eq!(p.strategy_name(), s, "matrix token `{s}` maps to {p:?}");
    }
}
