//! Supervision: restart policies, overload shedding, and caller-side
//! retry/backoff.
//!
//! Each test runs on the deterministic simulation runtime so restart and
//! shed timing windows are replayable; the seeded-interleaving sweeps in
//! `interleaving_sweep.rs` additionally shuffle these scenarios across
//! 256 schedules in CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{
    vals, AdmissionPolicy, AlpsError, Backoff, EntryDef, ObjectBuilder, RestartPolicy, RetryPolicy,
    Ty, Value,
};
use alps_runtime::{FaultPlan, SchedPolicy, SimRuntime, Spawn};

/// A supervised object whose body is killed by an injected panic must be
/// rebuilt by `state_init` and serve successful calls again — in the same
/// test, through the same handle.
#[test]
fn restarted_object_serves_again() {
    let sim = SimRuntime::new();
    sim.set_fault_plan(FaultPlan::new().panic_at("body", 2));
    sim.run(|rt| {
        let state = Arc::new(AtomicU64::new(0));
        let (s_body, s_init) = (Arc::clone(&state), Arc::clone(&state));
        let obj = ObjectBuilder::new("Sup")
            .entry(
                EntryDef::new("Bump")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |_ctx, args| {
                        let v = args[0].as_int()?;
                        Ok(vec![Value::Int(
                            v + s_body.fetch_add(1, Ordering::SeqCst) as i64,
                        )])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Bump")?;
                mgr.execute(acc)?;
            })
            .supervise(RestartPolicy::AlwaysFresh)
            .state_init(move || s_init.store(100, Ordering::SeqCst))
            .spawn(rt)
            .unwrap();
        assert_eq!(obj.generation(), 0);
        // First call succeeds normally.
        assert_eq!(obj.call("Bump", vals![10i64]).unwrap()[0], Value::Int(10));
        // Second body execution is killed: the caller is answered with the
        // transient restart error, never a stale result and never a hang.
        let err = obj.call("Bump", vals![10i64]).unwrap_err();
        assert!(matches!(err, AlpsError::ObjectRestarting { .. }), "{err:?}");
        // Recovery: the same handle serves again, with `state_init`'s
        // fresh state (100), under the bumped generation.
        assert_eq!(
            obj.call_retry("Bump", vals![10i64], RetryPolicy::new(8, 50_000))
                .unwrap()[0],
            Value::Int(110)
        );
        assert_eq!(obj.generation(), 1);
        assert_eq!(obj.stats().restarts(), 1);
    })
    .unwrap();
}

/// A `RestartTransient` budget converges to permanent poison: restarts
/// inside the window beyond `max_restarts` are refused, and from then on
/// callers see the *permanent* `ObjectPoisoned`, not the retryable
/// `ObjectRestarting`.
#[test]
fn restart_budget_exhaustion_poisons_permanently() {
    let sim = SimRuntime::new();
    // Kill body executions 1 and 2 (calls 1 and 2 below).
    sim.set_fault_plan(FaultPlan::new().panic_at("body", 1).panic_at("body", 2));
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Budgeted")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![Value::Int(7)])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                match mgr.execute(acc) {
                    Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                    Err(e) => return Err(e),
                }
            })
            .supervise(RestartPolicy::RestartTransient {
                max_restarts: 1,
                window_ticks: 1_000_000,
            })
            .spawn(rt)
            .unwrap();
        // Panic #1: restarted (budget 1 of 1 used); the in-flight caller
        // is swept with the transient restart error.
        let e1 = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e1, AlpsError::ObjectRestarting { .. }), "{e1:?}");
        // Panic #2: inside the window, budget exhausted — the restart is
        // refused, so no sweep runs and the caller sees the plain body
        // failure.
        let e2 = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e2, AlpsError::BodyFailed { .. }), "{e2:?}");
        // Permanently poisoned now: fail-fast, non-retryable.
        let e3 = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e3, AlpsError::ObjectPoisoned { .. }), "{e3:?}");
        assert_eq!(obj.stats().restarts(), 1);
        assert_eq!(obj.generation(), 1);
    })
    .unwrap();
}

/// An injected `restart` fault (FaultPlan::fail_restart) vetoes the
/// restart itself: the object degrades to permanent poison exactly as if
/// the policy had refused.
#[test]
fn injected_restart_failure_degrades_to_poison() {
    let sim = SimRuntime::new();
    sim.set_fault_plan(FaultPlan::new().panic_at("body", 1).fail_restart(1));
    sim.run(|rt| {
        let obj = ObjectBuilder::new("NoComeback")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![Value::Int(1)])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                match mgr.execute(acc) {
                    Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                    Err(e) => return Err(e),
                }
            })
            .supervise(RestartPolicy::AlwaysFresh)
            .spawn(rt)
            .unwrap();
        // The vetoed restart never sweeps, so the triggering caller sees
        // the plain body failure; the object degrades to permanent
        // poison for everyone after.
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::BodyFailed { .. }), "{e:?}");
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::ObjectPoisoned { .. }), "{e:?}");
        assert_eq!(obj.stats().restarts(), 0, "the restart was vetoed");
        assert_eq!(obj.generation(), 0, "no generation was ever fenced");
    })
    .unwrap();
}

/// A panicking `state_init` refuses the restart: recovery that cannot
/// rebuild state must not un-poison the object.
#[test]
fn panicking_state_init_refuses_restart() {
    let sim = SimRuntime::new();
    sim.set_fault_plan(FaultPlan::new().panic_at("body", 1));
    sim.run(|rt| {
        let obj = ObjectBuilder::new("BadInit")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![Value::Int(1)])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                match mgr.execute(acc) {
                    Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                    Err(e) => return Err(e),
                }
            })
            .supervise(RestartPolicy::AlwaysFresh)
            .state_init(|| panic!("cannot rebuild"))
            .spawn(rt)
            .unwrap();
        // The sweep ran (the caller was failed with the transient error)
        // but the rebuild died, so the poison sticks.
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::ObjectRestarting { .. }), "{e:?}");
        let e = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(e, AlpsError::ObjectPoisoned { .. }), "{e:?}");
        assert_eq!(obj.stats().restarts(), 0);
    })
    .unwrap();
}

/// 16-caller storm against a tiny `ShedNewest` intake: every shed caller
/// gets `Err(Overloaded)` immediately (never a hang), admitted calls all
/// complete, and the shed count in the stats accounts for every refusal.
#[test]
fn shed_newest_storm_bounds_occupancy() {
    let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(7));
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Shedder")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        // Slow service keeps the ring saturated.
                        ctx.sleep(50);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.execute(acc)?;
            })
            .admission(AdmissionPolicy::ShedNewest)
            .intake_capacity(4)
            .spawn(rt)
            .unwrap();
        let outcomes: Arc<parking_lot::Mutex<Vec<&'static str>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for i in 0..16i64 {
            let (o2, out2) = (obj.clone(), Arc::clone(&outcomes));
            joins.push(rt.spawn_with(Spawn::new(format!("storm{i}")), move || {
                for k in 0..4i64 {
                    let tag = match o2.call("P", vals![i * 10 + k]) {
                        Ok(r) => {
                            assert_eq!(r[0].as_int().unwrap(), i * 10 + k);
                            "ok"
                        }
                        Err(AlpsError::Overloaded { .. }) => "shed",
                        Err(e) => panic!("storm caller {i}: unexpected error {e:?}"),
                    };
                    out2.lock().push(tag);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let outs = outcomes.lock();
        assert_eq!(outs.len(), 64, "every call was answered — no hangs");
        let ok = outs.iter().filter(|t| **t == "ok").count() as u64;
        let shed = outs.iter().filter(|t| **t == "shed").count() as u64;
        let stats = obj.stats();
        assert!(shed > 0, "a 16-caller storm against capacity 4 must shed");
        assert_eq!(stats.sheds(), shed, "stats account for every refusal");
        assert_eq!(stats.finishes(), ok, "every admitted call completed");
    })
    .unwrap();
}

/// `Cooperative` watermarks flip the manager-visible overload flag and
/// count the flips; `Block` (the default) never sheds — slow callers wait
/// instead.
#[test]
fn cooperative_watermarks_flip_and_block_never_sheds() {
    let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(3));
    sim.run(|rt| {
        let flagged = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flagged);
        let obj = ObjectBuilder::new("Coop")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(30);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(move |mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.execute(acc)?;
                // Callers refill the ring while the body sleeps, so the
                // post-execute window is where overload is visible (the
                // next accept's drain will clear it back to `low`).
                if mgr.overloaded() {
                    f2.fetch_add(1, Ordering::SeqCst);
                }
            })
            .admission(AdmissionPolicy::Cooperative { high: 4, low: 1 })
            .intake_capacity(4)
            .spawn(rt)
            .unwrap();
        let mut joins = Vec::new();
        for i in 0..12i64 {
            let o2 = obj.clone();
            joins.push(rt.spawn_with(Spawn::new(format!("c{i}")), move || {
                for k in 0..3i64 {
                    let r = o2.call("P", vals![i * 10 + k]).unwrap();
                    assert_eq!(r[0].as_int().unwrap(), i * 10 + k);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = obj.stats();
        assert_eq!(stats.sheds(), 0, "Cooperative blocks, it never sheds");
        assert_eq!(stats.finishes(), 36, "every call was served");
        assert!(
            stats.overload_flips() > 0,
            "12 blocked callers against capacity 4 must cross the high watermark"
        );
        assert!(
            flagged.load(Ordering::SeqCst) > 0,
            "the manager observed the overload flag"
        );
        assert!(!obj.is_closed());
    })
    .unwrap();
}

/// `call_retry` retries a deadline expiry and succeeds once the manager
/// starts serving; the per-attempt deadline split and the retry counter
/// are observable.
#[test]
fn call_retry_rides_out_a_slow_start() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Sleepy")
            .entry(
                EntryDef::new("P")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![Value::Int(9)])),
            )
            .manager(|mgr| {
                // Ignore the entry long enough that early attempts
                // time out, then serve forever.
                mgr.sleep(500);
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        // Budget 1200 over 4 attempts: first attempt gets 300 ticks and
        // times out inside the manager's 500-tick nap; a later attempt
        // lands after the nap and succeeds.
        let r = obj
            .call_retry(
                "P",
                vals![],
                RetryPolicy::new(4, 1200).backoff(Backoff::Fixed(10)),
            )
            .unwrap();
        assert_eq!(r[0], Value::Int(9));
        let stats = obj.stats();
        assert!(stats.retries() >= 1, "at least one attempt was retried");
        assert_eq!(
            stats.timeouts(),
            stats.retries(),
            "every retry followed a timeout"
        );
    })
    .unwrap();
}

/// A delivered application error is never retried, and an exhausted
/// budget surfaces the *last* transient error.
#[test]
fn call_retry_never_retries_delivered_errors() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Failing")
            .entry(
                EntryDef::new("Boom")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Err::<Vec<Value>, _>(AlpsError::Custom("no".into()))),
            )
            .entry(
                EntryDef::new("Never")
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![Value::Int(0)])),
            )
            .manager(|mgr| loop {
                // Serve Boom; never accept Never.
                let acc = mgr.accept("Boom")?;
                match mgr.execute(acc) {
                    Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                    Err(e) => return Err(e),
                }
            })
            .spawn(rt)
            .unwrap();
        let e = obj
            .call_retry("Boom", vals![], RetryPolicy::new(5, 10_000))
            .unwrap_err();
        assert!(matches!(e, AlpsError::BodyFailed { .. }), "{e:?}");
        assert_eq!(obj.stats().retries(), 0, "a delivered error is final");
        // Unserved entry: every attempt times out; the budget bounds the
        // whole affair and the last transient error comes back.
        let t0 = rt.now();
        let e = obj
            .call_retry("Never", vals![], RetryPolicy::new(3, 600))
            .unwrap_err();
        assert!(matches!(e, AlpsError::Timeout { .. }), "{e:?}");
        assert!(
            rt.now() - t0 <= 650,
            "budget bounded the attempts, took {}",
            rt.now() - t0
        );
        assert_eq!(obj.stats().retries(), 2);
    })
    .unwrap();
}

/// Regression pin: a call whose cell is already DONE before a panic
/// poisons the object still delivers its result. Poisoning gates
/// *admission*, never delivery — across every interleaving of the
/// completing call and the poisoning one.
#[test]
fn completed_call_delivers_despite_poisoning() {
    for seed in 0..32u64 {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        sim.run(move |rt| {
            let obj = ObjectBuilder::new("Pinned")
                .entry(
                    EntryDef::new("Work")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|ctx, args| {
                            ctx.sleep(15);
                            Ok(vec![Value::Int(args[0].as_int()? * 2)])
                        }),
                )
                .entry(
                    EntryDef::new("Boom")
                        .intercepted()
                        .body(|_ctx, _| -> alps_core::Result<Vec<Value>> { panic!("deliberate") }),
                )
                .manager(|mgr| loop {
                    let sel = mgr.select(vec![
                        alps_core::Guard::accept("Work"),
                        alps_core::Guard::accept("Boom"),
                    ])?;
                    if let alps_core::Selected::Accepted { call, .. } = sel {
                        match mgr.execute(call) {
                            Ok(_) | Err(AlpsError::BodyFailed { .. }) => {}
                            Err(e) => return Err(e),
                        }
                    }
                })
                .poison_on_panic(true)
                .spawn(rt)
                .unwrap();
            let o_work = obj.clone();
            let worker = rt.spawn_with(Spawn::new("worker"), move || {
                // Admitted before (or racing) the poison: if the body ran,
                // its DONE cell must deliver — never be swallowed by the
                // poison flag the racing Boom sets.
                match o_work.call("Work", vals![21i64]) {
                    Ok(r) => assert_eq!(r[0].as_int().unwrap(), 42),
                    Err(AlpsError::ObjectPoisoned { .. }) => {
                        // Legal only when the poison landed before this
                        // call was admitted at all.
                    }
                    Err(e) => panic!("seed {seed}: unexpected error {e:?}"),
                }
            });
            let o_boom = obj.clone();
            let bomber = rt.spawn_with(Spawn::new("bomber"), move || {
                let e = o_boom.call("Boom", vals![]).unwrap_err();
                assert!(matches!(e, AlpsError::BodyFailed { .. }), "{e:?}");
            });
            worker.join().unwrap();
            bomber.join().unwrap();
            // The poison is in effect for everything new.
            let e = obj.call("Work", vals![1i64]).unwrap_err();
            assert!(matches!(e, AlpsError::ObjectPoisoned { .. }), "{e:?}");
        })
        .unwrap();
    }
}

/// `ExpJitter` backoff draws its jitter from the seeded simulation
/// stream: the same seed replays the same delays, tick for tick.
#[test]
fn exp_jitter_backoff_is_deterministic_per_seed() {
    let run = |seed: u64| -> u64 {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        sim.run(|rt| {
            let obj = ObjectBuilder::new("Jitter")
                .entry(
                    EntryDef::new("P")
                        .results([Ty::Int])
                        .intercepted()
                        .body(|_ctx, _| Ok(vec![Value::Int(1)])),
                )
                .manager(|mgr| {
                    mgr.sleep(900);
                    loop {
                        let acc = mgr.accept("P")?;
                        mgr.execute(acc)?;
                    }
                })
                .spawn(rt)
                .unwrap();
            let _ = obj.call_retry(
                "P",
                vals![],
                RetryPolicy::new(6, 2_000).backoff(Backoff::ExpJitter { base: 16, cap: 200 }),
            );
            rt.now()
        })
        .unwrap()
    };
    assert_eq!(run(11), run(11), "same seed, same jittered schedule");
}
