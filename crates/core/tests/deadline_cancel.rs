//! Deadline-bounded calls, manager-side cancellation, cell reclamation,
//! and poisoning.
//!
//! The cancellation state machine under test (see DESIGN.md §"Deadlines
//! and cancellation"): a call cell moves WAITING → DONE when a completer
//! wins, WAITING → CANCELLED when the caller's deadline CAS wins, and
//! CANCELLED → TOMBSTONE when exactly one protocol-side holder reclaims
//! the departed caller's cell. A call is answered exactly once, by
//! exactly one side, no matter how the timeout races the reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{vals, AlpsError, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
use alps_runtime::{Runtime, SimRuntime, Spawn};

/// An object whose manager blocks accepting `Gate` (which nobody calls),
/// so calls to `P` attach / queue but are never accepted.
fn never_accepting_object(rt: &Runtime) -> alps_core::ObjectHandle {
    ObjectBuilder::new("Stuck")
        .entry(
            EntryDef::new("P")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .entry(
            EntryDef::new("Gate")
                .intercepted()
                .body(|_ctx, _| Ok(vec![])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Gate")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

#[test]
fn timeout_while_attached_and_while_queued() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = never_accepting_object(rt);
        let mut joins = Vec::new();
        // P's procedure array has one element: the first call attaches,
        // the second waits in the queue. Both must time out.
        for i in 0..2i64 {
            let (o2, rt2) = (obj.clone(), rt.clone());
            joins.push(rt.spawn_with(Spawn::new(format!("caller{i}")), move || {
                let t0 = rt2.now();
                let err = o2.call_deadline("P", vals![i], 200).unwrap_err();
                assert!(
                    matches!(err, AlpsError::Timeout { ticks: 200, .. }),
                    "wanted Timeout, got {err:?}"
                );
                assert!(rt2.now() >= t0 + 200, "timed out before the deadline");
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = obj.stats();
        assert_eq!(stats.timeouts(), 2);
        // Both cells were reclaimed by the caller-side reap: one out of
        // the attached slot, one out of the wait queue (pulled into the
        // slot when the first reap freed it, then reaped there).
        assert_eq!(stats.reaps(), 2);
        assert_eq!(obj.pending("P").unwrap(), 0, "no stale pending count");
        assert_eq!(stats.finishes(), 0);
    })
    .unwrap();
}

#[test]
fn reply_racing_the_deadline_is_delivered_not_lost() {
    // A deadline equal to the service time: whichever side wins the state
    // CAS, the call must be answered exactly once — either Ok or Timeout,
    // never a hang, never a double completion.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Tight")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(100);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.execute(acc)?;
            })
            .spawn(rt)
            .unwrap();
        let mut ok = 0u32;
        let mut timed_out = 0u32;
        for i in 0..10i64 {
            match obj.call_deadline("P", vals![i], 100) {
                Ok(r) => {
                    assert_eq!(r[0].as_int().unwrap(), i);
                    ok += 1;
                }
                Err(AlpsError::Timeout { .. }) => timed_out += 1,
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert_eq!(ok + timed_out, 10, "every call answered exactly once");
        let stats = obj.stats();
        assert_eq!(stats.timeouts(), u64::from(timed_out));
    })
    .unwrap();
}

#[test]
fn timeout_while_started_tombstones_the_late_result() {
    // The body takes 1000 ticks; the caller gives up at 100. The started
    // body runs to completion (cancellation is cooperative), the manager
    // finishes it normally, and the finish — finding the caller gone —
    // tombstones the cell instead of delivering.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Slow")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(1000);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("P"), Guard::await_done("P")])? {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        let err = obj.call_deadline("P", vals![7i64], 100).unwrap_err();
        assert!(matches!(err, AlpsError::Timeout { .. }), "{err:?}");
        // Let the abandoned execution run to completion.
        rt.sleep(2000);
        let stats = obj.stats();
        assert_eq!(stats.timeouts(), 1);
        assert_eq!(stats.finishes(), 1, "manager finished the late body");
        assert_eq!(stats.reaps(), 1, "the undeliverable result was tombstoned");
        // The slot is free again: a fresh call (no deadline) round-trips.
        let r = obj.call("P", vals![8i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 8);
    })
    .unwrap();
}

#[test]
fn cancelled_cells_are_recycled_never_double_completed() {
    // Interleave timeouts with successful calls: a cell recycled out of a
    // CANCELLED/TOMBSTONE state must behave like a fresh one.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let gate = Arc::new(AtomicU64::new(0));
        let g2 = Arc::clone(&gate);
        let obj = ObjectBuilder::new("Mix")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |ctx, args| {
                        // Slow only when the gate says so.
                        if g2.load(Ordering::SeqCst) == 1 {
                            ctx.sleep(1000);
                        }
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("P"), Guard::await_done("P")])? {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        for round in 0..5i64 {
            gate.store(1, Ordering::SeqCst);
            let err = obj.call_deadline("P", vals![round], 50).unwrap_err();
            assert!(matches!(err, AlpsError::Timeout { .. }), "{err:?}");
            rt.sleep(2000); // drain the abandoned execution
            gate.store(0, Ordering::SeqCst);
            let r = obj.call("P", vals![round + 100]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), round + 100);
        }
        let stats = obj.stats();
        assert_eq!(stats.timeouts(), 5);
        assert_eq!(stats.reaps(), 5);
        // 5 timed-out + 5 successful calls, all finished by the manager.
        assert_eq!(stats.finishes(), 10);
    })
    .unwrap();
}

#[test]
fn manager_cancel_of_attached_call_fails_the_caller() {
    // Admission control: the manager never accepts `P`; it notices the
    // attached call (the timed-out accept on `Gate` drained the intake)
    // and rejects it with `cancel` — without ever holding a token for it.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Rejecting")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| Ok(vec![args[0].clone()])),
            )
            .entry(
                EntryDef::new("Gate")
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .manager(|mgr| loop {
                match mgr.accept_deadline("Gate", 50) {
                    Ok(acc) => {
                        mgr.execute(acc)?;
                    }
                    Err(AlpsError::Timeout { .. }) => {
                        let _ = mgr.cancel("P", 0)?;
                    }
                    Err(e) => return Err(e),
                }
            })
            .spawn(rt)
            .unwrap();
        let err = obj.call("P", vals![4i64]).unwrap_err();
        assert!(matches!(err, AlpsError::Cancelled { .. }), "{err:?}");
        let stats = obj.stats();
        assert_eq!(stats.cancels(), 1);
        assert_eq!(stats.starts(), 0, "the body never ran");
    })
    .unwrap();
}

#[test]
fn manager_cancel_started_call_answers_caller_and_discards_body() {
    // Satellite: the lost-wakeup regression. The caller parks waiting for
    // its reply; the manager cancels the started call from its own
    // process. The cancel's unpark must be consumed by exactly that one
    // park — afterwards the caller's park_timeout must actually sleep
    // (a stray buffered permit would return it immediately at now()).
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Abort")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(10_000);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| {
                let acc = mgr.accept("P")?;
                let slot = acc.slot();
                mgr.start_as_is(acc)?;
                // Give the body time to start sleeping and the caller
                // time to park, then abort it.
                mgr.sleep(500);
                let cancelled = mgr.cancel("P", slot)?;
                assert!(cancelled, "started slot should be cancellable");
                // Keep serving: the abandoned slot frees itself when the
                // body completes.
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        let (o2, rt2) = (obj.clone(), rt.clone());
        let caller = rt.spawn_with(Spawn::new("caller"), move || {
            let err = o2.call("P", vals![1i64]).unwrap_err();
            assert!(
                matches!(err, AlpsError::Cancelled { .. }),
                "wanted Cancelled, got {err:?}"
            );
            let woke_before = rt2.now();
            assert!(woke_before < 10_000, "cancel answered before the body");
            // Exactly-once token check: with no stray permit, this park
            // must consume the full 300 ticks of virtual time.
            rt2.park_timeout(300);
            assert!(
                rt2.now() >= woke_before + 300,
                "stray unpark permit: park_timeout returned early \
                 ({} -> {})",
                woke_before,
                rt2.now()
            );
        });
        caller.join().unwrap();
        // Drain the abandoned execution, then prove the slot is reusable.
        rt.sleep(20_000);
        let r = obj.call("P", vals![2i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 2);
        let stats = obj.stats();
        assert_eq!(stats.cancels(), 1);
    })
    .unwrap();
}

#[test]
fn cancel_on_free_slot_is_a_noop_and_on_accepted_is_a_violation() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Edge")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| Ok(vec![args[0].clone()])),
            )
            .manager(|mgr| {
                // No call yet: cancel must report "nothing to cancel".
                assert!(!mgr.cancel("P", 0)?);
                assert!(matches!(
                    mgr.cancel("P", 99),
                    Err(AlpsError::ProtocolViolation { .. })
                ));
                loop {
                    let acc = mgr.accept("P")?;
                    // While the manager holds the accepted token, cancel
                    // on that slot is a protocol violation.
                    assert!(matches!(
                        mgr.cancel("P", acc.slot()),
                        Err(AlpsError::ProtocolViolation { .. })
                    ));
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        let r = obj.call("P", vals![3i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 3);
    })
    .unwrap();
}

#[test]
fn manager_accept_deadline_times_out_then_recovers() {
    let sim = SimRuntime::new();
    let observed = sim
        .run(|rt| {
            let timeouts = Arc::new(AtomicU64::new(0));
            let t2 = Arc::clone(&timeouts);
            let obj = ObjectBuilder::new("Poller")
                .entry(
                    EntryDef::new("P")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .intercepted()
                        .body(|_ctx, args| Ok(vec![args[0].clone()])),
                )
                .manager(move |mgr| loop {
                    match mgr.accept_deadline("P", 100) {
                        Ok(acc) => {
                            mgr.execute(acc)?;
                        }
                        Err(AlpsError::Timeout { .. }) => {
                            t2.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => return Err(e),
                    }
                })
                .spawn(rt)
                .unwrap();
            // Let the manager starve through a few accept deadlines.
            rt.sleep(550);
            let r = obj.call("P", vals![9i64]).unwrap();
            assert_eq!(r[0].as_int().unwrap(), 9);
            timeouts.load(Ordering::SeqCst)
        })
        .unwrap();
    assert!(
        (4..=7).contains(&observed),
        "manager should have seen ~5 accept timeouts in 550 ticks, saw {observed}"
    );
}

#[test]
fn manager_await_deadline_times_out_while_body_runs() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("SlowAwait")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(500);
                        Ok(vec![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("P")?;
                mgr.start_as_is(acc)?;
                // Too short for the 500-tick body: must time out, then a
                // patient await picks the result up.
                let short = mgr.await_deadline("P", 50);
                assert!(matches!(short, Err(AlpsError::Timeout { .. })), "{short:?}");
                let done = mgr.await_done("P")?;
                mgr.finish_as_is(done)?;
            })
            .spawn(rt)
            .unwrap();
        let r = obj.call("P", vals![6i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 6);
    })
    .unwrap();
}

#[test]
fn poisoned_object_rejects_new_calls() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Glass")
            .poison_on_panic(true)
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    // Implicit (not intercepted): runs without a manager.
                    .body(|_ctx, args| {
                        let v = args[0].as_int()?;
                        assert!(v >= 0, "negative input corrupts the invariant");
                        Ok(vec![Value::Int(v)])
                    }),
            )
            .spawn(rt)
            .unwrap();
        assert!(!obj.is_poisoned());
        let r = obj.call("P", vals![1i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 1);
        // The panicking call itself reports the body failure...
        let err = obj.call("P", vals![-1i64]).unwrap_err();
        assert!(matches!(err, AlpsError::BodyFailed { .. }), "{err:?}");
        // ...and every call after it fails fast without running a body.
        assert!(obj.is_poisoned());
        for _ in 0..3 {
            let err = obj.call("P", vals![2i64]).unwrap_err();
            assert!(matches!(err, AlpsError::ObjectPoisoned { .. }), "{err:?}");
        }
        let stats = obj.stats();
        assert_eq!(stats.poison_rejects(), 3);
        assert_eq!(stats.body_failures(), 1);
        assert!(!obj.is_closed(), "poisoned is not closed");
    })
    .unwrap();
}

#[test]
fn error_returns_do_not_poison_even_when_enabled() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Sturdy")
            .poison_on_panic(true)
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .body(|_ctx, args| {
                        let v = args[0].as_int()?;
                        if v < 0 {
                            return Err(AlpsError::Custom("bad input".into()));
                        }
                        Ok(vec![Value::Int(v)])
                    }),
            )
            .spawn(rt)
            .unwrap();
        // A typed error is a normal outcome: invariants were maintained.
        assert!(obj.call("P", vals![-1i64]).is_err());
        assert!(!obj.is_poisoned());
        let r = obj.call("P", vals![5i64]).unwrap();
        assert_eq!(r[0].as_int().unwrap(), 5);
    })
    .unwrap();
}

#[test]
fn deadline_calls_work_threaded() {
    // The same timeout semantics on the OS-thread executor: real time,
    // condvar-bounded parks.
    let rt = Runtime::threaded();
    let obj = never_accepting_object(&rt);
    let err = obj.call_deadline("P", vals![1i64], 20_000).unwrap_err();
    assert!(matches!(err, AlpsError::Timeout { .. }), "{err:?}");
    assert_eq!(obj.stats().timeouts(), 1);
    obj.shutdown();
}
