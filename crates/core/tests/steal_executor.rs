//! ALPS objects on the work-stealing shared executor
//! (`Runtime::thread_pool`): manager loops, pool-worker bodies, and
//! callers all run as green tasks on a fixed OS-thread budget, with the
//! unchanged park/unpark call protocol underneath.
//!
//! These tests only run where the pooled executor exists (x86_64); on
//! other targets `Runtime::thread_pool` falls back to the threaded
//! executor and the thread-budget assertions would be vacuous or false,
//! so the whole file is gated.
#![cfg(target_arch = "x86_64")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use alps_core::{
    vals, AlpsError, Backoff, EntryDef, Guard, ObjectBuilder, ObjectHandle, PoolMode,
    RestartPolicy, RetryPolicy, Selected, Ty, Value,
};
use alps_runtime::Runtime;

fn echo_object(rt: &Runtime, name: &str) -> ObjectHandle {
    ObjectBuilder::new(name)
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Echo")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

/// A pooled object whose bodies run as pool-worker jobs (not inline in
/// the manager): `start_as_is` dispatches to the pool in the given mode.
fn pooled_object(rt: &Runtime, mode: PoolMode) -> ObjectHandle {
    ObjectBuilder::new("Pooled")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .array(4)
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .pool(mode)
        .manager(|mgr| loop {
            let sel = mgr.select(vec![Guard::accept("Echo"), Guard::await_done("Echo")])?;
            match sel {
                Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                _ => unreachable!(),
            }
        })
        .spawn(rt)
        .unwrap()
}

#[test]
fn managed_execute_round_trip_on_pool() {
    let rt = Runtime::thread_pool(2);
    let obj = echo_object(&rt, "Echo");
    for i in 0..50i64 {
        assert_eq!(obj.call("Echo", vals![i]).unwrap()[0], Value::Int(i));
    }
    obj.shutdown();
    rt.shutdown();
}

#[test]
fn shared_pool_bodies_run_as_stolen_tasks() {
    let rt = Runtime::thread_pool(2);
    let obj = pooled_object(&rt, PoolMode::Shared(2));
    for i in 0..64i64 {
        assert_eq!(obj.call("Echo", vals![i]).unwrap()[0], Value::Int(i));
    }
    assert!(obj.stats().starts() >= 64);
    obj.shutdown();
    rt.shutdown();
}

#[test]
fn per_call_pool_bodies_run_as_stolen_tasks() {
    let rt = Runtime::thread_pool(2);
    let obj = pooled_object(&rt, PoolMode::PerCall);
    for i in 0..64i64 {
        assert_eq!(obj.call("Echo", vals![i]).unwrap()[0], Value::Int(i));
    }
    obj.shutdown();
    rt.shutdown();
}

#[test]
fn concurrent_green_callers_hammer_one_object() {
    let rt = Runtime::thread_pool(3);
    let obj = echo_object(&rt, "Echo");
    let ok = Arc::new(AtomicUsize::new(0));
    let hs: Vec<_> = (0..16)
        .map(|c| {
            let (obj, ok) = (obj.clone(), Arc::clone(&ok));
            rt.spawn(move || {
                for i in 0..50i64 {
                    let v = obj.call("Echo", vals![i + c]).unwrap()[0].as_int().unwrap();
                    assert_eq!(v, i + c);
                }
                ok.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(ok.load(Ordering::SeqCst), 16);
    obj.shutdown();
    rt.shutdown();
}

/// Reads `Threads:` from /proc/self/status (Linux); None elsewhere.
fn os_thread_count() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/status").ok()?;
    s.lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// The ISSUE-5 thread-budget bound: 64 trivial objects — each of which
/// would cost at least one manager thread (plus pool workers) on the
/// threaded executor — run on K workers + 1 timer, and the *process*
/// thread count does not grow with the object count.
#[test]
fn sixty_four_objects_fit_in_the_worker_budget() {
    let rt = Runtime::thread_pool(4);
    assert_eq!(rt.os_threads(), Some(5)); // 4 workers + 1 timer
    let before = os_thread_count();
    let objs: Vec<ObjectHandle> = (0..64)
        .map(|i| echo_object(&rt, &format!("Echo{i}")))
        .collect();
    for (i, obj) in objs.iter().enumerate() {
        let v = obj.call("Echo", vals![i as i64]).unwrap()[0]
            .as_int()
            .unwrap();
        assert_eq!(v, i as i64);
    }
    // Executor-level bound is exact…
    assert_eq!(rt.os_threads(), Some(5));
    // …and the real process thread count must not have grown with the
    // 64 managers (allow a small constant for harness noise).
    if let (Some(b), Some(a)) = (before, os_thread_count()) {
        assert!(
            a <= b + 2,
            "spawning 64 objects grew the process from {b} to {a} OS threads"
        );
    }
    for obj in &objs {
        obj.shutdown();
    }
    rt.shutdown();
}

/// Injector fairness: green tasks stuck in a yield loop keep every
/// worker's local deque non-empty, and the wake cascade's halving grabs
/// can leave a late spawn behind in the global injector — without the
/// periodic injector poll it starves there forever (livelock). The
/// spinners only exit once they observe the flag that only the starved
/// task sets, so a regression fails the assertion instead of hanging.
#[test]
fn injected_task_is_not_starved_by_yield_looping_tasks() {
    let rt = Runtime::thread_pool(2);
    let flag = Arc::new(AtomicUsize::new(0));
    let spinners: Vec<_> = (0..8)
        .map(|_| {
            let (rt2, flag) = (rt.clone(), Arc::clone(&flag));
            rt.spawn(move || {
                let mut spins = 0u64;
                while flag.load(Ordering::SeqCst) == 0 && spins < 20_000_000 {
                    rt2.yield_now();
                    spins += 1;
                }
                flag.load(Ordering::SeqCst)
            })
        })
        .collect();
    let setter = {
        let flag = Arc::clone(&flag);
        rt.spawn(move || flag.store(1, Ordering::SeqCst))
    };
    setter.join().unwrap();
    for s in spinners {
        assert_eq!(
            s.join().unwrap(),
            1,
            "spinner exhausted its budget without ever seeing the injected task run"
        );
    }
    rt.shutdown();
}

/// Supervised restart on the pooled executor: a `Shared` pool body
/// panics while sibling calls are queued behind it as green tasks; the
/// supervisor restarts the object and `call_retry` rides out the
/// transient `ObjectRestarting` answers.
#[test]
fn supervised_restart_with_pooled_bodies_recovers() {
    let rt = Runtime::thread_pool(2);
    let boom = Arc::new(AtomicUsize::new(0));
    let b2 = Arc::clone(&boom);
    let obj = ObjectBuilder::new("Sup")
        .entry(
            EntryDef::new("Work")
                .params([Ty::Int])
                .results([Ty::Int])
                .array(4)
                .intercepted()
                .body(move |_ctx, args| {
                    let v = args[0].as_int()?;
                    if v < 0 && b2.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("injected body crash");
                    }
                    Ok(vec![Value::Int(v)])
                }),
        )
        .pool(PoolMode::Shared(2))
        .manager(|mgr| loop {
            let sel = mgr.select(vec![Guard::accept("Work"), Guard::await_done("Work")])?;
            match sel {
                Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                _ => unreachable!(),
            }
        })
        .supervise(RestartPolicy::AlwaysFresh)
        .spawn(&rt)
        .unwrap();

    // Queue concurrent green callers, one of which trips the crash.
    let hs: Vec<_> = (0..8)
        .map(|c| {
            let obj = obj.clone();
            rt.spawn(move || {
                let arg = if c == 0 { -1i64 } else { c as i64 };
                obj.call_retry(
                    "Work",
                    vals![arg],
                    RetryPolicy::new(16, 2_000_000).backoff(Backoff::Fixed(5_000)),
                )
            })
        })
        .collect();
    let mut served = 0;
    for h in hs {
        match h.join().unwrap() {
            Ok(_) => served += 1,
            // A caller caught mid-restart whose retry budget lapsed is
            // acceptable; delivered protocol errors are not.
            Err(AlpsError::ObjectRestarting { .. }) | Err(AlpsError::Timeout { .. }) => {}
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert!(served >= 6, "only {served}/8 calls served after restart");
    assert!(obj.stats().restarts() >= 1);
    // The object keeps serving on the bumped generation.
    assert_eq!(obj.call("Work", vals![7i64]).unwrap()[0], Value::Int(7));
    obj.shutdown();
    rt.shutdown();
}
