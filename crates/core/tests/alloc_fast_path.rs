//! Steady-state allocation accounting for the `call_id` fast path.
//!
//! The interned-id call path is meant to be allocation-free once warm:
//! args and results ride in `ValVec` inline storage (arity ≤ 4), implicit
//! entries execute inline in the caller without a `CallCell`, and managed
//! entries recycle cells through the per-object pool. This test installs
//! a counting global allocator and asserts a zero allocation delta across
//! a burst of warm implicit `call_id` invocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use alps_core::{argv, EntryDef, ObjectBuilder, RetryPolicy, Value};
use alps_runtime::Runtime;

/// The `COUNTING` flag is process-global, so concurrently running tests
/// would count each other's allocations. Each test holds this for its
/// whole body.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn warm_implicit_call_id_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rt = Runtime::threaded();
    let obj = ObjectBuilder::new("Plain")
        .entry(
            EntryDef::new("Echo")
                .params([alps_core::Ty::Int])
                .results([alps_core::Ty::Int])
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .spawn(&rt)
        .unwrap();
    let id = obj.entry_id("Echo").unwrap();

    // Warm up: first calls may lazily allocate (thread-locals, pool
    // hand-off structures, stats buckets).
    for _ in 0..64 {
        let r = obj.call_id(id, argv![7i64]).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..1000 {
        let r = obj.call_id(id, argv![7i64]).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        n, 0,
        "warm call_id on an implicit arity-1 entry must not allocate; saw {n} allocations over 1000 calls"
    );

    obj.shutdown();
    rt.shutdown();
}

#[test]
fn warm_call_id_deadline_happy_path_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rt = Runtime::threaded();
    let obj = ObjectBuilder::new("Deadline")
        .entry(
            EntryDef::new("Echo")
                .params([alps_core::Ty::Int])
                .results([alps_core::Ty::Int])
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .spawn(&rt)
        .unwrap();
    let id = obj.entry_id("Echo").unwrap();

    for _ in 0..64 {
        let r = obj.call_id_deadline(id, argv![7i64], 1_000_000).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..1000 {
        let r = obj.call_id_deadline(id, argv![7i64], 1_000_000).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        n, 0,
        "warm call_id_deadline happy path (deadline never fires) must not \
         allocate; saw {n} allocations over 1000 calls"
    );

    obj.shutdown();
    rt.shutdown();
}

#[test]
fn warm_call_id_retry_happy_path_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rt = Runtime::threaded();
    let obj = ObjectBuilder::new("Retry")
        .entry(
            EntryDef::new("Echo")
                .params([alps_core::Ty::Int])
                .results([alps_core::Ty::Int])
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .spawn(&rt)
        .unwrap();
    let id = obj.entry_id("Echo").unwrap();
    // First attempt succeeds, so only the per-attempt `args.clone()`
    // (inline — heap-free for arity ≤ 4) rides on top of the deadline
    // path; no backoff machinery runs.
    let policy = RetryPolicy::new(3, 10_000_000);

    for _ in 0..64 {
        let r = obj.call_id_retry(id, argv![7i64], policy).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..1000 {
        let r = obj.call_id_retry(id, argv![7i64], policy).unwrap();
        assert_eq!(r[0], Value::Int(7));
    }
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        n, 0,
        "warm call_id_retry happy path (first attempt succeeds) must not \
         allocate; saw {n} allocations over 1000 calls"
    );

    obj.shutdown();
    rt.shutdown();
}
