//! Tests of the guarded-select semantics (paper §2.4): acceptance
//! conditions over received values, run-time `pri` priorities, pure
//! boolean guards, channel guards, and CSP-style failure when all guards
//! close.

use std::sync::Arc;

use alps_core::{vals, AlpsError, ChanValue, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
use alps_runtime::{SimRuntime, Spawn};
use parking_lot::Mutex;

/// Object with one intercepted entry "P" (one int param, echoed back) and
/// a manager given by the test.
fn one_entry_object<F>(rt: &alps_runtime::Runtime, array: usize, mgr: F) -> alps_core::ObjectHandle
where
    F: FnMut(&mut alps_core::ManagerCtx) -> alps_core::Result<()> + Send + 'static,
{
    ObjectBuilder::new("T")
        .entry(
            EntryDef::new("P")
                .params([Ty::Int])
                .results([Ty::Int])
                .array(array)
                .intercept_params(1)
                .intercept_results(1)
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(mgr)
        .spawn(rt)
        .unwrap()
}

#[test]
fn acceptance_condition_skips_non_matching_calls() {
    // Two calls attach (array=2); the manager's acceptance condition only
    // admits even parameters first, then drains the rest.
    let sim = SimRuntime::new();
    let order = Arc::new(Mutex::new(Vec::<i64>::new()));
    let order2 = Arc::clone(&order);
    sim.run(move |rt| {
        let obj = one_entry_object(rt, 2, move |mgr| {
            let mut admitted = 0;
            loop {
                let evens_first = admitted < 1;
                let sel = mgr.select(vec![Guard::accept("P").when(move |v| {
                    if evens_first {
                        v.values()[0].as_int().unwrap() % 2 == 0
                    } else {
                        true
                    }
                })])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        order2.lock().push(call.params()[0].as_int()?);
                        admitted += 1;
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            }
        });
        let mut hs = Vec::new();
        for v in [3i64, 4] {
            let obj2 = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{v}")), move || {
                obj2.call("P", vals![v]).unwrap();
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
    })
    .unwrap();
    // 4 (even) admitted before 3 even though 3 attached first.
    assert_eq!(order.lock().clone(), vec![4, 3]);
}

#[test]
fn pri_selects_smallest_value() {
    // Shortest-request-first: with several calls attached, the manager's
    // pri expression picks the smallest parameter (paper §2.4, the SR
    // facility).
    let sim = SimRuntime::new();
    let order = Arc::new(Mutex::new(Vec::<i64>::new()));
    let order2 = Arc::clone(&order);
    sim.run(move |rt| {
        let gate = ChanValue::new("gate", vec![]);
        let gate2 = gate.clone();
        let obj = one_entry_object(rt, 4, move |mgr| {
            mgr.receive(&gate2)?; // let all calls attach first
            loop {
                let sel = mgr.select(vec![
                    Guard::accept("P").pri(|v| v.values()[0].as_int().unwrap())
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        order2.lock().push(call.params()[0].as_int()?);
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            }
        });
        let mut hs = Vec::new();
        for v in [30i64, 10, 20] {
            let obj2 = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{v}")), move || {
                obj2.call("P", vals![v]).unwrap();
            }));
        }
        for _ in 0..10 {
            rt.yield_now(); // all three attach
        }
        gate.send(rt, vals![]).unwrap();
        for h in hs {
            h.join().unwrap();
        }
    })
    .unwrap();
    assert_eq!(order.lock().clone(), vec![10, 20, 30]);
}

#[test]
fn pri_ties_break_by_guard_listing_order() {
    let sim = SimRuntime::new();
    let picked = sim
        .run(|rt| {
            let obj = one_entry_object(rt, 1, |mgr| loop {
                let sel = mgr.select(vec![
                    Guard::cond(true).pri_const(5),
                    Guard::cond(true).pri_const(5),
                    Guard::accept("P").pri_const(1),
                ])?;
                match sel {
                    Selected::Cond { guard } => {
                        // No call pending: the two equal-pri conds tie;
                        // the first listed must win.
                        assert_eq!(guard, 0);
                        // Now wait for a real call so the test can finish.
                        let acc = mgr.accept("P")?;
                        mgr.execute(acc)?;
                    }
                    Selected::Accepted { call, .. } => {
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            });
            obj.call("P", vals![1i64]).unwrap()[0].as_int().unwrap()
        })
        .unwrap();
    assert_eq!(picked, 1);
}

#[test]
fn accept_beats_cond_when_lower_pri() {
    // With a call already attached, pri 1 accept wins over pri 5 cond.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = one_entry_object(rt, 1, |mgr| {
            loop {
                let sel = mgr.select(vec![
                    Guard::cond(true).pri_const(5),
                    Guard::accept("P").pri_const(1),
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        mgr.execute(call)?;
                    }
                    Selected::Cond { .. } => {
                        // The manager runs at the highest priority, so a
                        // yield would starve everyone: sleep instead,
                        // letting virtual time (and the caller) advance.
                        mgr.sleep(10);
                    }
                    _ => unreachable!(),
                }
            }
        });
        assert_eq!(obj.call("P", vals![7i64]).unwrap()[0].as_int().unwrap(), 7);
    })
    .unwrap();
}

#[test]
fn receive_guard_with_acceptance_condition_scans_queue() {
    let sim = SimRuntime::new();
    let got = sim
        .run(|rt| {
            let data = ChanValue::new("data", vec![Ty::Int]);
            let data2 = data.clone();
            let out = Arc::new(Mutex::new(Vec::<i64>::new()));
            let out2 = Arc::clone(&out);
            let obj = ObjectBuilder::new("RecvTest")
                .entry(
                    EntryDef::new("Stop")
                        .intercepted()
                        .body(|_ctx, _| Ok(vec![])),
                )
                .manager(move |mgr| loop {
                    let sel = mgr.select(vec![
                        // Only messages > 10 pass the acceptance condition.
                        Guard::receive(&data2).when(|v| v.values()[0].as_int().unwrap() > 10),
                        Guard::accept("Stop"),
                    ])?;
                    match sel {
                        Selected::Received { msg, .. } => {
                            out2.lock().push(msg[0].as_int()?);
                        }
                        Selected::Accepted { call, .. } => {
                            mgr.execute(call)?;
                            return Ok(());
                        }
                        _ => unreachable!(),
                    }
                })
                .spawn(rt)
                .unwrap();
            // 5 and 7 never match; 11 and 12 do, in order.
            for v in [5i64, 11, 7, 12] {
                data.send(rt, vals![v]).unwrap();
            }
            for _ in 0..10 {
                rt.yield_now();
            }
            obj.call("Stop", vals![]).unwrap();
            // Non-matching messages stay buffered.
            assert_eq!(data.len(), 2);
            let v = out.lock().clone();
            v
        })
        .unwrap();
    assert_eq!(got, vec![11, 12]);
}

#[test]
fn select_fails_when_all_guards_closed() {
    let sim = SimRuntime::new();
    let err = sim
        .run(|rt| {
            let failed = Arc::new(Mutex::new(None::<AlpsError>));
            let f2 = Arc::clone(&failed);
            let obj = ObjectBuilder::new("Closed")
                .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
                .manager(move |mgr| {
                    // All guards closed: two false conds and a closed,
                    // empty channel.
                    let c = ChanValue::new("dead", vec![]);
                    c.close(mgr.rt());
                    let r = mgr.select(vec![
                        Guard::cond(false),
                        Guard::cond(false),
                        Guard::receive(&c),
                    ]);
                    *f2.lock() = r.err();
                    // Keep the object alive until shutdown.
                    loop {
                        let acc = mgr.accept("P")?;
                        mgr.execute(acc)?;
                    }
                })
                .spawn(rt)
                .unwrap();
            obj.call("P", vals![]).unwrap(); // manager reached its loop
            let e = failed.lock().clone();
            e
        })
        .unwrap();
    assert!(matches!(err, Some(AlpsError::SelectFailed)));
}

#[test]
fn closed_channel_with_matching_message_still_eligible() {
    // Closing a channel does not drop buffered messages; a guard can
    // still receive them.
    let sim = SimRuntime::new();
    let got = sim
        .run(|rt| {
            let c = ChanValue::new("c", vec![Ty::Int]);
            c.send(rt, vals![9i64]).unwrap();
            c.close(rt);
            let out = Arc::new(Mutex::new(None::<i64>));
            let out2 = Arc::clone(&out);
            let c2 = c.clone();
            let obj = ObjectBuilder::new("Drain")
                .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
                .manager(move |mgr| {
                    if let Selected::Received { msg, .. } = mgr.select(vec![Guard::receive(&c2)])? {
                        *out2.lock() = Some(msg[0].as_int()?);
                    }
                    loop {
                        let acc = mgr.accept("P")?;
                        mgr.execute(acc)?;
                    }
                })
                .spawn(rt)
                .unwrap();
            obj.call("P", vals![]).unwrap();
            let v = out.lock().take();
            v
        })
        .unwrap();
    assert_eq!(got, Some(9));
}

#[test]
fn empty_guard_list_fails() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let seen = Arc::new(Mutex::new(None::<AlpsError>));
        let s2 = Arc::clone(&seen);
        let obj = ObjectBuilder::new("Empty")
            .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
            .manager(move |mgr| {
                *s2.lock() = mgr.select(vec![]).err();
                loop {
                    let acc = mgr.accept("P")?;
                    mgr.execute(acc)?;
                }
            })
            .spawn(rt)
            .unwrap();
        obj.call("P", vals![]).unwrap();
        assert!(matches!(seen.lock().clone(), Some(AlpsError::SelectFailed)));
    })
    .unwrap();
}

#[test]
fn await_guard_with_condition_on_results() {
    // The manager starts two calls, then awaits preferentially the one
    // whose (intercepted) result is larger, using a pri over results.
    let sim = SimRuntime::new();
    let finish_order = Arc::new(Mutex::new(Vec::<i64>::new()));
    let fo2 = Arc::clone(&finish_order);
    sim.run(move |rt| {
        let obj = one_entry_object(rt, 2, move |mgr| {
            let mut started = 0usize;
            loop {
                let sel = mgr.select(vec![
                    Guard::accept("P"),
                    // Negate: larger result = smaller pri = preferred.
                    Guard::await_done("P")
                        .when(move |_| started >= 2)
                        .pri(|v| -v.values()[0].as_int().unwrap()),
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        mgr.start_as_is(call)?;
                        started += 1;
                        if started == 2 {
                            // Let both bodies complete so both Ready slots
                            // are candidates for one pri comparison.
                            mgr.sleep(1_000);
                        }
                    }
                    Selected::Ready { done, .. } => {
                        fo2.lock().push(done.results()[0].as_int()?);
                        mgr.finish_as_is(done)?;
                    }
                    _ => unreachable!(),
                }
            }
        });
        let mut hs = Vec::new();
        for v in [1i64, 2] {
            let obj2 = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{v}")), move || {
                obj2.call("P", vals![v]).unwrap();
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
    })
    .unwrap();
    // Both bodies complete before the await guard opens (when started>=2);
    // then the larger result (2) is awaited first.
    assert_eq!(finish_order.lock().clone(), vec![2, 1]);
}

#[test]
fn guard_view_pending_usable_in_conditions() {
    // The readers-writers disjunction uses #Write inside a guard
    // (paper §2.5.1).
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let observed = Arc::new(Mutex::new(Vec::<usize>::new()));
        let obs2 = Arc::clone(&observed);
        let obj = ObjectBuilder::new("PendingView")
            .entry(
                EntryDef::new("A")
                    .array(2)
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .entry(EntryDef::new("B").intercepted().body(|_ctx, _| Ok(vec![])))
            .manager(move |mgr| loop {
                let obs3 = Arc::clone(&obs2);
                let sel = mgr.select(vec![
                    Guard::accept("A").when(move |v| {
                        // Record #B as seen from inside a guard.
                        obs3.lock().push(v.pending("B"));
                        true
                    }),
                    Guard::accept("B"),
                ])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        obj.call("A", vals![]).unwrap();
        assert!(!observed.lock().is_empty());
    })
    .unwrap();
}

#[test]
fn values_are_intercepted_prefix_only() {
    // With intercept_params(1) of a 2-param entry, guards see one value.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Prefix")
            .entry(
                EntryDef::new("P")
                    .params([Ty::Int, Ty::Str])
                    .intercept_params(1)
                    .body(|_ctx, _| Ok(vec![])),
            )
            .manager(|mgr| loop {
                let sel = mgr.select(vec![Guard::accept("P").when(|v| {
                    assert_eq!(v.values().len(), 1);
                    true
                })])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        assert_eq!(call.params().len(), 1);
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        obj.call("P", vec![Value::Int(1), Value::str("x")]).unwrap();
    })
    .unwrap();
}
