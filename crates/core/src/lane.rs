//! Adaptive single-producer fast lane for the call intake path.
//!
//! The MPSC intake ring ([`IntakeRing`](alps_runtime::chan::IntakeRing))
//! pays full multi-producer generality — a CAS-claimed slot plus a
//! sequence-stamp publish — on every push, even when one synchronous
//! caller dominates an object, which is exactly the warm single-client
//! workload of the paper's call protocol (§2.2). This module provides the
//! two pieces the object layer combines into an *adaptive* private lane
//! for that caller:
//!
//! * [`SpscLane`]: a Lamport ring — plain head/tail loads and stores, no
//!   CAS anywhere on push or pop. Safe only under exactly one producer
//!   and one consumer at a time.
//! * [`LaneOwner`]: the single atomic word that *makes* the lane SPSC.
//!   It encodes `(producer + 1) << 1 | pushing_bit`; every transition is
//!   a compare-exchange, so the three parties (the owning producer, a
//!   would-be promoting manager, a demoting manager or restart sweep)
//!   can never disagree about who may touch the ring:
//!
//!   - The producer brackets each push with `begin_push` (sets the
//!     pushing bit; failure means ownership was lost → fall back to the
//!     MPSC ring) and `end_push` (clears it).
//!   - Demotion (`try_release`) CAS-es `owner → FREE` and *fails while
//!     the pushing bit is set*, so the lane is never reclaimed under a
//!     producer's feet; the push window is a handful of straight-line
//!     instructions, so demoters simply retry.
//!   - Promotion (`promote`) CAS-es `FREE → owner` and therefore cannot
//!     race an unfinished demotion.
//!
//! The object layer (see `object.rs`) decides *when* to promote and
//! demote — from the same per-entry producer-streak statistics the drain
//! loop already keeps — and drains the lane ahead of the shared ring so
//! per-producer FIFO order is preserved across promote/demote/handoff.
//! Restart-generation checks also live there: the lane stores the same
//! `(entry, cell)` pairs as the ring, and a restart sweep classifies them
//! with the same generation logic.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Lane owner word: `FREE`, or `(pid + 1) << 1 | pushing`.
///
/// The `+ 1` keeps the encoding non-zero for every possible process id,
/// so `FREE == 0` is unambiguous.
const FREE: u64 = 0;

#[inline]
fn encode(pid: u64) -> u64 {
    (pid + 1) << 1
}

/// Outcome of [`LaneOwner::try_release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Release {
    /// The lane was already free.
    WasFree,
    /// The lane was released; the previous owner's process id.
    Released(u64),
    /// The owner is inside a `begin_push`/`end_push` window; retry after
    /// its (tiny, straight-line) push completes.
    Busy,
}

/// The ownership word of an [`SpscLane`]. See the module docs for the
/// full protocol.
///
/// All operations are `SeqCst`: the word participates in the object
/// layer's lost-wakeup handshakes (producer's post-push `mgr_active`
/// re-check, manager's pre-park lane re-check), which are store-buffering
/// patterns that weaker orderings do not close.
#[derive(Debug)]
pub(crate) struct LaneOwner(AtomicU64);

impl LaneOwner {
    pub(crate) fn new() -> LaneOwner {
        LaneOwner(AtomicU64::new(FREE))
    }

    /// Whether some producer currently owns the lane.
    pub(crate) fn is_active(&self) -> bool {
        self.0.load(Ordering::SeqCst) != FREE
    }

    /// The owning process id, if any (pushing bit ignored).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn owner(&self) -> Option<u64> {
        match self.0.load(Ordering::SeqCst) {
            FREE => None,
            w => Some((w >> 1) - 1),
        }
    }

    /// Whether `pid` currently owns the lane.
    pub(crate) fn is(&self, pid: u64) -> bool {
        let w = self.0.load(Ordering::SeqCst);
        w & !1 == encode(pid)
    }

    /// Claim a free lane for `pid`. Callers (the manager's drain loop)
    /// only promote while holding the drain lock, so two concurrent
    /// promotions cannot both succeed — but the CAS makes that a checked
    /// fact rather than an assumption.
    pub(crate) fn promote(&self, pid: u64) -> bool {
        self.0
            .compare_exchange(FREE, encode(pid), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Enter the push window: `owner → owner|pushing`. Returns `false`
    /// when `pid` no longer owns the lane (demoted, or someone else owns
    /// it) — the caller must fall back to the shared MPSC ring.
    pub(crate) fn begin_push(&self, pid: u64) -> bool {
        let clean = encode(pid);
        self.0
            .compare_exchange(clean, clean | 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Leave the push window. Only callable after a successful
    /// [`begin_push`](Self::begin_push); while the pushing bit is set no
    /// other party writes the word, so a plain store suffices.
    pub(crate) fn end_push(&self, pid: u64) {
        debug_assert_eq!(self.0.load(Ordering::SeqCst), encode(pid) | 1);
        self.0.store(encode(pid), Ordering::SeqCst);
    }

    /// Attempt to free the lane, whoever owns it. Fails with
    /// [`Release::Busy`] while the owner is mid-push.
    pub(crate) fn try_release(&self) -> Release {
        let w = self.0.load(Ordering::SeqCst);
        if w == FREE {
            return Release::WasFree;
        }
        if w & 1 != 0 {
            return Release::Busy;
        }
        match self
            .0
            .compare_exchange(w, FREE, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Release::Released((w >> 1) - 1),
            Err(FREE) => Release::WasFree,
            Err(_) => Release::Busy,
        }
    }
}

/// Lamport single-producer / single-consumer ring.
///
/// `head` is owned by the consumer, `tail` by the producer; each side
/// does one plain load of its own index, one `Acquire` load of the
/// other's, and one `Release` store to publish. The `Release` tail store
/// publishes the slot write (pop's `Acquire` tail load synchronizes with
/// it); the `Release` head store publishes slot *vacancy* (push's
/// `Acquire` head load synchronizes with that, so a slot is never
/// overwritten while the consumer still reads it).
///
/// Exclusivity of each side is the caller's obligation — in this crate
/// it is enforced by [`LaneOwner`] on the producer side and by the
/// object's `intake_drain` mutex on the consumer side.
pub(crate) struct SpscLane<T> {
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

unsafe impl<T: Send> Send for SpscLane<T> {}
unsafe impl<T: Send> Sync for SpscLane<T> {}

impl<T> SpscLane<T> {
    /// A lane with capacity `cap` rounded up to a power of two (min 2).
    pub(crate) fn with_capacity(cap: usize) -> SpscLane<T> {
        let cap = cap.max(2).next_power_of_two();
        SpscLane {
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Producer side: append `item`, or hand it back when the lane is
    /// full (the object layer overflows to the shared ring — safe for
    /// FIFO because a lane producer is synchronous and thus has at most
    /// one call in flight).
    ///
    /// Returns `Ok(was_empty)` like the MPSC ring, so the caller can
    /// reuse its notify-on-transition logic.
    pub(crate) fn push(&self, item: T) -> Result<bool, T> {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if t.wrapping_sub(h) > self.mask {
            return Err(item);
        }
        unsafe {
            (*self.slots[t & self.mask].get()).write(item);
        }
        self.tail.store(t.wrapping_add(1), Ordering::Release);
        Ok(t == h)
    }

    /// Consumer side: take the oldest item, if any.
    pub(crate) fn pop(&self) -> Option<T> {
        let h = self.head.load(Ordering::Relaxed);
        if self.tail.load(Ordering::Acquire) == h {
            return None;
        }
        let item = unsafe { (*self.slots[h & self.mask].get()).assume_init_read() };
        self.head.store(h.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Whether the lane is empty. Exact for the consumer; a racy
    /// snapshot for anyone else (used only as an advisory re-check in
    /// the manager's pre-park handshake, where a stale `false` costs one
    /// extra drain pass and a stale `true` is excluded by the `SeqCst`
    /// fences of that handshake).
    pub(crate) fn is_empty(&self) -> bool {
        self.tail.load(Ordering::Acquire) == self.head.load(Ordering::Acquire)
    }

    /// Queued item count (same snapshot caveat as
    /// [`is_empty`](Self::is_empty)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> Drop for SpscLane<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_fifo_and_capacity() {
        let lane: SpscLane<u32> = SpscLane::with_capacity(4);
        assert!(lane.is_empty());
        assert_eq!(lane.push(1), Ok(true), "first push reports was_empty");
        assert_eq!(lane.push(2), Ok(false));
        assert_eq!(lane.push(3), Ok(false));
        assert_eq!(lane.push(4), Ok(false));
        assert_eq!(lane.push(5), Err(5), "full lane hands the item back");
        assert_eq!(lane.len(), 4);
        assert_eq!(lane.pop(), Some(1));
        assert_eq!(lane.pop(), Some(2));
        assert_eq!(lane.push(5), Ok(false), "space reclaimed after pops");
        assert_eq!(lane.pop(), Some(3));
        assert_eq!(lane.pop(), Some(4));
        assert_eq!(lane.pop(), Some(5));
        assert_eq!(lane.pop(), None);
        assert!(lane.is_empty());
    }

    #[test]
    fn spsc_survives_index_wraparound() {
        let lane: SpscLane<usize> = SpscLane::with_capacity(2);
        for i in 0..1000 {
            assert!(lane.push(i).is_ok());
            assert_eq!(lane.pop(), Some(i));
        }
    }

    #[test]
    fn spsc_drop_releases_queued_items() {
        let lane: SpscLane<Arc<u32>> = SpscLane::with_capacity(4);
        let item = Arc::new(7u32);
        lane.push(Arc::clone(&item)).unwrap();
        lane.push(Arc::clone(&item)).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(lane);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn spsc_two_thread_stress_preserves_order() {
        let lane: Arc<SpscLane<u64>> = Arc::new(SpscLane::with_capacity(8));
        let producer = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                for i in 0..100_000u64 {
                    let mut v = i;
                    loop {
                        match lane.push(v) {
                            Ok(_) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let mut expect = 0u64;
        while expect < 100_000 {
            if let Some(v) = lane.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(lane.is_empty());
    }

    #[test]
    fn owner_word_transitions() {
        let o = LaneOwner::new();
        assert!(!o.is_active());
        assert_eq!(o.owner(), None);
        assert_eq!(o.try_release(), Release::WasFree);

        assert!(o.promote(0), "pid 0 encodes distinctly from FREE");
        assert!(o.is_active());
        assert_eq!(o.owner(), Some(0));
        assert!(o.is(0));
        assert!(!o.is(1));
        assert!(!o.promote(1), "occupied lane rejects promotion");

        assert!(o.begin_push(0));
        assert!(!o.begin_push(1), "non-owner cannot enter push window");
        assert_eq!(o.try_release(), Release::Busy, "mid-push blocks release");
        assert_eq!(o.owner(), Some(0), "owner visible through pushing bit");
        o.end_push(0);
        assert_eq!(o.try_release(), Release::Released(0));
        assert!(!o.begin_push(0), "released owner lost the lane");
        assert!(o.promote(1));
        assert_eq!(o.owner(), Some(1));
    }
}
