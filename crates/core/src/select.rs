//! Nondeterministic guarded selection (paper §2.4).
//!
//! ALPS `select`/`loop` statements guard alternatives with any of:
//!
//! ```text
//! when B                        -- pure boolean guard
//! accept P[i] (...) when B      -- a pending call is attached to P[i]
//! await  P[i] (...) when B      -- P[i] is ready to terminate
//! receive C(...) when B         -- a message is buffered on channel C
//! ```
//!
//! each optionally ending in `pri E`, a *run-time* priority expression:
//! among the eligible alternatives, the one with the smallest `pri` value
//! is selected (ties break deterministically by guard listing order, then
//! slot index). Acceptance conditions (`when B` over received values) are
//! evaluated against a candidate without consuming it: a failing condition
//! leaves the call attached / the message buffered — SR semantics, which
//! the paper adopts [12].
//!
//! Closedness follows CSP: a `when false` guard is closed; a `receive`
//! guard on a closed, unmatched channel is closed; `accept`/`await`
//! guards close only when the whole object shuts down. A `select` whose
//! guards are all closed fails with [`AlpsError::SelectFailed`].
//!
//! # Locking
//!
//! Object state is split per entry, so a select evaluates each
//! `accept`/`await` guard under that entry's own lock — and skips the lock
//! entirely when the entry's atomic attached/ready count says there is
//! nothing to look at. The chosen candidate is committed under a fresh
//! acquisition of its entry lock with re-validation; the manager is the
//! only consumer of attached/ready slots, so the only writer that can
//! invalidate a candidate in between is shutdown, which the retry loop
//! turns into [`AlpsError::ObjectClosed`].

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use alps_runtime::{tuning, WaitOutcome};

use crate::error::{AlpsError, Result};
use crate::manager::{AcceptedCall, ReadyEntry};
use crate::object::{ObjectInner, Slot};
use crate::value::{ChanValue, Value};

/// Read-only view handed to `when`/`pri` closures while a candidate's
/// entry is locked: the candidate's slot index and visible values, plus
/// the `#P` pending counts the paper allows in acceptance conditions
/// (§2.5.1 uses `#Read`/`#Write` inside guards).
pub struct GuardView<'s> {
    pub(crate) slot: usize,
    pub(crate) values: &'s [Value],
    pub(crate) obj: &'s ObjectInner,
}

impl fmt::Debug for GuardView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuardView")
            .field("slot", &self.slot)
            .field("values", &self.values)
            .finish()
    }
}

impl GuardView<'_> {
    /// Procedure-array index of the candidate (0-based; the paper writes
    /// `P[1..N]`, the embedded API uses `0..N`).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Visible values of the candidate: intercepted parameters for an
    /// `accept` guard, intercepted results followed by hidden results for
    /// an `await` guard, the full message for a `receive` guard, empty for
    /// `when` guards.
    pub fn values(&self) -> &[Value] {
        self.values
    }

    /// `#entry` — pending-call count usable inside acceptance conditions.
    /// Reads the entry's atomic index; never takes a lock (safe to call on
    /// any entry, including the candidate's own).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist (a programming error in the
    /// manager body).
    pub fn pending(&self, entry: &str) -> usize {
        let idx = self
            .obj
            .entry_idx(entry)
            .unwrap_or_else(|e| panic!("GuardView::pending: {e}"));
        self.obj.pending(idx)
    }

    /// [`pending`](GuardView::pending) through a pre-resolved entry index
    /// (builder declaration order) — no string hash on the guard path.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn pending_idx(&self, entry: usize) -> usize {
        assert!(
            entry < self.obj.entries.len(),
            "GuardView::pending_idx: entry #{entry} out of range"
        );
        self.obj.pending(entry)
    }
}

type WhenFn<'a> = Box<dyn Fn(&GuardView<'_>) -> bool + 'a>;
type PriFn<'a> = Box<dyn Fn(&GuardView<'_>) -> i64 + 'a>;

/// How a guard designates its entry: by name (resolved to an index once
/// per select) or by a pre-resolved index (compiled managers; the select
/// pass then never hashes a string).
pub(crate) enum EntrySel {
    Name(String),
    Idx(usize),
}

impl EntrySel {
    fn label(&self) -> String {
        match self {
            EntrySel::Name(n) => n.clone(),
            EntrySel::Idx(i) => format!("entry#{i}"),
        }
    }

    fn resolve(&self, obj: &ObjectInner) -> Result<usize> {
        match self {
            EntrySel::Name(n) => obj.entry_idx(n),
            EntrySel::Idx(i) if *i < obj.entries.len() => Ok(*i),
            EntrySel::Idx(i) => Err(AlpsError::UnknownEntry {
                object: obj.name.clone(),
                entry: format!("entry#{i}"),
            }),
        }
    }
}

pub(crate) enum GuardKind {
    Accept {
        entry: EntrySel,
        slot: Option<usize>,
    },
    AwaitDone {
        entry: EntrySel,
        slot: Option<usize>,
    },
    Receive {
        chan: ChanValue,
    },
    When {
        cond: bool,
    },
}

/// One guarded alternative of a [`select`](crate::ManagerCtx::select).
///
/// # Examples
///
/// The bounded-buffer manager guards (paper §2.4.1):
///
/// ```no_run
/// use alps_core::Guard;
/// let count = 3usize;
/// let n = 8usize;
/// let guards = vec![
///     Guard::accept("Deposit").when(move |_| count < n),
///     Guard::accept("Remove").when(move |_| count > 0),
/// ];
/// # let _ = guards;
/// ```
pub struct Guard<'a> {
    pub(crate) kind: GuardKind,
    pub(crate) when: Option<WhenFn<'a>>,
    pub(crate) pri: Option<PriFn<'a>>,
}

impl fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            GuardKind::Accept { entry, slot } => format!("accept {}{slot:?}", entry.label()),
            GuardKind::AwaitDone { entry, slot } => format!("await {}{slot:?}", entry.label()),
            GuardKind::Receive { chan } => format!("receive {}", chan.name()),
            GuardKind::When { cond } => format!("when {cond}"),
        };
        f.debug_struct("Guard")
            .field("kind", &kind)
            .field("has_when", &self.when.is_some())
            .field("has_pri", &self.pri.is_some())
            .finish()
    }
}

impl<'a> Guard<'a> {
    fn new(kind: GuardKind) -> Guard<'a> {
        Guard {
            kind,
            when: None,
            pri: None,
        }
    }

    /// `accept P` over any element of P's hidden procedure array.
    pub fn accept(entry: impl Into<String>) -> Guard<'a> {
        Guard::new(GuardKind::Accept {
            entry: EntrySel::Name(entry.into()),
            slot: None,
        })
    }

    /// `accept P[i]` for a specific array element.
    pub fn accept_slot(entry: impl Into<String>, slot: usize) -> Guard<'a> {
        Guard::new(GuardKind::Accept {
            entry: EntrySel::Name(entry.into()),
            slot: Some(slot),
        })
    }

    /// [`accept`](Guard::accept) through a pre-resolved entry index (the
    /// position of the entry in [`ObjectBuilder`](crate::ObjectBuilder)
    /// declaration order). Skips per-select name resolution entirely —
    /// compiled managers use this so the warm select path never hashes a
    /// string.
    pub fn accept_idx(entry: usize) -> Guard<'a> {
        Guard::new(GuardKind::Accept {
            entry: EntrySel::Idx(entry),
            slot: None,
        })
    }

    /// [`accept_slot`](Guard::accept_slot) through a pre-resolved entry
    /// index.
    pub fn accept_slot_idx(entry: usize, slot: usize) -> Guard<'a> {
        Guard::new(GuardKind::Accept {
            entry: EntrySel::Idx(entry),
            slot: Some(slot),
        })
    }

    /// `await P` — some element of P is ready to terminate.
    pub fn await_done(entry: impl Into<String>) -> Guard<'a> {
        Guard::new(GuardKind::AwaitDone {
            entry: EntrySel::Name(entry.into()),
            slot: None,
        })
    }

    /// `await P[i]` for a specific array element.
    pub fn await_slot(entry: impl Into<String>, slot: usize) -> Guard<'a> {
        Guard::new(GuardKind::AwaitDone {
            entry: EntrySel::Name(entry.into()),
            slot: Some(slot),
        })
    }

    /// [`await_done`](Guard::await_done) through a pre-resolved entry
    /// index.
    pub fn await_idx(entry: usize) -> Guard<'a> {
        Guard::new(GuardKind::AwaitDone {
            entry: EntrySel::Idx(entry),
            slot: None,
        })
    }

    /// [`await_slot`](Guard::await_slot) through a pre-resolved entry
    /// index.
    pub fn await_slot_idx(entry: usize, slot: usize) -> Guard<'a> {
        Guard::new(GuardKind::AwaitDone {
            entry: EntrySel::Idx(entry),
            slot: Some(slot),
        })
    }

    /// `receive C(...)` — a buffered message is available on `chan`.
    pub fn receive(chan: &ChanValue) -> Guard<'a> {
        Guard::new(GuardKind::Receive { chan: chan.clone() })
    }

    /// `when B` — a pure boolean alternative.
    pub fn cond(cond: bool) -> Guard<'a> {
        Guard::new(GuardKind::When { cond })
    }

    /// Attach an acceptance condition evaluated against each candidate
    /// (paper §2.4: conditions may depend on the values received).
    pub fn when(mut self, f: impl Fn(&GuardView<'_>) -> bool + 'a) -> Self {
        self.when = Some(Box::new(f));
        self
    }

    /// Attach a run-time priority expression (`pri E`): among eligible
    /// alternatives the smallest value wins. Guards without `pri` have
    /// priority 0.
    pub fn pri(mut self, f: impl Fn(&GuardView<'_>) -> i64 + 'a) -> Self {
        self.pri = Some(Box::new(f));
        self
    }

    /// Constant-priority convenience for [`pri`](Guard::pri).
    pub fn pri_const(self, v: i64) -> Self {
        self.pri(move |_| v)
    }
}

/// The alternative a [`select`](crate::ManagerCtx::select) chose.
#[derive(Debug)]
pub enum Selected {
    /// An `accept` guard fired; consume the call with
    /// [`start`](crate::ManagerCtx::start),
    /// [`finish_accepted`](crate::ManagerCtx::finish_accepted) or
    /// [`execute`](crate::ManagerCtx::execute).
    Accepted {
        /// Index of the guard that fired.
        guard: usize,
        /// The accepted call token.
        call: AcceptedCall,
    },
    /// An `await` guard fired; consume with
    /// [`finish`](crate::ManagerCtx::finish).
    Ready {
        /// Index of the guard that fired.
        guard: usize,
        /// The awaited-entry token.
        done: ReadyEntry,
    },
    /// A `receive` guard fired.
    Received {
        /// Index of the guard that fired.
        guard: usize,
        /// The received message.
        msg: Vec<Value>,
    },
    /// A pure `when` guard fired.
    Cond {
        /// Index of the guard that fired.
        guard: usize,
    },
}

impl Selected {
    /// Index of the guard that fired, in listing order.
    pub fn guard_index(&self) -> usize {
        match self {
            Selected::Accepted { guard, .. }
            | Selected::Ready { guard, .. }
            | Selected::Received { guard, .. }
            | Selected::Cond { guard } => *guard,
        }
    }
}

enum CandAction {
    Accept { entry: usize, slot: usize },
    Await { entry: usize, slot: usize },
    Receive,
    Cond,
}

struct Candidate {
    pri: i64,
    guard: usize,
    slot: usize,
    action: CandAction,
}

fn consider(best: &mut Option<Candidate>, c: Candidate) {
    let better = match best {
        None => true,
        Some(b) => (c.pri, c.guard, c.slot) < (b.pri, b.guard, b.slot),
    };
    if better {
        *best = Some(c);
    }
}

/// Run one select: block until a guard fires or all guards close.
/// `gen` is the restart generation of the selecting manager context; a
/// supervised restart bumps it, failing the select with
/// [`AlpsError::ObjectRestarting`] before any stale commit.
pub(crate) fn run_select(
    obj: &Arc<ObjectInner>,
    guards: &[Guard<'_>],
    gen: u64,
) -> Result<Selected> {
    run_select_deadline(obj, guards, None, gen)
}

/// [`run_select`] with an optional deadline: `(absolute expiry, budget)`.
/// When the expiry passes before any guard fires, the select fails with
/// [`AlpsError::Timeout`] (callers rewrite `what` to name their wait).
/// The deadline bounds *waiting* only — a guard that is already eligible
/// is still committed even if the deadline has technically passed, so a
/// zero-tick deadline degenerates to a non-blocking poll.
pub(crate) fn run_select_deadline(
    obj: &Arc<ObjectInner>,
    guards: &[Guard<'_>],
    deadline: Option<(u64, u64)>,
    gen: u64,
) -> Result<Selected> {
    if guards.is_empty() {
        return Err(AlpsError::SelectFailed);
    }
    // Resolve entry names once.
    let mut resolved: Vec<Option<usize>> = Vec::with_capacity(guards.len());
    for g in guards {
        match &g.kind {
            GuardKind::Accept { entry, .. } | GuardKind::AwaitDone { entry, .. } => {
                resolved.push(Some(entry.resolve(obj)?));
            }
            _ => resolved.push(None),
        }
    }
    // Batch-aware fast path: the overwhelmingly common manager shapes —
    // `mgr.accept(..)`, `mgr.await_done(..)`, their `_slot` variants, and
    // single-guard selects — scan and commit under ONE acquisition of the
    // entry lock, straight from the freshly drained batch, instead of the
    // general evaluate-unlock-relock-commit dance. Requires no `pri`
    // (with several eligible slots, a priority expression may pick a
    // later one; first-eligible would be wrong).
    let single_fast = guards.len() == 1
        && guards[0].pri.is_none()
        && matches!(
            guards[0].kind,
            GuardKind::Accept { .. } | GuardKind::AwaitDone { .. }
        );
    loop {
        if obj.is_closed() {
            return Err(obj.closed_err());
        }
        // Checked every iteration (each wakeup), so a manager parked in
        // select observes a restart promptly and unwinds to the
        // supervisor instead of committing into the new generation.
        if obj.generation.load(Ordering::SeqCst) != gen {
            return Err(obj.restarting_err());
        }
        // Epoch before drain: any push after this snapshot bumps the
        // epoch, so the wait below cannot sleep through it.
        let epoch = obj.notifier.epoch();
        obj.drain_intake();
        if single_fast {
            let entry = resolved[0].expect("resolved above");
            if let Some(sel) = fused_single(obj, &guards[0], entry, gen) {
                return Ok(sel);
            }
            // Accept/await guards never close while the object is open.
            wait_for_work_deadline(obj, epoch, deadline)?;
            continue;
        }
        for g in guards {
            if let GuardKind::Receive { chan } = &g.kind {
                chan.raw().subscribe(&obj.notifier);
            }
        }
        let mut all_closed = true;
        let mut best: Option<Candidate> = None;
        for (gi, g) in guards.iter().enumerate() {
            match &g.kind {
                GuardKind::Accept { slot, .. } => {
                    all_closed = false;
                    let entry = resolved[gi].expect("resolved above");
                    let sync = &obj.estates[entry];
                    // Lock-free pre-check: no attached call, nothing to
                    // evaluate. A call attaching after this load bumps the
                    // notifier epoch, so `wait_past` below cannot sleep
                    // through it.
                    if sync.attached.load(Ordering::SeqCst) == 0 {
                        continue;
                    }
                    let k = obj.entries[entry]
                        .intercept
                        .map(|ic| ic.params)
                        .unwrap_or(0);
                    let es = sync.st.lock();
                    for (i, s) in es.slots.iter().enumerate() {
                        if slot.is_some() && *slot != Some(i) {
                            continue;
                        }
                        let Slot::Attached { call } = s else {
                            continue;
                        };
                        let view = GuardView {
                            slot: i,
                            values: &call.args()[..k],
                            obj,
                        };
                        if g.when.as_ref().map(|f| f(&view)).unwrap_or(true) {
                            let pri = g.pri.as_ref().map(|f| f(&view)).unwrap_or(0);
                            consider(
                                &mut best,
                                Candidate {
                                    pri,
                                    guard: gi,
                                    slot: i,
                                    action: CandAction::Accept { entry, slot: i },
                                },
                            );
                        }
                    }
                }
                GuardKind::AwaitDone { slot, .. } => {
                    all_closed = false;
                    let entry = resolved[gi].expect("resolved above");
                    let sync = &obj.estates[entry];
                    if sync.ready.load(Ordering::SeqCst) == 0 {
                        continue;
                    }
                    let def = &obj.entries[entry];
                    let kr = def.intercept.map(|ic| ic.results).unwrap_or(0);
                    let pub_len = def.results.len();
                    let es = sync.st.lock();
                    for (i, s) in es.slots.iter().enumerate() {
                        if slot.is_some() && *slot != Some(i) {
                            continue;
                        }
                        let Slot::Ready { outcome, .. } = s else {
                            continue;
                        };
                        // Visible values: intercepted result prefix +
                        // hidden results; a failed body is always
                        // eligible so the manager can clean up.
                        let visible: Vec<Value> = match outcome {
                            Ok(full) => {
                                let mut v = full[..kr.min(full.len())].to_vec();
                                if full.len() >= pub_len {
                                    v.extend(full[pub_len..].iter().cloned());
                                }
                                v
                            }
                            Err(_) => Vec::new(),
                        };
                        let view = GuardView {
                            slot: i,
                            values: &visible,
                            obj,
                        };
                        let eligible = match outcome {
                            Err(_) => true,
                            Ok(_) => g.when.as_ref().map(|f| f(&view)).unwrap_or(true),
                        };
                        if eligible {
                            let pri = g.pri.as_ref().map(|f| f(&view)).unwrap_or(0);
                            consider(
                                &mut best,
                                Candidate {
                                    pri,
                                    guard: gi,
                                    slot: i,
                                    action: CandAction::Await { entry, slot: i },
                                },
                            );
                        }
                    }
                }
                GuardKind::Receive { chan } => {
                    let found = chan.raw().peek_with(|it| {
                        for msg in it {
                            let view = GuardView {
                                slot: 0,
                                values: msg,
                                obj,
                            };
                            if g.when.as_ref().map(|f| f(&view)).unwrap_or(true) {
                                let pri = g.pri.as_ref().map(|f| f(&view)).unwrap_or(0);
                                return Some(pri);
                            }
                        }
                        None
                    });
                    match found {
                        Some(pri) => {
                            all_closed = false;
                            consider(
                                &mut best,
                                Candidate {
                                    pri,
                                    guard: gi,
                                    slot: 0,
                                    action: CandAction::Receive,
                                },
                            );
                        }
                        None => {
                            if !chan.is_closed() {
                                all_closed = false;
                            }
                        }
                    }
                }
                GuardKind::When { cond } => {
                    if *cond {
                        all_closed = false;
                        let view = GuardView {
                            slot: 0,
                            values: &[],
                            obj,
                        };
                        let pri = g.pri.as_ref().map(|f| f(&view)).unwrap_or(0);
                        consider(
                            &mut best,
                            Candidate {
                                pri,
                                guard: gi,
                                slot: 0,
                                action: CandAction::Cond,
                            },
                        );
                    }
                }
            }
        }
        let had_candidate = best.is_some();
        let chosen: Option<Selected> = match best {
            None => None,
            Some(c) => match c.action {
                CandAction::Accept { entry, slot } => {
                    // Commit under a fresh acquisition of the entry lock.
                    // The manager is the sole consumer of attached slots,
                    // so only shutdown can have invalidated the candidate;
                    // the retry loop then reports ObjectClosed.
                    let mut es = obj.estates[entry].st.lock();
                    if obj.generation.load(Ordering::SeqCst) != gen {
                        return Err(obj.restarting_err());
                    }
                    if matches!(es.slots[slot], Slot::Attached { .. }) {
                        let call = crate::manager::commit_accept(obj, &mut es, entry, slot, gen);
                        Some(Selected::Accepted {
                            guard: c.guard,
                            call,
                        })
                    } else {
                        None
                    }
                }
                CandAction::Await { entry, slot } => {
                    let mut es = obj.estates[entry].st.lock();
                    if obj.generation.load(Ordering::SeqCst) != gen {
                        return Err(obj.restarting_err());
                    }
                    if matches!(es.slots[slot], Slot::Ready { .. }) {
                        let done = crate::manager::commit_await(obj, &mut es, entry, slot, gen);
                        Some(Selected::Ready {
                            guard: c.guard,
                            done,
                        })
                    } else {
                        None
                    }
                }
                CandAction::Receive => {
                    let GuardKind::Receive { chan } = &guards[c.guard].kind else {
                        unreachable!()
                    };
                    let g = &guards[c.guard];
                    let msg = chan.raw().recv_match(&obj.rt, |m| {
                        let view = GuardView {
                            slot: 0,
                            values: m,
                            obj,
                        };
                        g.when.as_ref().map(|f| f(&view)).unwrap_or(true)
                    });
                    msg.map(|m| Selected::Received {
                        guard: c.guard,
                        msg: m,
                    })
                }
                CandAction::Cond => Some(Selected::Cond { guard: c.guard }),
            },
        };
        if let Some(sel) = chosen {
            return Ok(sel);
        }
        if had_candidate {
            // The candidate vanished between evaluation and commit: a
            // receive was stolen by a concurrent receiver, or shutdown
            // swept the slot. Re-evaluate at once.
            continue;
        }
        if all_closed {
            return Err(AlpsError::SelectFailed);
        }
        wait_for_work_deadline(obj, epoch, deadline)?;
    }
}

/// Deadline-bounded wrapper around [`wait_for_work`]: without a deadline
/// it is exactly `wait_for_work`; with one, the park is timer-bounded and
/// an expiry with no epoch movement fails the select with
/// [`AlpsError::Timeout`]. The storm-mode poll loop is skipped — a
/// deadline wait is a latency-tolerant cold path by definition.
fn wait_for_work_deadline(
    obj: &ObjectInner,
    epoch: u64,
    deadline: Option<(u64, u64)>,
) -> Result<()> {
    let Some((at, budget)) = deadline else {
        wait_for_work(obj, epoch);
        return Ok(());
    };
    let timeout = || AlpsError::Timeout {
        what: "select".into(),
        ticks: budget,
    };
    if obj.rt.now() >= at {
        return Err(timeout());
    }
    // Same lost-wakeup handshake as `wait_for_work` (see its comment).
    obj.mgr_active.store(false, Ordering::SeqCst);
    if obj.has_intake_work() {
        obj.mgr_active.store(true, Ordering::SeqCst);
        obj.rt.yield_now();
        return Ok(());
    }
    let moved = obj.notifier.wait_past_deadline(&obj.rt, epoch, at);
    obj.mgr_active.store(true, Ordering::SeqCst);
    obj.stats.on_mgr_wakeup();
    if !moved && obj.rt.now() >= at {
        return Err(timeout());
    }
    Ok(())
}

/// One-lock scan-and-commit for a single `accept`/`await` guard without
/// `pri`: the first eligible slot (lowest index — same choice the general
/// path makes for equal priorities) is committed in place.
fn fused_single(obj: &Arc<ObjectInner>, g: &Guard<'_>, entry: usize, gen: u64) -> Option<Selected> {
    let sync = &obj.estates[entry];
    match &g.kind {
        GuardKind::Accept { slot, .. } => {
            if sync.attached.load(Ordering::SeqCst) == 0 {
                return None;
            }
            let k = obj.entries[entry]
                .intercept
                .map(|ic| ic.params)
                .unwrap_or(0);
            let mut es = sync.st.lock();
            if obj.generation.load(Ordering::SeqCst) != gen {
                // Let the outer loop's generation check report the
                // restart instead of committing a stale accept.
                return None;
            }
            for i in 0..es.slots.len() {
                if slot.is_some() && *slot != Some(i) {
                    continue;
                }
                let eligible = {
                    let Slot::Attached { call } = &es.slots[i] else {
                        continue;
                    };
                    let view = GuardView {
                        slot: i,
                        values: &call.args()[..k],
                        obj,
                    };
                    g.when.as_ref().map(|f| f(&view)).unwrap_or(true)
                };
                if eligible {
                    let call = crate::manager::commit_accept(obj, &mut es, entry, i, gen);
                    return Some(Selected::Accepted { guard: 0, call });
                }
            }
            None
        }
        GuardKind::AwaitDone { slot, .. } => {
            if sync.ready.load(Ordering::SeqCst) == 0 {
                return None;
            }
            let def = &obj.entries[entry];
            let kr = def.intercept.map(|ic| ic.results).unwrap_or(0);
            let pub_len = def.results.len();
            let mut es = sync.st.lock();
            if obj.generation.load(Ordering::SeqCst) != gen {
                return None;
            }
            for i in 0..es.slots.len() {
                if slot.is_some() && *slot != Some(i) {
                    continue;
                }
                let eligible = {
                    let Slot::Ready { outcome, .. } = &es.slots[i] else {
                        continue;
                    };
                    match outcome {
                        Err(_) => true,
                        Ok(full) => {
                            let mut v = full[..kr.min(full.len())].to_vec();
                            if full.len() >= pub_len {
                                v.extend(full[pub_len..].iter().cloned());
                            }
                            let view = GuardView {
                                slot: i,
                                values: &v,
                                obj,
                            };
                            g.when.as_ref().map(|f| f(&view)).unwrap_or(true)
                        }
                    }
                };
                if eligible {
                    let done = crate::manager::commit_await(obj, &mut es, entry, i, gen);
                    return Some(Selected::Ready { guard: 0, done });
                }
            }
            None
        }
        _ => unreachable!("single_fast gate checked the kind"),
    }
}

/// The manager's wait point, with the lost-wakeup handshake against the
/// intake ring. Clearing `mgr_active` *before* the emptiness re-check
/// pairs (SeqCst store-buffering pair) with a producer's push-then-load:
/// either the manager sees the push and retries, or the producer sees the
/// manager inactive and parks — in which case the producer's push flipped
/// the drained-empty ring and its notify bumped the epoch this wait
/// watches. A `false` from `is_empty` may also mean a producer has
/// *claimed but not yet published* a slot (such a producer owes no
/// notify), so the manager must not sleep — it yields and retries.
fn wait_for_work(obj: &ObjectInner, epoch: u64) {
    // Storm mode (promoted by `drain_intake` on a batch of ≥ 2): several
    // callers are concurrently in their wake-and-resubmit window. Parking
    // now would convoy them — each would find `mgr_active` false, park in
    // turn, and pay a futex round trip per call while the ring never
    // accumulates a real batch. Instead, yield-poll the ring: every yield
    // hands the CPU to a waking caller, whose push needs no notify
    // syscall (we never register as a waiter) and whose reply wait stays
    // in its yield phase (`mgr_active` stays true). One dry budget — no
    // work after `tuning::MGR_POLL_BUDGET` yields — demotes back to
    // parking. Pointless in simulation, where only one process runs at a
    // time.
    // An active SPSC lane keeps the manager in poll mode too: the lane
    // exists precisely so a lone dominant caller (which never produces
    // the ≥ 2 batches storm mode keys on) gets the same futex-free
    // submit→serve→reply rotation.
    if (obj.mgr_poll.load(Ordering::SeqCst) || obj.lane_owner.is_active()) && !obj.rt.is_sim() {
        for _ in 0..tuning::MGR_POLL_BUDGET {
            if obj.has_intake_work() || obj.notifier.epoch() != epoch {
                obj.stats.on_mgr_wakeup();
                obj.stats.on_spin_resolved();
                return;
            }
            obj.rt.yield_now();
        }
        obj.mgr_poll.store(false, Ordering::SeqCst);
    }
    // Lane idle accounting: reaching this point means a full dry poll
    // budget (or, in simulation, a drain that found nothing). An owner
    // that lets the manager get this far has gone quiet; after
    // `tuning::LANE_IDLE_DEMOTE_PASSES` consecutive dry passes the lane
    // is released so the object parks like a plain MPSC object again. A
    // `Busy` release (owner mid-push) or a non-empty lane resets the
    // count — work is coming.
    if obj.lane_owner.is_active() {
        if obj.lane.is_empty() {
            let dry = obj.lane_dry.fetch_add(1, Ordering::SeqCst) + 1;
            if dry >= tuning::LANE_IDLE_DEMOTE_PASSES {
                obj.lane_dry.store(0, Ordering::SeqCst);
                if matches!(
                    obj.lane_owner.try_release(),
                    crate::lane::Release::Released(_)
                ) {
                    obj.stats.on_lane_demote();
                }
            }
        } else {
            obj.lane_dry.store(0, Ordering::SeqCst);
        }
    }
    obj.mgr_active.store(false, Ordering::SeqCst);
    if obj.has_intake_work() {
        obj.mgr_active.store(true, Ordering::SeqCst);
        obj.rt.yield_now();
        return;
    }
    // Spin rounds are pure CPU hints (no yields): they only pay when a
    // producer is mid-call on another core; `wait_past_spin` skips them
    // in simulation.
    let out = obj
        .notifier
        .wait_past_spin(&obj.rt, epoch, tuning::MGR_IDLE_SPIN_ROUNDS);
    obj.mgr_active.store(true, Ordering::SeqCst);
    obj.stats.on_mgr_wakeup();
    match out {
        WaitOutcome::Spun => obj.stats.on_spin_resolved(),
        WaitOutcome::Parked => obj.stats.on_park_resolved(),
        WaitOutcome::Immediate => {}
    }
}
