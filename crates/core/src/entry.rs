//! Entry-procedure declarations: signatures, hidden procedure arrays,
//! hidden parameters/results, and intercept specifications.
//!
//! An ALPS object is described in two parts (paper §2.2): the *definition*
//! (names and public signatures of entry procedures) and the
//! *implementation* (bodies, array sizes, hidden parameters/results, the
//! manager and its intercepts clause). [`EntryDef`] carries both parts for
//! one entry; [`crate::ObjectBuilder`] assembles an object from them.

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::proc_ctx::ProcCtx;
use crate::value::{Ty, ValVec};

/// The code of an entry procedure. It receives the full parameter list —
/// the public parameters (with the intercepted prefix as supplied by the
/// manager at `start`) followed by any hidden parameters — and returns the
/// public results followed by any hidden results.
///
/// Parameters and results travel as [`ValVec`] so calls of arity ≤ 4 stay
/// off the heap; [`EntryDef::body`] accepts closures returning either
/// `Vec<Value>` or `ValVec`.
pub type EntryBody = Arc<dyn Fn(&mut ProcCtx, ValVec) -> Result<ValVec> + Send + Sync + 'static>;

/// Intercept specification for one entry: the manager receives the first
/// `params` invocation parameters at `accept` and supplies the first
/// `results` results at `finish` (paper §2.6: *initial subsequences* of
/// the public lists — "it is wasteful to require the manager to receive
/// all the parameters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Intercept {
    /// Length of the intercepted parameter prefix.
    pub params: usize,
    /// Length of the intercepted result prefix.
    pub results: usize,
}

/// Declaration of one entry (or local) procedure.
///
/// # Examples
///
/// ```
/// use alps_core::{EntryDef, Ty};
///
/// // The paper's spooler Print entry: exported as a single procedure,
/// // implemented as an array; the manager supplies the printer number as
/// // a hidden parameter and gets it back as a hidden result (§2.8.1).
/// let print = EntryDef::new("Print")
///     .params([Ty::Str])
///     .array(8)
///     .intercepted()
///     .hidden_params([Ty::Int])
///     .hidden_results([Ty::Int])
///     .body(|_ctx, args| Ok(vec![args[1].clone()]));
/// assert_eq!(print.name(), "Print");
/// assert_eq!(print.array_size(), 8);
/// ```
#[derive(Clone)]
pub struct EntryDef {
    pub(crate) name: String,
    pub(crate) params: Vec<Ty>,
    pub(crate) results: Vec<Ty>,
    pub(crate) hidden_params: Vec<Ty>,
    pub(crate) hidden_results: Vec<Ty>,
    pub(crate) array: usize,
    pub(crate) local: bool,
    pub(crate) intercept: Option<Intercept>,
    pub(crate) body: Option<EntryBody>,
    pub(crate) fast_lane: bool,
}

impl fmt::Debug for EntryDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EntryDef")
            .field("name", &self.name)
            .field("params", &self.params)
            .field("results", &self.results)
            .field("hidden_params", &self.hidden_params)
            .field("hidden_results", &self.hidden_results)
            .field("array", &self.array)
            .field("local", &self.local)
            .field("intercept", &self.intercept)
            .field("has_body", &self.body.is_some())
            .finish()
    }
}

impl EntryDef {
    /// New entry with no parameters, no results, array size 1, not local,
    /// not intercepted, no body.
    pub fn new(name: impl Into<String>) -> EntryDef {
        EntryDef {
            name: name.into(),
            params: Vec::new(),
            results: Vec::new(),
            hidden_params: Vec::new(),
            hidden_results: Vec::new(),
            array: 1,
            local: false,
            intercept: None,
            body: None,
            fast_lane: true,
        }
    }

    /// Public (definition-part) parameter types.
    pub fn params(mut self, tys: impl IntoIterator<Item = Ty>) -> Self {
        self.params = tys.into_iter().collect();
        self
    }

    /// Public (definition-part) result types.
    pub fn results(mut self, tys: impl IntoIterator<Item = Ty>) -> Self {
        self.results = tys.into_iter().collect();
        self
    }

    /// Hidden parameters, supplied by the manager at `start` (paper §2.8).
    /// Requires the entry to be intercepted.
    pub fn hidden_params(mut self, tys: impl IntoIterator<Item = Ty>) -> Self {
        self.hidden_params = tys.into_iter().collect();
        self
    }

    /// Hidden results, received by the manager at `await` (paper §2.8).
    /// Requires the entry to be intercepted.
    pub fn hidden_results(mut self, tys: impl IntoIterator<Item = Ty>) -> Self {
        self.hidden_results = tys.into_iter().collect();
        self
    }

    /// Implement this entry as a hidden procedure array of `n` elements
    /// (paper §2.5). Callers still see a single procedure; each arriving
    /// call attaches to a free element. `n` bounds the number of in-flight
    /// executions of this entry.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn array(mut self, n: usize) -> Self {
        assert!(n > 0, "a procedure array needs at least one element");
        self.array = n;
        self
    }

    /// Mark the procedure local: not callable from outside the object,
    /// only via [`ProcCtx::call_local`]. Local procedures may still be
    /// intercepted (paper §2.3: "to intercept even local procedures").
    pub fn local(mut self) -> Self {
        self.local = true;
        self
    }

    /// Direct calls to this entry to the manager, intercepting no
    /// parameters and no results.
    pub fn intercepted(mut self) -> Self {
        self.intercept.get_or_insert(Intercept::default());
        self
    }

    /// Intercept the first `k` invocation parameters (implies
    /// interception).
    pub fn intercept_params(mut self, k: usize) -> Self {
        self.intercept.get_or_insert(Intercept::default()).params = k;
        self
    }

    /// Intercept the first `k` results (implies interception).
    pub fn intercept_results(mut self, k: usize) -> Self {
        self.intercept.get_or_insert(Intercept::default()).results = k;
        self
    }

    /// Allow or forbid calls to this entry to travel over the object's
    /// adaptive SPSC fast lane (on by default). A dominant caller that
    /// keeps invoking fast-lane entries is promoted to a private
    /// single-producer queue that bypasses the shared intake ring's CAS
    /// loop. Disable for entries whose calls must interleave with other
    /// entries' in strict shared-ring arrival order for observability
    /// (the lane preserves per-caller FIFO and linearizability either
    /// way).
    pub fn fast_lane(mut self, enabled: bool) -> Self {
        self.fast_lane = enabled;
        self
    }

    /// Attach the procedure body. The closure receives the argument tuple
    /// as a [`ValVec`] (indexes and iterates like a `Vec<Value>`) and may
    /// return results as either `Vec<Value>` or `ValVec` — return
    /// [`crate::argv!`] tuples to keep the body allocation-free.
    pub fn body<F, R>(mut self, f: F) -> Self
    where
        F: Fn(&mut ProcCtx, ValVec) -> Result<R> + Send + Sync + 'static,
        R: Into<ValVec>,
    {
        self.body = Some(Arc::new(move |ctx, args| f(ctx, args).map(Into::into)));
        self
    }

    /// The entry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hidden-array size (1 for a plain procedure).
    pub fn array_size(&self) -> usize {
        self.array
    }

    /// Whether the entry is intercepted by the manager.
    pub fn is_intercepted(&self) -> bool {
        self.intercept.is_some()
    }

    /// Whether the procedure is local.
    pub fn is_local(&self) -> bool {
        self.local
    }

    /// Full implementation-side result signature: public then hidden.
    pub(crate) fn full_results(&self) -> Vec<Ty> {
        let mut v = self.results.clone();
        v.extend(self.hidden_results.iter().cloned());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let e = EntryDef::new("P");
        assert_eq!(e.name(), "P");
        assert_eq!(e.array_size(), 1);
        assert!(!e.is_intercepted());
        assert!(!e.is_local());
        assert!(e.body.is_none());
    }

    #[test]
    fn intercept_builders_compose() {
        let e = EntryDef::new("P").intercept_params(2).intercept_results(1);
        assert_eq!(
            e.intercept,
            Some(Intercept {
                params: 2,
                results: 1
            })
        );
        let e2 = EntryDef::new("Q").intercepted();
        assert_eq!(e2.intercept, Some(Intercept::default()));
    }

    #[test]
    fn full_signatures_append_hidden() {
        let e = EntryDef::new("P")
            .params([Ty::Str])
            .results([Ty::Int])
            .intercepted()
            .hidden_params([Ty::Int])
            .hidden_results([Ty::Bool]);
        assert_eq!(e.full_results(), vec![Ty::Int, Ty::Bool]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_array_rejected() {
        let _ = EntryDef::new("P").array(0);
    }

    #[test]
    fn debug_shows_body_presence() {
        let e = EntryDef::new("P").body(|_, _| Ok(vec![]));
        let dbg = format!("{e:?}");
        assert!(dbg.contains("has_body: true"), "{dbg}");
    }
}
