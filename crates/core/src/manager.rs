//! The manager process: `accept` / `start` / `await` / `finish` /
//! `execute`, request combining, and hidden parameters/results.
//!
//! Paper §2.3: "When an entry procedure of an object is called, the
//! procedure is not executed immediately but the call is directed to the
//! manager" — the manager rendezvouses with the call (`accept`), starts
//! the body asynchronously (`start`, avoiding the nested-call problem),
//! recognizes readiness to terminate (`await`), and endorses termination
//! (`finish`, which never blocks). `execute` packages
//! `start; await; finish` for exclusive execution. A manager may also
//! `finish` an accepted call *without* starting it, synthesizing the
//! results itself — request combining (§2.7).
//!
//! Manager commits take only the lock of the entry involved (see
//! [`EntrySync`](crate::object) internals): intercepted traffic on one
//! entry never contends with calls to another.
//!
//! Intercepted calls reach the manager through the object's lock-free
//! intake ring: every blocking manager primitive funnels through
//! `run_select`, which drains the ring in a batch before evaluating
//! guards — one manager wakeup services every call that arrived while it
//! slept, which is what makes combining (`finish_accepted` in a loop)
//! cheaper than serial `execute`. See `DESIGN.md` §7 for the wakeup
//! pipeline.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use alps_runtime::{CommitPoint, Runtime};

use crate::error::{AlpsError, Result};
use crate::object::{EntryState, ObjectInner, Slot};
use crate::select::{run_select, run_select_deadline, Guard, Selected};
use crate::value::{check_types_lazy, ChanValue, ValVec, Value};

/// A call the manager has accepted but not yet started or finished.
///
/// Consume it with [`ManagerCtx::start`] (normal service),
/// [`ManagerCtx::finish_accepted`] (combining), or
/// [`ManagerCtx::execute`]. Dropping it unconsumed is a protocol
/// violation: the caller is failed and the slot freed so the object stays
/// usable.
pub struct AcceptedCall {
    pub(crate) obj: Arc<ObjectInner>,
    pub(crate) entry: usize,
    pub(crate) slot: usize,
    pub(crate) params: ValVec,
    /// Restart generation the token was minted under. A supervised
    /// restart sweeps the slot and answers the caller itself, so a
    /// stale-generation token must not touch the slot (it may already
    /// hold a new generation's call).
    pub(crate) gen: u64,
    pub(crate) armed: bool,
}

impl fmt::Debug for AcceptedCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AcceptedCall")
            .field("entry", &self.entry_name())
            .field("slot", &self.slot)
            .field("params", &self.params.as_slice())
            .finish()
    }
}

impl AcceptedCall {
    /// Name of the accepted entry.
    pub fn entry_name(&self) -> &str {
        &self.obj.entries[self.entry].name
    }

    /// Index of the entry in builder declaration order — the same index
    /// [`Guard::accept_idx`](crate::Guard::accept_idx) takes. Compiled
    /// managers key their token tables by this instead of hashing
    /// [`entry_name`](AcceptedCall::entry_name).
    pub fn entry_index(&self) -> usize {
        self.entry
    }

    /// Procedure-array element the call is attached to (0-based).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The intercepted parameter prefix received at `accept`.
    pub fn params(&self) -> &[Value] {
        self.params.as_slice()
    }

    fn disarm(mut self) -> (Arc<ObjectInner>, usize, usize, ValVec) {
        self.armed = false;
        (
            Arc::clone(&self.obj),
            self.entry,
            self.slot,
            std::mem::take(&mut self.params),
        )
    }
}

impl Drop for AcceptedCall {
    fn drop(&mut self) {
        if !self.armed
            || self.obj.is_closed()
            || self.obj.generation.load(Ordering::SeqCst) != self.gen
        {
            // A stale generation means a restart already swept the slot
            // and answered the caller; the slot may hold a new
            // generation's call now.
            return;
        }
        let obj = Arc::clone(&self.obj);
        let mut es = obj.estates[self.entry].st.lock();
        let s = &mut es.slots[self.slot];
        if let Slot::Accepted { call } = std::mem::replace(s, Slot::Free) {
            obj.complete(
                &call,
                Err(AlpsError::ProtocolViolation {
                    reason: format!(
                        "manager dropped accepted call to `{}` without start/finish",
                        self.entry_name()
                    ),
                }),
            );
            let dispatch = obj.free_slot_and_pull(&mut es, self.entry, self.slot);
            debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
        }
    }
}

/// An entry execution the manager has `await`ed but not yet `finish`ed.
///
/// Carries the intercepted result prefix and the hidden results. Consume
/// with [`ManagerCtx::finish`]; dropping it unconsumed fails the caller.
pub struct ReadyEntry {
    pub(crate) obj: Arc<ObjectInner>,
    pub(crate) entry: usize,
    pub(crate) slot: usize,
    pub(crate) results: ValVec,
    pub(crate) hidden: ValVec,
    pub(crate) failure: Option<String>,
    /// Restart generation the token was minted under (see
    /// [`AcceptedCall::gen`]).
    pub(crate) gen: u64,
    pub(crate) armed: bool,
}

impl fmt::Debug for ReadyEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadyEntry")
            .field("entry", &self.entry_name())
            .field("slot", &self.slot)
            .field("results", &self.results.as_slice())
            .field("hidden", &self.hidden.as_slice())
            .field("failure", &self.failure)
            .finish()
    }
}

impl ReadyEntry {
    /// Name of the terminating entry.
    pub fn entry_name(&self) -> &str {
        &self.obj.entries[self.entry].name
    }

    /// Index of the entry in builder declaration order (see
    /// [`AcceptedCall::entry_index`]).
    pub fn entry_index(&self) -> usize {
        self.entry
    }

    /// Procedure-array element (0-based).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The intercepted result prefix received at `await`.
    pub fn results(&self) -> &[Value] {
        self.results.as_slice()
    }

    /// The hidden results received at `await` (paper §2.8).
    pub fn hidden(&self) -> &[Value] {
        self.hidden.as_slice()
    }

    /// If the body failed, its failure message. `finish` then reports
    /// [`AlpsError::BodyFailed`] to the caller.
    pub fn failure(&self) -> Option<&str> {
        self.failure.as_deref()
    }

    fn disarm(mut self) -> (Arc<ObjectInner>, usize, usize, ValVec, Option<String>) {
        self.armed = false;
        (
            Arc::clone(&self.obj),
            self.entry,
            self.slot,
            std::mem::take(&mut self.results),
            self.failure.take(),
        )
    }
}

impl Drop for ReadyEntry {
    fn drop(&mut self) {
        if !self.armed
            || self.obj.is_closed()
            || self.obj.generation.load(Ordering::SeqCst) != self.gen
        {
            return;
        }
        let obj = Arc::clone(&self.obj);
        let mut es = obj.estates[self.entry].st.lock();
        let s = &mut es.slots[self.slot];
        if let Slot::Awaited { call, .. } = std::mem::replace(s, Slot::Free) {
            obj.complete(
                &call,
                Err(AlpsError::ProtocolViolation {
                    reason: format!(
                        "manager dropped awaited entry `{}` without finish",
                        self.entry_name()
                    ),
                }),
            );
            let dispatch = obj.free_slot_and_pull(&mut es, self.entry, self.slot);
            debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
        }
    }
}

/// Commit an accept under the entry lock (select internals).
pub(crate) fn commit_accept(
    obj: &Arc<ObjectInner>,
    es: &mut EntryState,
    entry: usize,
    slot: usize,
    gen: u64,
) -> AcceptedCall {
    let s = &mut es.slots[slot];
    let call = match std::mem::replace(s, Slot::Free) {
        Slot::Attached { call } => call,
        other => {
            *s = other;
            panic!("commit_accept on slot in state `{}`", s.state_name());
        }
    };
    obj.estates[entry].attached.fetch_sub(1, Ordering::SeqCst);
    let now = obj.rt.now();
    let attached_at = call.t_attach.load(Ordering::Relaxed);
    obj.stats.on_accept(now.saturating_sub(attached_at));
    let k = obj.entries[entry]
        .intercept
        .map(|ic| ic.params)
        .unwrap_or(0);
    // Only the intercepted prefix is copied out (paper §2.6); inline —
    // heap-free — for prefixes of ≤ 4 values. The suffix stays in the
    // cell until `start`/`execute` moves it into the body.
    let params = ValVec::from_slice(&call.args()[..k]);
    es.slots[slot] = Slot::Accepted { call };
    AcceptedCall {
        obj: Arc::clone(obj),
        entry,
        slot,
        params,
        gen,
        armed: true,
    }
}

/// Commit an await under the entry lock (select internals).
pub(crate) fn commit_await(
    obj: &Arc<ObjectInner>,
    es: &mut EntryState,
    entry: usize,
    slot: usize,
    gen: u64,
) -> ReadyEntry {
    let s = &mut es.slots[slot];
    let (call, outcome) = match std::mem::replace(s, Slot::Free) {
        Slot::Ready { call, outcome } => (call, outcome),
        other => {
            *s = other;
            panic!("commit_await on slot in state `{}`", s.state_name());
        }
    };
    obj.estates[entry].ready.fetch_sub(1, Ordering::SeqCst);
    let def = &obj.entries[entry];
    let kr = def.intercept.map(|ic| ic.results).unwrap_or(0);
    let pub_len = def.results.len();
    match outcome {
        Ok(mut full) => {
            // Split the full result list `[prefix | remainder | hidden]`
            // by move — no element is cloned; the remainder parks in the
            // slot until `finish` stitches it back onto the (possibly
            // rewritten) prefix.
            let hidden = full.split_off(pub_len);
            let remainder = full.split_off(kr);
            let prefix = full;
            es.slots[slot] = Slot::Awaited { call, remainder };
            ReadyEntry {
                obj: Arc::clone(obj),
                entry,
                slot,
                results: prefix,
                hidden,
                failure: None,
                gen,
                armed: true,
            }
        }
        Err(msg) => {
            es.slots[slot] = Slot::Awaited {
                call,
                remainder: ValVec::new(),
            };
            ReadyEntry {
                obj: Arc::clone(obj),
                entry,
                slot,
                results: ValVec::new(),
                hidden: ValVec::new(),
                failure: Some(msg),
                gen,
                armed: true,
            }
        }
    }
}

/// The manager's view of its object: the scheduling primitives of paper
/// §2.3–§2.8. A [`ManagerBody`](crate::ManagerBody) receives `&mut
/// ManagerCtx` and typically runs `loop { match mgr.select(...)? { … } }`.
pub struct ManagerCtx {
    obj: Arc<ObjectInner>,
    /// Restart generation this manager body invocation serves. A
    /// supervised restart bumps the object generation *before* sweeping,
    /// so every blocking primitive of a stale-generation context fails
    /// with [`AlpsError::ObjectRestarting`] instead of committing on a
    /// swept (or reused) slot.
    gen: u64,
}

impl fmt::Debug for ManagerCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagerCtx")
            .field("object", &self.obj.name)
            .finish()
    }
}

impl ManagerCtx {
    pub(crate) fn new(obj: Arc<ObjectInner>) -> ManagerCtx {
        let gen = obj.generation.load(Ordering::SeqCst);
        ManagerCtx { obj, gen }
    }

    /// The object's name.
    pub fn object_name(&self) -> &str {
        &self.obj.name
    }

    /// The runtime the object lives on.
    pub fn rt(&self) -> &Runtime {
        &self.obj.rt
    }

    /// Current time in ticks.
    pub fn now(&self) -> u64 {
        self.obj.rt.now()
    }

    /// Sleep for `ticks` (virtual in simulation).
    pub fn sleep(&self, ticks: u64) {
        self.obj.rt.sleep(ticks)
    }

    /// Whether intake occupancy has crossed the
    /// [`AdmissionPolicy::Cooperative`](crate::AdmissionPolicy::Cooperative)
    /// high watermark without yet draining back to the low one. An
    /// overloaded manager should prefer batch-draining work (`select`
    /// with wide guards, combining) over anything that delays intake
    /// drains. Always `false` under other admission policies.
    pub fn overloaded(&self) -> bool {
        self.obj.mgr_overloaded.load(Ordering::SeqCst)
    }

    /// `#P` — pending calls to `entry` (paper §2.5.1). Reads an atomic
    /// index; takes no lock.
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] for a bad name.
    pub fn pending(&self, entry: &str) -> Result<usize> {
        let idx = self.obj.entry_idx(entry)?;
        Ok(self.obj.pending(idx))
    }

    /// [`pending`](Self::pending) through a pre-resolved entry index
    /// (builder declaration order) — the compiled manager's `#P`.
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] when the index is out of range.
    pub fn pending_idx(&self, entry: usize) -> Result<usize> {
        if entry >= self.obj.entries.len() {
            return Err(AlpsError::UnknownEntry {
                object: self.obj.name.clone(),
                entry: format!("entry#{entry}"),
            });
        }
        Ok(self.obj.pending(entry))
    }

    /// Block on a guarded nondeterministic select (paper §2.4).
    ///
    /// # Errors
    ///
    /// * [`AlpsError::SelectFailed`] when every guard is closed;
    /// * [`AlpsError::ObjectClosed`] at shutdown;
    /// * [`AlpsError::UnknownEntry`] for bad entry names in guards.
    pub fn select(&self, guards: Vec<Guard<'_>>) -> Result<Selected> {
        run_select(&self.obj, &guards, self.gen)
    }

    /// `accept P` — block until a call to `entry` is attached, accept it.
    ///
    /// # Errors
    ///
    /// [`AlpsError::ObjectClosed`], [`AlpsError::UnknownEntry`].
    pub fn accept(&self, entry: &str) -> Result<AcceptedCall> {
        match self.select(vec![Guard::accept(entry)])? {
            Selected::Accepted { call, .. } => Ok(call),
            _ => unreachable!("single accept guard"),
        }
    }

    /// `accept P[i]` — accept specifically on array element `i`.
    ///
    /// # Errors
    ///
    /// [`AlpsError::ObjectClosed`], [`AlpsError::UnknownEntry`].
    pub fn accept_slot(&self, entry: &str, slot: usize) -> Result<AcceptedCall> {
        match self.select(vec![Guard::accept_slot(entry, slot)])? {
            Selected::Accepted { call, .. } => Ok(call),
            _ => unreachable!("single accept guard"),
        }
    }

    /// `await P` — block until some execution of `entry` is ready to
    /// terminate.
    ///
    /// # Errors
    ///
    /// [`AlpsError::ObjectClosed`], [`AlpsError::UnknownEntry`].
    pub fn await_done(&self, entry: &str) -> Result<ReadyEntry> {
        match self.select(vec![Guard::await_done(entry)])? {
            Selected::Ready { done, .. } => Ok(done),
            _ => unreachable!("single await guard"),
        }
    }

    /// `await P[i]` — await a specific array element.
    ///
    /// # Errors
    ///
    /// [`AlpsError::ObjectClosed`], [`AlpsError::UnknownEntry`].
    pub fn await_slot(&self, entry: &str, slot: usize) -> Result<ReadyEntry> {
        match self.select(vec![Guard::await_slot(entry, slot)])? {
            Selected::Ready { done, .. } => Ok(done),
            _ => unreachable!("single await guard"),
        }
    }

    /// `accept P` bounded by a deadline: like [`accept`](Self::accept),
    /// but give up with [`AlpsError::Timeout`] after `ticks` virtual
    /// microseconds with no acceptable call. A call that is already
    /// attached is accepted even with `ticks == 0`, so a zero deadline is
    /// a non-blocking poll.
    ///
    /// # Errors
    ///
    /// As [`accept`](Self::accept), plus [`AlpsError::Timeout`].
    pub fn accept_deadline(&self, entry: &str, ticks: u64) -> Result<AcceptedCall> {
        let at = self.obj.rt.now().saturating_add(ticks);
        match run_select_deadline(
            &self.obj,
            &[Guard::accept(entry)],
            Some((at, ticks)),
            self.gen,
        ) {
            Ok(Selected::Accepted { call, .. }) => Ok(call),
            Ok(_) => unreachable!("single accept guard"),
            Err(AlpsError::Timeout { .. }) => Err(AlpsError::Timeout {
                what: format!("accept {entry}"),
                ticks,
            }),
            Err(e) => Err(e),
        }
    }

    /// `await P` bounded by a deadline: like
    /// [`await_done`](Self::await_done), but give up with
    /// [`AlpsError::Timeout`] after `ticks` virtual microseconds with no
    /// ready execution. The started body keeps running; a later
    /// `await_done` (or [`cancel`](Self::cancel)) can still consume it.
    ///
    /// # Errors
    ///
    /// As [`await_done`](Self::await_done), plus [`AlpsError::Timeout`].
    pub fn await_deadline(&self, entry: &str, ticks: u64) -> Result<ReadyEntry> {
        let at = self.obj.rt.now().saturating_add(ticks);
        match run_select_deadline(
            &self.obj,
            &[Guard::await_done(entry)],
            Some((at, ticks)),
            self.gen,
        ) {
            Ok(Selected::Ready { done, .. }) => Ok(done),
            Ok(_) => unreachable!("single await guard"),
            Err(AlpsError::Timeout { .. }) => Err(AlpsError::Timeout {
                what: format!("await {entry}"),
                ticks,
            }),
            Err(e) => Err(e),
        }
    }

    /// Abort the call occupying `entry`'s procedure-array element `slot`:
    /// the caller is answered immediately with [`AlpsError::Cancelled`].
    /// Returns `true` if a call was cancelled, `false` if the slot held
    /// nothing cancellable (free, or running an implicit inline body).
    ///
    /// What happens depends on the slot's protocol state:
    ///
    /// * **attached** (not yet accepted) — the call is removed and the
    ///   slot freed for the next queued call;
    /// * **started** (body running) — the caller is answered now, the
    ///   slot is marked *abandoned*, and the still-running body's result
    ///   is discarded when it completes (cancellation is cooperative: the
    ///   body itself is never interrupted);
    /// * **ready** (body finished, not yet awaited) — the computed
    ///   results are discarded and the caller answered with `Cancelled`.
    ///
    /// # Errors
    ///
    /// * [`AlpsError::ProtocolViolation`] if the slot is `accepted` or
    ///   `awaited` — the manager holds a live [`AcceptedCall`] /
    ///   [`ReadyEntry`] token for it and must consume that instead;
    /// * [`AlpsError::UnknownEntry`] / bad `slot` index.
    pub fn cancel(&self, entry: &str, slot: usize) -> Result<bool> {
        let idx = self.obj.entry_idx(entry)?;
        let obj = &self.obj;
        if obj.generation.load(Ordering::SeqCst) != self.gen {
            return Err(obj.restarting_err());
        }
        let entry_name = obj.entries[idx].name.clone();
        let sync = &obj.estates[idx];
        let dispatch = {
            let mut es = sync.st.lock();
            if slot >= es.slots.len() {
                return Err(AlpsError::ProtocolViolation {
                    reason: format!("cancel {entry}[{slot}]: no such array element"),
                });
            }
            let s = &mut es.slots[slot];
            match std::mem::replace(s, Slot::Free) {
                Slot::Free => return Ok(false),
                Slot::InlineBusy => {
                    *s = Slot::InlineBusy;
                    return Ok(false);
                }
                Slot::Abandoned => {
                    *s = Slot::Abandoned;
                    return Ok(false);
                }
                Slot::Attached { call } => {
                    sync.attached.fetch_sub(1, Ordering::SeqCst);
                    if obj.complete(&call, Err(AlpsError::Cancelled { entry: entry_name })) {
                        obj.stats.on_cancel();
                    }
                    obj.free_slot_and_pull(&mut es, idx, slot)
                }
                Slot::Ready { call, .. } => {
                    sync.ready.fetch_sub(1, Ordering::SeqCst);
                    if obj.complete(&call, Err(AlpsError::Cancelled { entry: entry_name })) {
                        obj.stats.on_cancel();
                    }
                    obj.free_slot_and_pull(&mut es, idx, slot)
                }
                Slot::Started { call } => {
                    // The body owns the slot until it completes;
                    // `body_done` sees Abandoned, discards the outcome,
                    // and frees the slot.
                    *s = Slot::Abandoned;
                    if obj.complete(&call, Err(AlpsError::Cancelled { entry: entry_name })) {
                        obj.stats.on_cancel();
                    }
                    None
                }
                other @ (Slot::Accepted { .. } | Slot::Awaited { .. }) => {
                    let name = other.state_name();
                    *s = other;
                    return Err(AlpsError::ProtocolViolation {
                        reason: format!(
                            "cancel on slot in state `{name}`: the manager holds a live \
                             token for it (consume or drop that token instead)"
                        ),
                    });
                }
            }
        };
        if let Some((i, params)) = dispatch {
            obj.dispatch_body(idx, i, params);
        }
        Ok(true)
    }

    /// `receive C` — block for a message on a channel, interruptible by
    /// object shutdown (prefer this over [`ChanValue::recv`] inside
    /// managers).
    ///
    /// # Errors
    ///
    /// [`AlpsError::ObjectClosed`]; [`AlpsError::SelectFailed`] when the
    /// channel is closed and drained.
    pub fn receive(&self, chan: &ChanValue) -> Result<Vec<Value>> {
        match self.select(vec![Guard::receive(chan)])? {
            Selected::Received { msg, .. } => Ok(msg),
            _ => unreachable!("single receive guard"),
        }
    }

    /// `start P(...)` — begin executing the accepted call asynchronously,
    /// supplying the (possibly rewritten) intercepted parameter prefix and
    /// the hidden parameters.
    ///
    /// # Errors
    ///
    /// Type/arity mismatches against the declared prefix and hidden
    /// parameter lists; [`AlpsError::ObjectClosed`].
    pub fn start(
        &self,
        acc: AcceptedCall,
        prefix: impl Into<ValVec>,
        hidden: impl Into<ValVec>,
    ) -> Result<()> {
        let prefix: ValVec = prefix.into();
        let hidden: ValVec = hidden.into();
        let def = &acc.obj.entries[acc.entry];
        let ic = def.intercept.expect("accepted entries are intercepted");
        check_types_lazy(&def.params[..ic.params], &prefix, || {
            format!("start {}.{} prefix", acc.obj.name, def.name)
        })?;
        check_types_lazy(&def.hidden_params, &hidden, || {
            format!("start {}.{} hidden", acc.obj.name, def.name)
        })?;
        if acc.obj.is_closed() {
            let _ = acc.disarm();
            return Err(self.obj.closed_err());
        }
        let tok_gen = acc.gen;
        let (obj, entry, slot, _) = acc.disarm();
        let full = {
            let mut es = obj.estates[entry].st.lock();
            if obj.generation.load(Ordering::SeqCst) != tok_gen {
                // A restart swept this call and answered its caller; the
                // slot may belong to the new generation now.
                return Err(obj.restarting_err());
            }
            let s = &mut es.slots[slot];
            let call = match std::mem::replace(s, Slot::Free) {
                Slot::Accepted { call } => call,
                other => {
                    let name = other.state_name();
                    *s = other;
                    return Err(AlpsError::ProtocolViolation {
                        reason: format!("start on slot in state `{name}`"),
                    });
                }
            };
            call.t_start.store(obj.rt.now(), Ordering::Relaxed);
            obj.stats.on_start();
            let mut full = prefix;
            // Move the non-intercepted argument suffix out of the cell
            // (the prefix copy was taken at accept; nothing reads `args`
            // once the slot is `Started`).
            full.extend(call.take_args().split_off(ic.params));
            full.extend(hidden);
            es.slots[slot] = Slot::Started { call };
            full
        };
        obj.dispatch_body(entry, slot, full);
        Ok(())
    }

    /// `start P` forwarding the intercepted parameters unchanged; for
    /// entries without hidden parameters.
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start).
    pub fn start_as_is(&self, acc: AcceptedCall) -> Result<()> {
        let prefix = acc.params.clone();
        self.start(acc, prefix, ValVec::new())
    }

    /// `finish P(...)` — endorse termination, forwarding the (possibly
    /// rewritten) intercepted result prefix to the caller. Never blocks
    /// (paper §2.3: "when the manager executes a finish P(...), it never
    /// blocks because the caller of P is simply waiting for the results").
    ///
    /// # Errors
    ///
    /// Type/arity mismatches against the intercepted result prefix.
    pub fn finish(&self, done: ReadyEntry, prefix: impl Into<ValVec>) -> Result<()> {
        let prefix: ValVec = prefix.into();
        let def = &done.obj.entries[done.entry];
        let ic = def.intercept.expect("awaited entries are intercepted");
        if done.failure.is_none() {
            check_types_lazy(&def.results[..ic.results], &prefix, || {
                format!("finish {}.{} prefix", done.obj.name, def.name)
            })?;
        }
        let entry_name = def.name.clone();
        let tok_gen = done.gen;
        let (obj, entry, slot, _, failure) = done.disarm();
        // Commit point, before the entry lock: the `complete` below runs
        // the finish-vs-cancel CAS against a deadline-bounded caller.
        obj.rt.sim_point(CommitPoint::FinishCas);
        let dispatch = {
            let mut es = obj.estates[entry].st.lock();
            if obj.generation.load(Ordering::SeqCst) != tok_gen {
                return Err(obj.restarting_err());
            }
            let s = &mut es.slots[slot];
            let (call, remainder) = match std::mem::replace(s, Slot::Free) {
                Slot::Awaited { call, remainder } => (call, remainder),
                other => {
                    let name = other.state_name();
                    *s = other;
                    return Err(AlpsError::ProtocolViolation {
                        reason: format!("finish on slot in state `{name}`"),
                    });
                }
            };
            obj.stats.on_finish();
            match failure {
                None => {
                    let mut results = prefix;
                    results.extend(remainder);
                    obj.complete(&call, Ok(results));
                }
                Some(msg) => {
                    obj.complete(
                        &call,
                        Err(AlpsError::BodyFailed {
                            entry: entry_name,
                            message: msg,
                        }),
                    );
                }
            }
            obj.free_slot_and_pull(&mut es, entry, slot)
        };
        debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
        Ok(())
    }

    /// `finish P` forwarding the intercepted results unchanged.
    ///
    /// # Errors
    ///
    /// As [`finish`](Self::finish).
    pub fn finish_as_is(&self, done: ReadyEntry) -> Result<()> {
        let prefix = done.results.clone();
        self.finish(done, prefix)
    }

    /// Request combining (paper §2.7): answer an accepted call *without*
    /// executing its body, supplying the full public result list. Legal
    /// only when the manager intercepted the full parameter list.
    ///
    /// # Errors
    ///
    /// [`AlpsError::BadCombining`] when parameters were not fully
    /// intercepted; type/arity mismatches against the full result list.
    pub fn finish_accepted(&self, acc: AcceptedCall, results: impl Into<ValVec>) -> Result<()> {
        let results: ValVec = results.into();
        let def = &acc.obj.entries[acc.entry];
        let ic = def.intercept.expect("accepted entries are intercepted");
        if ic.params != def.params.len() {
            return Err(AlpsError::BadCombining {
                reason: format!(
                    "entry `{}` intercepts only {} of {} parameters; combining requires \
                     the manager to receive all invocation parameters",
                    def.name,
                    ic.params,
                    def.params.len()
                ),
            });
        }
        check_types_lazy(&def.results, &results, || {
            format!("combine {}.{} results", acc.obj.name, def.name)
        })?;
        let tok_gen = acc.gen;
        let (obj, entry, slot, _) = acc.disarm();
        // Commit point: combining's `complete` races caller cancels the
        // same way `finish` does.
        obj.rt.sim_point(CommitPoint::FinishCas);
        let dispatch = {
            let mut es = obj.estates[entry].st.lock();
            if obj.generation.load(Ordering::SeqCst) != tok_gen {
                return Err(obj.restarting_err());
            }
            let s = &mut es.slots[slot];
            let call = match std::mem::replace(s, Slot::Free) {
                Slot::Accepted { call } => call,
                other => {
                    let name = other.state_name();
                    *s = other;
                    return Err(AlpsError::ProtocolViolation {
                        reason: format!("finish_accepted on slot in state `{name}`"),
                    });
                }
            };
            obj.stats.on_combine();
            obj.complete(&call, Ok(results));
            obj.free_slot_and_pull(&mut es, entry, slot)
        };
        debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
        Ok(())
    }

    /// `execute P` ≡ `start P; await P; finish P` (paper §2.3): run the
    /// call to completion while the manager waits — monitor-style
    /// exclusive execution. Returns the intercepted result prefix and the
    /// hidden results.
    ///
    /// # Errors
    ///
    /// As the three underlying primitives; [`AlpsError::BodyFailed`] if
    /// the body failed (the caller receives the same error).
    pub fn execute(&self, acc: AcceptedCall) -> Result<(Vec<Value>, Vec<Value>)> {
        let prefix = acc.params.clone();
        self.execute_with(acc, prefix, ValVec::new())
    }

    /// [`execute`](Self::execute) with explicit intercepted-parameter
    /// prefix and hidden parameters.
    ///
    /// # Errors
    ///
    /// As [`execute`](Self::execute).
    pub fn execute_with(
        &self,
        acc: AcceptedCall,
        prefix: impl Into<ValVec>,
        hidden: impl Into<ValVec>,
    ) -> Result<(Vec<Value>, Vec<Value>)> {
        let prefix: ValVec = prefix.into();
        let hidden: ValVec = hidden.into();
        let def = &acc.obj.entries[acc.entry];
        let ic = def.intercept.expect("accepted entries are intercepted");
        check_types_lazy(&def.params[..ic.params], &prefix, || {
            format!("start {}.{} prefix", acc.obj.name, def.name)
        })?;
        check_types_lazy(&def.hidden_params, &hidden, || {
            format!("start {}.{} hidden", acc.obj.name, def.name)
        })?;
        if acc.obj.is_closed() {
            let _ = acc.disarm();
            return Err(self.obj.closed_err());
        }
        let kr = ic.results;
        let pub_len = def.results.len();
        let tok_gen = acc.gen;
        let (obj, entry, slot, _) = acc.disarm();
        // `start`: Accepted → Started — but the body runs right here in
        // the manager's process instead of being handed to the pool. The
        // manager would block in `await` until the body finished anyway
        // (monitor-style exclusive execution), so executing it inline is
        // observationally the same protocol minus a worker wakeup, a
        // manager park, and a notifier round trip.
        let full = {
            let mut es = obj.estates[entry].st.lock();
            if obj.generation.load(Ordering::SeqCst) != tok_gen {
                return Err(obj.restarting_err());
            }
            let s = &mut es.slots[slot];
            let call = match std::mem::replace(s, Slot::Free) {
                Slot::Accepted { call } => call,
                other => {
                    let name = other.state_name();
                    *s = other;
                    return Err(AlpsError::ProtocolViolation {
                        reason: format!("execute on slot in state `{name}`"),
                    });
                }
            };
            call.t_start.store(obj.rt.now(), Ordering::Relaxed);
            obj.stats.on_start();
            let mut full = prefix;
            // As in `start`: the argument suffix moves; `args` is dead
            // past this point.
            full.extend(call.take_args().split_off(ic.params));
            full.extend(hidden);
            es.slots[slot] = Slot::Started { call };
            full
        };
        let outcome = obj.exec_checked_body(entry, slot, full);
        let done_at = obj.rt.now();
        // Commit point, between body completion and the re-lock: the
        // fused `await; finish` below completes the caller, racing its
        // deadline cancel and any restart sweeping this slot.
        obj.rt.sim_point(CommitPoint::FinishCas);
        // `await; finish` fused: take the call back out of the slot and
        // answer the caller directly — no Ready state, no notify.
        let mut es = obj.estates[entry].st.lock();
        let s = &mut es.slots[slot];
        let call = match std::mem::replace(s, Slot::Free) {
            Slot::Started { call } => call,
            // A supervised restart swept the slot mid-body: the caller
            // was already answered `ObjectRestarting`, the computed
            // outcome must be discarded (it belongs to the dead
            // generation), and the manager body unwinds so the
            // supervisor can re-enter it.
            Slot::Abandoned => {
                let dispatch = obj.free_slot_and_pull(&mut es, entry, slot);
                debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
                drop(es);
                return Err(obj.restarting_err());
            }
            // Only shutdown can have swept the slot; the caller was
            // already answered with the shutdown error.
            other => {
                *s = other;
                return Err(obj.closed_err());
            }
        };
        let t_started = call.t_start.load(Ordering::Relaxed);
        obj.stats.on_service(done_at.saturating_sub(t_started));
        obj.stats.on_finish();
        let ret = match outcome {
            Ok(mut full_results) => {
                // In-place reply: the hidden suffix splits off by move,
                // the intercepted prefix is the only copy (inline for
                // kr ≤ 4), and the public result list moves straight
                // into the cell's reply slot — the caller wakes and
                // takes it without another copy.
                let hidden_out = full_results.split_off(pub_len);
                let ret_prefix = ValVec::from_slice(&full_results[..kr]);
                obj.complete(&call, Ok(full_results));
                Ok((ret_prefix.into(), hidden_out.into()))
            }
            Err(message) => {
                obj.stats.on_body_failure();
                let entry_name = obj.entries[entry].name.clone();
                obj.complete(
                    &call,
                    Err(AlpsError::BodyFailed {
                        entry: entry_name.clone(),
                        message: message.clone(),
                    }),
                );
                Err(AlpsError::BodyFailed {
                    entry: entry_name,
                    message,
                })
            }
        };
        let dispatch = obj.free_slot_and_pull(&mut es, entry, slot);
        debug_assert!(dispatch.is_none(), "intercepted entries never self-start");
        drop(es);
        ret
    }
}
