//! Per-object instrumentation.
//!
//! The benchmark harness (EXPERIMENTS.md) and property tests read these
//! counters and histograms; the hot paths only touch atomics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_runtime::metrics::{Counter, Histogram};

/// Counters and latency histograms for one object. Cheap to clone (all
/// fields are shared).
#[derive(Clone, Debug, Default)]
pub struct ObjectStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    calls: Counter,
    accepts: Counter,
    starts: Counter,
    finishes: Counter,
    combines: Counter,
    implicit_starts: Counter,
    body_failures: Counter,
    attach_wait: Histogram,
    accept_wait: Histogram,
    service_time: Histogram,
    call_latency: Histogram,
    mgr_wakeups: Counter,
    drain_batch: Histogram,
    spin_resolved: Counter,
    park_resolved: Counter,
    timeouts: Counter,
    cancels: Counter,
    reaps: Counter,
    poison_rejects: Counter,
    restarts: Counter,
    sheds: Counter,
    retries: Counter,
    overload_flips: Counter,
    lane_pushes: Counter,
    lane_promotes: Counter,
    lane_demotes: Counter,
    /// EWMA of service time in ticks (α = 1/8). Updated with a Relaxed
    /// CAS loop: pooled bodies finish concurrently, so the RMW must be
    /// atomic, but the value is advisory and orders nothing.
    ewma_service: AtomicU64,
}

impl ObjectStats {
    /// New zeroed stats.
    pub fn new() -> ObjectStats {
        ObjectStats::default()
    }

    /// Total entry calls received (external + local-through-protocol).
    pub fn calls(&self) -> u64 {
        self.inner.calls.get()
    }
    /// Calls accepted by the manager.
    pub fn accepts(&self) -> u64 {
        self.inner.accepts.get()
    }
    /// Entry executions started by the manager.
    pub fn starts(&self) -> u64 {
        self.inner.starts.get()
    }
    /// Calls finished by the manager.
    pub fn finishes(&self) -> u64 {
        self.inner.finishes.get()
    }
    /// Calls answered by combining (accepted then finished without a
    /// start, paper §2.7).
    pub fn combines(&self) -> u64 {
        self.inner.combines.get()
    }
    /// Executions started implicitly (entries not intercepted).
    pub fn implicit_starts(&self) -> u64 {
        self.inner.implicit_starts.get()
    }
    /// Entry bodies that failed (error return or panic).
    pub fn body_failures(&self) -> u64 {
        self.inner.body_failures.get()
    }
    /// Ticks from call arrival to attachment on a procedure-array slot.
    pub fn attach_wait(&self) -> &Histogram {
        &self.inner.attach_wait
    }
    /// Ticks from attachment to manager `accept`.
    pub fn accept_wait(&self) -> &Histogram {
        &self.inner.accept_wait
    }
    /// Ticks from `start` to readiness-to-terminate.
    pub fn service_time(&self) -> &Histogram {
        &self.inner.service_time
    }
    /// End-to-end ticks from call to reply.
    pub fn call_latency(&self) -> &Histogram {
        &self.inner.call_latency
    }
    /// Times the manager loop woke up to drain intake / re-evaluate guards
    /// (parked or spun wakeups; the busy-loop iterations between sleeps
    /// are not counted).
    pub fn mgr_wakeups(&self) -> u64 {
        self.inner.mgr_wakeups.get()
    }
    /// Calls drained from the intake ring per manager wakeup; `max()` is
    /// the deepest batch observed.
    pub fn drain_batch(&self) -> &Histogram {
        &self.inner.drain_batch
    }
    /// Reply/manager waits resolved during the bounded spin phase (no
    /// park syscall paid).
    pub fn spin_resolved(&self) -> u64 {
        self.inner.spin_resolved.get()
    }
    /// Reply/manager waits that exhausted their spin budget and parked.
    pub fn park_resolved(&self) -> u64 {
        self.inner.park_resolved.get()
    }
    /// Calls whose deadline expired before the protocol answered — the
    /// caller claimed its cell back (`CANCELLED`) and returned
    /// [`Timeout`](crate::AlpsError::Timeout).
    pub fn timeouts(&self) -> u64 {
        self.inner.timeouts.get()
    }
    /// Calls the manager aborted via
    /// [`cancel`](crate::ManagerCtx::cancel) — the caller received
    /// [`Cancelled`](crate::AlpsError::Cancelled).
    pub fn cancels(&self) -> u64 {
        self.inner.cancels.get()
    }
    /// Cancelled cells reaped (tombstoned) by a protocol-side holder —
    /// the intake drain, a manager completion whose delivery found the
    /// caller gone, or the shutdown sweep.
    pub fn reaps(&self) -> u64 {
        self.inner.reaps.get()
    }
    /// Calls rejected fast because the object was poisoned by an
    /// entry-body panic.
    pub fn poison_rejects(&self) -> u64 {
        self.inner.poison_rejects.get()
    }
    /// Supervised restarts completed — the object was rebuilt after an
    /// entry-body panic ([`supervise`](crate::ObjectBuilder::supervise))
    /// and serves calls again under a new generation.
    pub fn restarts(&self) -> u64 {
        self.inner.restarts.get()
    }
    /// Calls refused with [`Overloaded`](crate::AlpsError::Overloaded) by
    /// a shedding [`AdmissionPolicy`](crate::AdmissionPolicy) — the
    /// incoming call under `ShedNewest`, an evicted ring resident under
    /// `ShedOldest`.
    pub fn sheds(&self) -> u64 {
        self.inner.sheds.get()
    }
    /// Re-attempts made by
    /// [`call_retry`](crate::ObjectHandle::call_retry) (first attempts
    /// are not counted).
    pub fn retries(&self) -> u64 {
        self.inner.retries.get()
    }
    /// Times the `Cooperative` admission watermark flipped the
    /// `mgr_overloaded` flag on (it clears when occupancy drains below
    /// the low watermark).
    pub fn overload_flips(&self) -> u64 {
        self.inner.overload_flips.get()
    }
    /// Calls submitted over the SPSC fast lane instead of the shared
    /// intake ring (a dominant caller was holding the lane).
    pub fn lane_pushes(&self) -> u64 {
        self.inner.lane_pushes.get()
    }
    /// Times the drain loop promoted a dominant caller to the fast lane.
    pub fn lane_promotes(&self) -> u64 {
        self.inner.lane_promotes.get()
    }
    /// Times an active lane was released — a second producer appeared,
    /// the owner went idle, it overflowed, or a restart swept it.
    pub fn lane_demotes(&self) -> u64 {
        self.inner.lane_demotes.get()
    }
    /// Exponentially weighted moving average of entry service time in
    /// ticks (α = 1/8) — the signal the adaptive spin budgets are tuned
    /// by.
    pub fn ewma_service_ticks(&self) -> u64 {
        self.inner.ewma_service.load(Ordering::Relaxed)
    }

    pub(crate) fn on_call(&self) {
        self.inner.calls.incr();
    }
    pub(crate) fn on_accept(&self, waited: u64) {
        self.inner.accepts.incr();
        self.inner.accept_wait.record(waited);
    }
    pub(crate) fn on_attach(&self, waited: u64) {
        self.inner.attach_wait.record(waited);
    }
    pub(crate) fn on_start(&self) {
        self.inner.starts.incr();
    }
    pub(crate) fn on_finish(&self) {
        self.inner.finishes.incr();
    }
    pub(crate) fn on_combine(&self) {
        self.inner.combines.incr();
    }
    pub(crate) fn on_implicit_start(&self) {
        self.inner.implicit_starts.incr();
    }
    pub(crate) fn on_body_failure(&self) {
        self.inner.body_failures.incr();
    }
    pub(crate) fn on_service(&self, ticks: u64) {
        self.inner.service_time.record(ticks);
        // EWMA with α = 1/8: ewma += (sample - ewma) / 8. Bodies of a
        // pooled entry finish concurrently, so the read-modify-write must
        // be a CAS loop — a plain load/store pair here raced and dropped
        // samples under contention. Relaxed ordering is fine: the value is
        // an advisory spin-budget signal, never synchronizes other data.
        let _ =
            self.inner
                .ewma_service
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
                    Some(if ticks >= prev {
                        prev + (ticks - prev) / 8
                    } else {
                        prev - (prev - ticks) / 8
                    })
                });
    }
    pub(crate) fn on_complete(&self, latency: u64) {
        self.inner.call_latency.record(latency);
    }
    pub(crate) fn on_mgr_wakeup(&self) {
        self.inner.mgr_wakeups.incr();
    }
    pub(crate) fn on_drain(&self, batch: u64) {
        self.inner.drain_batch.record(batch);
    }
    pub(crate) fn on_spin_resolved(&self) {
        self.inner.spin_resolved.incr();
    }
    pub(crate) fn on_park_resolved(&self) {
        self.inner.park_resolved.incr();
    }
    pub(crate) fn on_timeout(&self) {
        self.inner.timeouts.incr();
    }
    pub(crate) fn on_cancel(&self) {
        self.inner.cancels.incr();
    }
    pub(crate) fn on_reap(&self) {
        self.inner.reaps.incr();
    }
    pub(crate) fn on_poison_reject(&self) {
        self.inner.poison_rejects.incr();
    }
    pub(crate) fn on_restart(&self) {
        self.inner.restarts.incr();
    }
    pub(crate) fn on_shed(&self) {
        self.inner.sheds.incr();
    }
    pub(crate) fn on_retry(&self) {
        self.inner.retries.incr();
    }
    pub(crate) fn on_overload_flip(&self) {
        self.inner.overload_flips.incr();
    }
    pub(crate) fn on_lane_push(&self) {
        self.inner.lane_pushes.incr();
    }
    pub(crate) fn on_lane_promote(&self) {
        self.inner.lane_promotes.incr();
    }
    pub(crate) fn on_lane_demote(&self) {
        self.inner.lane_demotes.incr();
    }
}

impl fmt::Display for ObjectStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} accepts={} starts={} finishes={} combines={} implicit={} failures={} \
             p50_latency={} p99_latency={} p999_latency={} wakeups={} mean_batch={:.1} \
             max_batch={} spin_resolved={} park_resolved={} timeouts={} cancels={} reaps={} \
             poison_rejects={} restarts={} sheds={} retries={} overload_flips={} \
             lane_pushes={} lane_promotes={} lane_demotes={}",
            self.calls(),
            self.accepts(),
            self.starts(),
            self.finishes(),
            self.combines(),
            self.implicit_starts(),
            self.body_failures(),
            self.call_latency().percentile(50.0),
            self.call_latency().percentile(99.0),
            self.call_latency().percentile(99.9),
            self.mgr_wakeups(),
            self.drain_batch().mean(),
            self.drain_batch().max(),
            self.spin_resolved(),
            self.park_resolved(),
            self.timeouts(),
            self.cancels(),
            self.reaps(),
            self.poison_rejects(),
            self.restarts(),
            self.sheds(),
            self.retries(),
            self.overload_flips(),
            self.lane_pushes(),
            self.lane_promotes(),
            self.lane_demotes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let s = ObjectStats::new();
        assert_eq!(s.calls(), 0);
        s.on_call();
        s.on_accept(5);
        s.on_start();
        s.on_service(10);
        s.on_finish();
        s.on_complete(20);
        assert_eq!(s.calls(), 1);
        assert_eq!(s.accepts(), 1);
        assert_eq!(s.starts(), 1);
        assert_eq!(s.finishes(), 1);
        assert_eq!(s.service_time().count(), 1);
        assert_eq!(s.call_latency().count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let s = ObjectStats::new();
        let s2 = s.clone();
        s2.on_combine();
        assert_eq!(s.combines(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let s = ObjectStats::new();
        assert!(s.to_string().contains("calls=0"));
        assert!(s.to_string().contains("wakeups=0"));
    }

    #[test]
    fn manager_loop_counters_accumulate() {
        let s = ObjectStats::new();
        s.on_mgr_wakeup();
        s.on_drain(3);
        s.on_drain(7);
        s.on_spin_resolved();
        s.on_park_resolved();
        s.on_park_resolved();
        assert_eq!(s.mgr_wakeups(), 1);
        assert_eq!(s.drain_batch().count(), 2);
        assert_eq!(s.drain_batch().max(), 7);
        assert_eq!(s.spin_resolved(), 1);
        assert_eq!(s.park_resolved(), 2);
    }

    #[test]
    fn cancellation_counters_accumulate() {
        let s = ObjectStats::new();
        s.on_timeout();
        s.on_timeout();
        s.on_cancel();
        s.on_reap();
        s.on_poison_reject();
        assert_eq!(s.timeouts(), 2);
        assert_eq!(s.cancels(), 1);
        assert_eq!(s.reaps(), 1);
        assert_eq!(s.poison_rejects(), 1);
        let shown = s.to_string();
        assert!(shown.contains("timeouts=2"), "{shown}");
        assert!(shown.contains("poison_rejects=1"), "{shown}");
    }

    #[test]
    fn supervision_counters_accumulate() {
        let s = ObjectStats::new();
        s.on_restart();
        s.on_shed();
        s.on_shed();
        s.on_retry();
        s.on_retry();
        s.on_retry();
        s.on_overload_flip();
        assert_eq!(s.restarts(), 1);
        assert_eq!(s.sheds(), 2);
        assert_eq!(s.retries(), 3);
        assert_eq!(s.overload_flips(), 1);
        let shown = s.to_string();
        assert!(shown.contains("restarts=1"), "{shown}");
        assert!(shown.contains("sheds=2"), "{shown}");
        assert!(shown.contains("retries=3"), "{shown}");
        assert!(shown.contains("overload_flips=1"), "{shown}");
    }

    #[test]
    fn lane_counters_accumulate() {
        let s = ObjectStats::new();
        s.on_lane_push();
        s.on_lane_push();
        s.on_lane_promote();
        s.on_lane_demote();
        assert_eq!(s.lane_pushes(), 2);
        assert_eq!(s.lane_promotes(), 1);
        assert_eq!(s.lane_demotes(), 1);
        let shown = s.to_string();
        assert!(shown.contains("lane_pushes=2"), "{shown}");
        assert!(shown.contains("lane_promotes=1"), "{shown}");
        assert!(shown.contains("p999_latency=0"), "{shown}");
    }

    #[test]
    fn ewma_converges_toward_samples() {
        let s = ObjectStats::new();
        assert_eq!(s.ewma_service_ticks(), 0);
        for _ in 0..64 {
            s.on_service(800);
        }
        let up = s.ewma_service_ticks();
        assert!(up > 400, "ewma rose toward 800, got {up}");
        for _ in 0..64 {
            s.on_service(0);
        }
        assert!(s.ewma_service_ticks() < up, "ewma decays");
    }
}
