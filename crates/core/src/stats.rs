//! Per-object instrumentation.
//!
//! The benchmark harness (EXPERIMENTS.md) and property tests read these
//! counters and histograms; the hot paths only touch atomics.

use std::fmt;
use std::sync::Arc;

use alps_runtime::metrics::{Counter, Histogram};

/// Counters and latency histograms for one object. Cheap to clone (all
/// fields are shared).
#[derive(Clone, Debug, Default)]
pub struct ObjectStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    calls: Counter,
    accepts: Counter,
    starts: Counter,
    finishes: Counter,
    combines: Counter,
    implicit_starts: Counter,
    body_failures: Counter,
    attach_wait: Histogram,
    accept_wait: Histogram,
    service_time: Histogram,
    call_latency: Histogram,
}

impl ObjectStats {
    /// New zeroed stats.
    pub fn new() -> ObjectStats {
        ObjectStats::default()
    }

    /// Total entry calls received (external + local-through-protocol).
    pub fn calls(&self) -> u64 {
        self.inner.calls.get()
    }
    /// Calls accepted by the manager.
    pub fn accepts(&self) -> u64 {
        self.inner.accepts.get()
    }
    /// Entry executions started by the manager.
    pub fn starts(&self) -> u64 {
        self.inner.starts.get()
    }
    /// Calls finished by the manager.
    pub fn finishes(&self) -> u64 {
        self.inner.finishes.get()
    }
    /// Calls answered by combining (accepted then finished without a
    /// start, paper §2.7).
    pub fn combines(&self) -> u64 {
        self.inner.combines.get()
    }
    /// Executions started implicitly (entries not intercepted).
    pub fn implicit_starts(&self) -> u64 {
        self.inner.implicit_starts.get()
    }
    /// Entry bodies that failed (error return or panic).
    pub fn body_failures(&self) -> u64 {
        self.inner.body_failures.get()
    }
    /// Ticks from call arrival to attachment on a procedure-array slot.
    pub fn attach_wait(&self) -> &Histogram {
        &self.inner.attach_wait
    }
    /// Ticks from attachment to manager `accept`.
    pub fn accept_wait(&self) -> &Histogram {
        &self.inner.accept_wait
    }
    /// Ticks from `start` to readiness-to-terminate.
    pub fn service_time(&self) -> &Histogram {
        &self.inner.service_time
    }
    /// End-to-end ticks from call to reply.
    pub fn call_latency(&self) -> &Histogram {
        &self.inner.call_latency
    }

    pub(crate) fn on_call(&self) {
        self.inner.calls.incr();
    }
    pub(crate) fn on_accept(&self, waited: u64) {
        self.inner.accepts.incr();
        self.inner.accept_wait.record(waited);
    }
    pub(crate) fn on_attach(&self, waited: u64) {
        self.inner.attach_wait.record(waited);
    }
    pub(crate) fn on_start(&self) {
        self.inner.starts.incr();
    }
    pub(crate) fn on_finish(&self) {
        self.inner.finishes.incr();
    }
    pub(crate) fn on_combine(&self) {
        self.inner.combines.incr();
    }
    pub(crate) fn on_implicit_start(&self) {
        self.inner.implicit_starts.incr();
    }
    pub(crate) fn on_body_failure(&self) {
        self.inner.body_failures.incr();
    }
    pub(crate) fn on_service(&self, ticks: u64) {
        self.inner.service_time.record(ticks);
    }
    pub(crate) fn on_complete(&self, latency: u64) {
        self.inner.call_latency.record(latency);
    }
}

impl fmt::Display for ObjectStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} accepts={} starts={} finishes={} combines={} implicit={} failures={} \
             p50_latency={} p99_latency={}",
            self.calls(),
            self.accepts(),
            self.starts(),
            self.finishes(),
            self.combines(),
            self.implicit_starts(),
            self.body_failures(),
            self.call_latency().percentile(50.0),
            self.call_latency().percentile(99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let s = ObjectStats::new();
        assert_eq!(s.calls(), 0);
        s.on_call();
        s.on_accept(5);
        s.on_start();
        s.on_service(10);
        s.on_finish();
        s.on_complete(20);
        assert_eq!(s.calls(), 1);
        assert_eq!(s.accepts(), 1);
        assert_eq!(s.starts(), 1);
        assert_eq!(s.finishes(), 1);
        assert_eq!(s.service_time().count(), 1);
        assert_eq!(s.call_latency().count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let s = ObjectStats::new();
        let s2 = s.clone();
        s2.on_combine();
        assert_eq!(s.combines(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let s = ObjectStats::new();
        assert!(s.to_string().contains("calls=0"));
    }
}
