//! Error type for the object/manager layer.

use std::fmt;

use alps_runtime::RuntimeError;

use crate::value::Ty;

/// Errors produced while building, calling, or managing ALPS objects.
#[derive(Debug, Clone, PartialEq)]
pub enum AlpsError {
    /// The named entry does not exist in the object.
    UnknownEntry {
        /// Object name.
        object: String,
        /// Entry name the caller used.
        entry: String,
    },
    /// An external caller invoked a procedure declared `local`.
    LocalEntryCalled {
        /// Object name.
        object: String,
        /// Local procedure name.
        entry: String,
    },
    /// Wrong number of arguments or results.
    ArityMismatch {
        /// What was being invoked (entry name, channel name, …).
        what: String,
        /// Expected arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// A value did not match the declared type.
    TypeMismatch {
        /// What was being invoked.
        what: String,
        /// Position of the offending value.
        index: usize,
        /// Declared type.
        expected: Ty,
        /// Actual type.
        got: Ty,
    },
    /// The object has been shut down.
    ObjectClosed {
        /// Object name.
        object: String,
    },
    /// An object definition was inconsistent (duplicate entries, hidden
    /// parameters without interception, interception without a manager, …).
    BadDefinition {
        /// Human-readable explanation.
        reason: String,
    },
    /// Every guard of a `select` was closed — the CSP alternative command
    /// fails (paper §2.4: semantics "similar to those in CSP").
    SelectFailed,
    /// Request combining (`finish` on an accepted-but-unstarted call)
    /// requires the manager to have intercepted the full parameter list
    /// and to supply the full result list (paper §2.7).
    BadCombining {
        /// Human-readable explanation.
        reason: String,
    },
    /// An entry-procedure body failed (returned an error or panicked).
    BodyFailed {
        /// Entry name.
        entry: String,
        /// Failure description.
        message: String,
    },
    /// The manager violated the call protocol (e.g. dropped an
    /// [`AcceptedCall`](crate::AcceptedCall) without starting or finishing
    /// it).
    ProtocolViolation {
        /// Human-readable explanation.
        reason: String,
    },
    /// An [`EntryId`](crate::EntryId) minted by one object was used to
    /// call a different object.
    ForeignEntryId {
        /// Name of the object the id was used on.
        object: String,
    },
    /// A deadline-bounded wait expired before the protocol answered
    /// ([`ObjectHandle::call_deadline`](crate::ObjectHandle::call_deadline),
    /// [`ManagerCtx::accept_deadline`](crate::ManagerCtx::accept_deadline),
    /// [`ManagerCtx::await_deadline`](crate::ManagerCtx::await_deadline)).
    Timeout {
        /// What was being waited for (entry name or select description).
        what: String,
        /// The deadline budget in ticks.
        ticks: u64,
    },
    /// The manager cancelled the call
    /// ([`ManagerCtx::cancel`](crate::ManagerCtx::cancel)).
    Cancelled {
        /// Entry name.
        entry: String,
    },
    /// An entry body panicked in a poisoning object
    /// ([`ObjectBuilder::poison_on_panic`](crate::ObjectBuilder::poison_on_panic));
    /// the object's state may be corrupt, so new calls fail fast.
    ObjectPoisoned {
        /// Object name.
        object: String,
    },
    /// The object is restarting after an entry-body panic
    /// ([`ObjectBuilder::supervise`](crate::ObjectBuilder::supervise)):
    /// in-flight calls caught by the restart sweep are answered with this
    /// error instead of hanging on a generation that no longer exists.
    /// Transient by design — retry-worthy, see
    /// [`ObjectHandle::call_retry`](crate::ObjectHandle::call_retry).
    ObjectRestarting {
        /// Object name.
        object: String,
    },
    /// The object's intake is full and its
    /// [`AdmissionPolicy`](crate::AdmissionPolicy) sheds rather than
    /// blocks: the call was refused without being enqueued (or an older
    /// queued call was evicted to make room). Transient by design —
    /// retry-worthy, see
    /// [`ObjectHandle::call_retry`](crate::ObjectHandle::call_retry).
    Overloaded {
        /// Object name.
        object: String,
    },
    /// The network link carrying a remote call died (disconnect, frame
    /// corruption, or reconnect budget exhausted) before a reply was
    /// delivered. The call executed **at most once** — the remote server
    /// deduplicates redelivered call ids, so retrying through
    /// [`ObjectHandle::call_retry`](crate::ObjectHandle::call_retry)
    /// semantics is safe. Transient by design — retry-worthy.
    LinkLost {
        /// Remote endpoint description (address or object name).
        endpoint: String,
    },
    /// An underlying runtime error.
    Runtime(RuntimeError),
    /// Application-defined failure raised inside an entry body.
    Custom(String),
}

impl AlpsError {
    /// Whether this error is *transient*: the call was refused or timed
    /// out without a delivered answer, so re-issuing it cannot
    /// double-apply an entry body's effects. This is the single decision
    /// point the retry machinery uses
    /// ([`ObjectHandle::call_retry`](crate::ObjectHandle::call_retry) and
    /// the remote proxy's retry loop) — a new transient variant slots in
    /// here, not at every match site.
    ///
    /// * [`Overloaded`](AlpsError::Overloaded) — shed before enqueueing.
    /// * [`ObjectRestarting`](AlpsError::ObjectRestarting) — swept by a
    ///   supervised restart.
    /// * [`Timeout`](AlpsError::Timeout) — the wait expired; a started
    ///   body is cancelled cooperatively and its result tombstoned.
    /// * [`LinkLost`](AlpsError::LinkLost) — the transport died with the
    ///   call in flight; the remote side deduplicates redelivery.
    ///
    /// Everything *delivered* — results, [`BodyFailed`](AlpsError::BodyFailed),
    /// [`Cancelled`](AlpsError::Cancelled) — is non-retryable: the body
    /// may have run.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            AlpsError::Overloaded { .. }
                | AlpsError::ObjectRestarting { .. }
                | AlpsError::Timeout { .. }
                | AlpsError::LinkLost { .. }
        )
    }
}

impl fmt::Display for AlpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlpsError::UnknownEntry { object, entry } => {
                write!(f, "object `{object}` has no entry `{entry}`")
            }
            AlpsError::LocalEntryCalled { object, entry } => {
                write!(
                    f,
                    "`{object}.{entry}` is a local procedure, not callable from outside"
                )
            }
            AlpsError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} value(s), got {got}"),
            AlpsError::TypeMismatch {
                what,
                index,
                expected,
                got,
            } => write!(
                f,
                "{what}: value {index} has type {got}, expected {expected}"
            ),
            AlpsError::ObjectClosed { object } => write!(f, "object `{object}` is closed"),
            AlpsError::BadDefinition { reason } => write!(f, "bad object definition: {reason}"),
            AlpsError::SelectFailed => write!(f, "select failed: every guard is closed"),
            AlpsError::BadCombining { reason } => write!(f, "bad combining: {reason}"),
            AlpsError::BodyFailed { entry, message } => {
                write!(f, "entry `{entry}` failed: {message}")
            }
            AlpsError::ProtocolViolation { reason } => {
                write!(f, "manager protocol violation: {reason}")
            }
            AlpsError::ForeignEntryId { object } => {
                write!(f, "entry id does not belong to object `{object}`")
            }
            AlpsError::Timeout { what, ticks } => {
                write!(f, "`{what}` timed out after {ticks} ticks")
            }
            AlpsError::Cancelled { entry } => {
                write!(f, "call to `{entry}` was cancelled")
            }
            AlpsError::ObjectPoisoned { object } => {
                write!(f, "object `{object}` is poisoned (an entry body panicked)")
            }
            AlpsError::ObjectRestarting { object } => {
                write!(f, "object `{object}` is restarting after a body panic")
            }
            AlpsError::Overloaded { object } => {
                write!(
                    f,
                    "object `{object}` is overloaded (intake full, call shed)"
                )
            }
            AlpsError::LinkLost { endpoint } => {
                write!(f, "link to `{endpoint}` was lost with the call in flight")
            }
            AlpsError::Runtime(e) => write!(f, "runtime error: {e}"),
            AlpsError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AlpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlpsError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for AlpsError {
    fn from(e: RuntimeError) -> Self {
        AlpsError::Runtime(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AlpsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(AlpsError, &str)> = vec![
            (
                AlpsError::UnknownEntry {
                    object: "X".into(),
                    entry: "P".into(),
                },
                "object `X` has no entry `P`",
            ),
            (
                AlpsError::ObjectClosed { object: "X".into() },
                "object `X` is closed",
            ),
            (
                AlpsError::SelectFailed,
                "select failed: every guard is closed",
            ),
            (
                AlpsError::Timeout {
                    what: "P".into(),
                    ticks: 500,
                },
                "`P` timed out after 500 ticks",
            ),
            (
                AlpsError::Cancelled { entry: "P".into() },
                "call to `P` was cancelled",
            ),
            (
                AlpsError::ObjectPoisoned { object: "X".into() },
                "object `X` is poisoned (an entry body panicked)",
            ),
            (
                AlpsError::ObjectRestarting { object: "X".into() },
                "object `X` is restarting after a body panic",
            ),
            (
                AlpsError::Overloaded { object: "X".into() },
                "object `X` is overloaded (intake full, call shed)",
            ),
            (
                AlpsError::LinkLost {
                    endpoint: "127.0.0.1:9".into(),
                },
                "link to `127.0.0.1:9` was lost with the call in flight",
            ),
            (AlpsError::Custom("boom".into()), "boom"),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
    }

    #[test]
    fn retryable_is_exactly_the_transient_taxonomy() {
        let yes = [
            AlpsError::Overloaded { object: "X".into() },
            AlpsError::ObjectRestarting { object: "X".into() },
            AlpsError::Timeout {
                what: "P".into(),
                ticks: 1,
            },
            AlpsError::LinkLost {
                endpoint: "srv".into(),
            },
        ];
        for e in yes {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        let no = [
            AlpsError::ObjectPoisoned { object: "X".into() },
            AlpsError::ObjectClosed { object: "X".into() },
            AlpsError::BodyFailed {
                entry: "P".into(),
                message: "m".into(),
            },
            AlpsError::Cancelled { entry: "P".into() },
            AlpsError::SelectFailed,
            AlpsError::Custom("boom".into()),
        ];
        for e in no {
            assert!(!e.is_retryable(), "{e} should not be retryable");
        }
    }

    #[test]
    fn from_runtime_error_sets_source() {
        use std::error::Error;
        let e: AlpsError = RuntimeError::Shutdown.into();
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), "runtime error: runtime is shut down");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<AlpsError>();
    }
}
