//! Process pools executing entry-procedure bodies.
//!
//! Paper §3 discusses three implementation strategies for the processes
//! behind a hidden procedure array `P[1..N]`:
//!
//! 1. create a process per remote call ([`PoolMode::PerCall`] — "in many
//!    operating systems dynamic process creation is expensive");
//! 2. preallocate one process per array element, 1:1
//!    ([`PoolMode::PerSlot`]);
//! 3. preallocate a pool of `M ≪ N` processes and bind a process to a call
//!    when it is *started* rather than when it arrives
//!    ([`PoolMode::Shared`]), attractive "for resources in high demand
//!    where the average queue length is significant".
//!
//! The paper suggests a compiler switch chooses among these; here it is
//! [`crate::ObjectBuilder::pool`]. Experiment E7 sweeps the choice.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use alps_runtime::metrics::Counter;
use alps_runtime::{tuning, ProcId, Runtime, Spawn, SpinWait};
use parking_lot::Mutex;

use crate::object::ObjectInner;
use crate::value::ValVec;

/// How entry executions are mapped onto runtime processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Spawn a fresh process per started call.
    PerCall,
    /// One preallocated worker per procedure-array slot (1:1).
    #[default]
    PerSlot,
    /// A shared pool of `M` preallocated workers serving all slots.
    Shared(usize),
}

impl fmt::Display for PoolMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolMode::PerCall => write!(f, "per-call"),
            PoolMode::PerSlot => write!(f, "per-slot"),
            PoolMode::Shared(m) => write!(f, "shared({m})"),
        }
    }
}

/// Unit of work handed to a pool worker.
///
/// `Body` carries an entry execution without boxing a closure — the
/// fields it needs are plain data, so dispatching a started call does not
/// allocate. `Task` keeps the pool usable as a generic executor (tests,
/// ad-hoc jobs).
pub(crate) enum Job {
    /// Run `entry`'s body on `slot` with `params`.
    Body {
        obj: Weak<ObjectInner>,
        entry: usize,
        slot: usize,
        params: ValVec,
    },
    /// Run an arbitrary closure.
    #[cfg_attr(not(test), allow(dead_code))]
    Task(Box<dyn FnOnce() + Send>),
}

impl Job {
    fn run(self) {
        match self {
            Job::Body {
                obj,
                entry,
                slot,
                params,
            } => {
                // A dead upgrade means the object was dropped after
                // dispatch; its calls were already failed at shutdown.
                if let Some(o) = obj.upgrade() {
                    o.run_body(entry, slot, params);
                }
            }
            Job::Task(f) => f(),
        }
    }
}

#[derive(Default)]
struct SharedQ {
    q: Mutex<QState>,
    closed: AtomicBool,
}

#[derive(Default)]
struct QState {
    jobs: VecDeque<Job>,
    idle: Vec<ProcId>,
}

struct SlotBox {
    st: Mutex<SlotBoxSt>,
    closed: AtomicBool,
    /// Lock-free mirror of `st.job.is_some()`, letting an idle worker
    /// notice a freshly dispatched job during its spin phase without
    /// taking the mutex.
    has_job: AtomicBool,
}

#[derive(Default)]
struct SlotBoxSt {
    job: Option<Job>,
    waiter: Option<ProcId>,
}

pub(crate) struct Pool {
    rt: Runtime,
    name: String,
    mode: PoolMode,
    shared: Option<Arc<SharedQ>>,
    per_slot: Vec<Arc<SlotBox>>,
    spawned: Counter,
    executed: Counter,
    closed: AtomicBool,
    /// Soft worker-affinity hint applied to every worker this pool
    /// spawns, so an object's entry bodies prefer the same
    /// work-stealing worker as its manager
    /// ([`crate::ObjectBuilder::affinity_hint`]).
    affinity: Option<usize>,
}

impl Pool {
    /// Create the pool and eagerly spawn preallocated workers.
    /// `total_slots` is the sum of all procedure-array sizes of the object
    /// (used by [`PoolMode::PerSlot`]).
    pub(crate) fn new(
        rt: Runtime,
        name: String,
        mode: PoolMode,
        total_slots: usize,
        affinity: Option<usize>,
    ) -> Pool {
        let mut pool = Pool {
            rt,
            name,
            mode,
            shared: None,
            per_slot: Vec::new(),
            spawned: Counter::new(),
            executed: Counter::new(),
            closed: AtomicBool::new(false),
            affinity,
        };
        match mode {
            PoolMode::PerCall => {}
            PoolMode::PerSlot => {
                for key in 0..total_slots {
                    let sb = Arc::new(SlotBox {
                        st: Mutex::new(SlotBoxSt::default()),
                        closed: AtomicBool::new(false),
                        has_job: AtomicBool::new(false),
                    });
                    pool.per_slot.push(Arc::clone(&sb));
                    pool.spawn_slot_worker(key, sb);
                }
            }
            PoolMode::Shared(m) => {
                let q = Arc::new(SharedQ::default());
                pool.shared = Some(Arc::clone(&q));
                for i in 0..m.max(1) {
                    pool.spawn_shared_worker(i, Arc::clone(&q));
                }
            }
        }
        pool
    }

    /// Spawn options for a pool worker: daemon, plus the pool's affinity
    /// hint when one is configured.
    fn worker_opts(&self, name: String) -> Spawn {
        let mut opts = Spawn::new(name).daemon(true);
        if let Some(a) = self.affinity {
            opts = opts.affinity(a);
        }
        opts
    }

    fn spawn_slot_worker(&self, key: usize, sb: Arc<SlotBox>) {
        self.spawned.incr();
        let rt = self.rt.clone();
        let executed = self.executed.clone();
        let name = format!("{}:worker[{key}]", self.name);
        let spin_rounds = if self.rt.is_sim() {
            0
        } else {
            tuning::POOL_SLOT_SPIN_ROUNDS
        };
        self.rt.spawn_with(self.worker_opts(name), move || loop {
            // Brief spin for a job dispatched while the previous one
            // was winding down — skips a park/unpark round trip when
            // the manager restarts this slot back-to-back.
            let mut sw = SpinWait::new(spin_rounds);
            while sw.spin() {
                if sb.has_job.load(Ordering::SeqCst) {
                    break;
                }
            }
            let job = {
                let mut st = sb.st.lock();
                match st.job.take() {
                    Some(j) => {
                        sb.has_job.store(false, Ordering::SeqCst);
                        Some(j)
                    }
                    None => {
                        if sb.closed.load(Ordering::SeqCst) {
                            return;
                        }
                        st.waiter = Some(rt.current());
                        None
                    }
                }
            };
            match job {
                Some(j) => {
                    executed.incr();
                    j.run();
                }
                None => rt.park(),
            }
        });
    }

    fn spawn_shared_worker(&self, i: usize, q: Arc<SharedQ>) {
        self.spawned.incr();
        let rt = self.rt.clone();
        let executed = self.executed.clone();
        let name = format!("{}:pool[{i}]", self.name);
        self.rt.spawn_with(self.worker_opts(name), move || loop {
            let job = {
                let mut st = q.q.lock();
                match st.jobs.pop_front() {
                    Some(j) => Some(j),
                    None => {
                        if q.closed.load(Ordering::SeqCst) {
                            return;
                        }
                        let me = rt.current();
                        if !st.idle.contains(&me) {
                            st.idle.push(me);
                        }
                        None
                    }
                }
            };
            match job {
                Some(j) => {
                    executed.incr();
                    j.run();
                }
                None => rt.park(),
            }
        });
    }

    /// Hand a started call's execution to a worker. `slot_key` identifies
    /// the global slot (only [`PoolMode::PerSlot`] uses it).
    pub(crate) fn dispatch(&self, slot_key: usize, job: Job) {
        if self.closed.load(Ordering::SeqCst) {
            // Object already shut down; the call was completed with an
            // error by the object, drop the job.
            return;
        }
        match self.mode {
            PoolMode::PerCall => {
                self.spawned.incr();
                self.executed.incr();
                let name = format!("{}:call", self.name);
                self.rt
                    .spawn_with(self.worker_opts(name), move || job.run());
            }
            PoolMode::PerSlot => {
                let sb = &self.per_slot[slot_key];
                let waiter = {
                    let mut st = sb.st.lock();
                    debug_assert!(st.job.is_none(), "slot worker busy twice");
                    st.job = Some(job);
                    sb.has_job.store(true, Ordering::SeqCst);
                    st.waiter.take()
                };
                if let Some(w) = waiter {
                    self.rt.unpark(w);
                }
            }
            PoolMode::Shared(_) => {
                let q = self.shared.as_ref().expect("shared pool missing queue");
                let waiter = {
                    let mut st = q.q.lock();
                    st.jobs.push_back(job);
                    st.idle.pop()
                };
                if let Some(w) = waiter {
                    self.rt.unpark(w);
                }
            }
        }
    }

    /// Stop all workers; pending jobs are discarded.
    pub(crate) fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
        match self.mode {
            PoolMode::PerCall => {}
            PoolMode::PerSlot => {
                for sb in &self.per_slot {
                    sb.closed.store(true, Ordering::SeqCst);
                    let waiter = sb.st.lock().waiter.take();
                    if let Some(w) = waiter {
                        self.rt.unpark(w);
                    }
                }
            }
            PoolMode::Shared(_) => {
                if let Some(q) = &self.shared {
                    q.closed.store(true, Ordering::SeqCst);
                    let idle = std::mem::take(&mut q.q.lock().idle);
                    for w in idle {
                        self.rt.unpark(w);
                    }
                }
            }
        }
    }

    /// Number of runtime processes this pool has created (experiment E7's
    /// cost axis).
    pub(crate) fn procs_spawned(&self) -> u64 {
        self.spawned.get()
    }

    /// Number of jobs executed.
    pub(crate) fn jobs_executed(&self) -> u64 {
        self.executed.get()
    }

    /// The configured mode.
    pub(crate) fn mode(&self) -> PoolMode {
        self.mode
    }
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("spawned", &self.spawned.get())
            .field("executed", &self.executed.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::SimRuntime;
    use std::sync::atomic::AtomicUsize;

    fn run_jobs(mode: PoolMode, slots: usize, jobs: usize) -> (u64, u64) {
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let pool = Pool::new(rt.clone(), "t".into(), mode, slots, None);
            let done = Arc::new(AtomicUsize::new(0));
            // Dispatch in waves of `slots`, mirroring the object layer's
            // guarantee that a slot is restarted only after its previous
            // job completed.
            let mut issued = 0;
            while issued < jobs {
                let wave = slots.min(jobs - issued);
                for k in 0..wave {
                    let done = Arc::clone(&done);
                    pool.dispatch(
                        k,
                        Job::Task(Box::new(move || {
                            done.fetch_add(1, Ordering::SeqCst);
                        })),
                    );
                }
                issued += wave;
                while done.load(Ordering::SeqCst) < issued {
                    rt.yield_now();
                }
            }
            pool.shutdown();
            (pool.procs_spawned(), pool.jobs_executed())
        })
        .unwrap()
    }

    #[test]
    fn per_slot_runs_jobs_with_one_proc_per_slot() {
        let (spawned, executed) = run_jobs(PoolMode::PerSlot, 4, 8);
        assert_eq!(spawned, 4);
        assert_eq!(executed, 8);
    }

    #[test]
    fn shared_pool_bounds_processes() {
        let (spawned, executed) = run_jobs(PoolMode::Shared(2), 16, 10);
        assert_eq!(spawned, 2);
        assert_eq!(executed, 10);
    }

    #[test]
    fn per_call_spawns_per_job() {
        let (spawned, executed) = run_jobs(PoolMode::PerCall, 4, 5);
        assert_eq!(spawned, 5);
        assert_eq!(executed, 5);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PoolMode::PerCall.to_string(), "per-call");
        assert_eq!(PoolMode::PerSlot.to_string(), "per-slot");
        assert_eq!(PoolMode::Shared(3).to_string(), "shared(3)");
    }

    #[test]
    fn dispatch_after_shutdown_is_dropped() {
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let pool = Pool::new(rt.clone(), "t".into(), PoolMode::Shared(1), 1, None);
            pool.shutdown();
            pool.dispatch(0, Job::Task(Box::new(|| panic!("must not run"))));
            rt.yield_now();
        })
        .unwrap();
    }
}
