//! Sharded object groups — scale one logical object past the
//! single-manager ceiling.
//!
//! An ALPS object serializes all synchronization decisions through its
//! one high-priority manager (paper §2.3). That is the point — and the
//! bottleneck: a single hot object saturates at whatever one manager
//! loop can drain. A [`ShardedHandle`] spawns `S` *replica* objects
//! behind one handle and routes every call to a shard chosen by key
//! hash, so independent keys stop contending on one intake ring and one
//! manager. The paper's model is unchanged: each shard is an ordinary
//! object with its own manager; the group is pure client-side routing.
//!
//! Three call shapes are offered:
//!
//! * **Routed calls** — [`ShardedHandle::call`] (and the `_key`,
//!   `_deadline`, `_retry` variants) pick one shard by a stable hash of
//!   the arguments, or an explicit caller-supplied key, and delegate to
//!   the ordinary [`ObjectHandle`] protocol.
//! * **Scatter-gather** — [`ShardedHandle::call_all`] invokes an entry
//!   on *every* shard concurrently and gathers the per-shard results
//!   (e.g. "search all partitions of the dictionary").
//! * **Combined reads** — [`ShardedHandle::call_combined`] extends the
//!   paper's §2.7 request combining *across* the group boundary: while
//!   one caller (the leader) is executing a read with some argument
//!   tuple, concurrent callers with the *same* arguments park on a
//!   combining cell and receive a clone of the leader's reply instead
//!   of issuing a duplicate call. This dedupes work before it even
//!   reaches a shard's intake, complementing the per-manager combining
//!   a shard may also do internally.
//!
//! Routing uses Fibonacci hashing (multiply by 2⁶⁴/φ, take high bits)
//! so dense integer keys spread evenly; explicit keys let a caller pin
//! related calls to one shard for ordering.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_runtime::metrics::Counter;
use alps_runtime::{Notifier, Runtime};
use parking_lot::Mutex;

use crate::error::{AlpsError, Result};
use crate::object::{EntryId, ObjectBuilder, ObjectHandle};
use crate::stats::ObjectStats;
use crate::supervise::RetryPolicy;
use crate::value::{ValVec, Value};

/// Group uid source; distinguishes [`ShardEntryId`]s across groups the
/// same way object uids distinguish [`EntryId`]s across objects.
static NEXT_GROUP_UID: AtomicU64 = AtomicU64::new(1);

/// 2⁶⁴ / φ — the Fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Spread a routing key over the shard index space — the routing
/// function behind [`ShardedHandle::shard_for_key`]. The Fibonacci
/// multiply diffuses low-entropy keys (dense integers, short string
/// hashes) into the high bits, which are then reduced modulo the shard
/// count. Public so data can be *partitioned* with the same function
/// the handle *routes* with (each shard holds exactly the keys that
/// will be asked of it).
pub fn spread(key: u64, shards: usize) -> usize {
    (((key ^ (key >> 32)).wrapping_mul(FIB) >> 16) % shards as u64) as usize
}

/// FNV-1a over the canonical byte encoding of a value tuple: the stable
/// argument hash used when the caller does not supply an explicit
/// routing key ([`ShardedHandle::shard_for_args`] is
/// `spread(hash_values(args))`). Equal tuples hash equal across
/// processes and runs (no per-process seed), which the combining map
/// also relies on.
pub fn hash_values(vals: &[Value]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        hash_value(v, &mut h);
    }
    h
}

fn hash_value(v: &Value, h: &mut u64) {
    fn byte(h: &mut u64, b: u8) {
        *h = (*h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    fn bytes(h: &mut u64, bs: &[u8]) {
        for &b in bs {
            byte(h, b);
        }
    }
    match v {
        Value::Unit => byte(h, 0),
        Value::Bool(b) => {
            byte(h, 1);
            byte(h, u8::from(*b));
        }
        Value::Int(i) => {
            byte(h, 2);
            bytes(h, &i.to_le_bytes());
        }
        Value::Float(f) => {
            byte(h, 3);
            bytes(h, &f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            byte(h, 4);
            bytes(h, s.as_bytes());
        }
        // Channels route by identity-ish metadata (name), which is the
        // best stable property a first-class channel exposes.
        Value::Chan(c) => {
            byte(h, 5);
            bytes(h, c.name().as_bytes());
        }
        Value::List(xs) => {
            byte(h, 6);
            for x in xs {
                hash_value(x, h);
            }
            byte(h, 7);
        }
    }
}

/// An interned entry id for a sharded group: one copyable token that
/// stands for the same-named entry on *every* shard. Mint with
/// [`ShardedHandle::entry_id`]; reuse for every call (same contract as
/// [`EntryId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardEntryId {
    group: u64,
    slot: u32,
}

/// One caller's view of an in-flight combined read (see
/// [`ShardedHandle::call_combined`]). The leader publishes exactly once
/// and notifies; followers park on the notifier until the result lands.
struct CombineCell {
    result: Mutex<Option<Result<ValVec>>>,
    notifier: Notifier,
}

impl CombineCell {
    fn new() -> CombineCell {
        CombineCell {
            result: Mutex::new(None),
            notifier: Notifier::new(),
        }
    }
}

struct ShardedInner {
    name: String,
    uid: u64,
    rt: Runtime,
    shards: Vec<ObjectHandle>,
    /// slot → per-shard interned ids (index = shard index). Append-only;
    /// readers hold the lock just long enough to clone the slot's `Arc`.
    tables: Mutex<Vec<Arc<[EntryId]>>>,
    /// entry name → slot in `tables`.
    slots: Mutex<HashMap<String, u32>>,
    /// (entry slot, argument hash) → in-flight combined read.
    combine: Mutex<HashMap<(u32, u64), Arc<CombineCell>>>,
    combined_leads: Counter,
    combined_follows: Counter,
}

impl ShardedInner {
    fn table(&self, id: ShardEntryId) -> Result<Arc<[EntryId]>> {
        if id.group != self.uid {
            return Err(AlpsError::ForeignEntryId {
                object: self.name.clone(),
            });
        }
        Ok(Arc::clone(&self.tables.lock()[id.slot as usize]))
    }
}

/// Ensures a combining leader always clears its map slot and answers
/// its followers, even if the underlying call unwinds (e.g. the
/// runtime aborts the leader's process at shutdown). Without this,
/// followers of a dead leader would wait forever and later callers
/// would keep joining a cell nobody will complete.
struct LeaderGuard<'a> {
    inner: &'a ShardedInner,
    key: (u32, u64),
    cell: Arc<CombineCell>,
    published: bool,
}

impl LeaderGuard<'_> {
    /// Retire the cell and hand `res` to every follower. Removing the
    /// map entry *before* publishing means a caller arriving after this
    /// point elects a fresh leader instead of reading a stale reply.
    fn publish(&mut self, res: Result<ValVec>) {
        self.inner.combine.lock().remove(&self.key);
        *self.cell.result.lock() = Some(res);
        self.cell.notifier.notify(&self.inner.rt);
        self.published = true;
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish(Err(AlpsError::ObjectClosed {
                object: self.inner.name.clone(),
            }));
        }
    }
}

/// Builder for a sharded object group: `S` replica objects spawned
/// from a per-shard factory, served behind one [`ShardedHandle`].
///
/// ```no_run
/// # use alps_core::{ShardedBuilder, ObjectBuilder, EntryDef, Ty, Value, vals};
/// # use alps_runtime::Runtime;
/// # let rt = Runtime::threaded();
/// let group = ShardedBuilder::new("KV", 4)
///     .spawn(&rt, |shard| {
///         ObjectBuilder::new(format!("KV#{shard}")).entry(
///             EntryDef::new("Get")
///                 .params([Ty::Int])
///                 .results([Ty::Int])
///                 .body(|_, args| Ok(vec![args[0].clone()])),
///         )
///     })
///     .unwrap();
/// group.call("Get", vals![7i64]).unwrap();
/// ```
#[derive(Debug)]
pub struct ShardedBuilder {
    name: String,
    shards: usize,
    spread_affinity: bool,
}

impl ShardedBuilder {
    /// A group named `name` with `shards` replicas (clamped to ≥ 1).
    pub fn new(name: impl Into<String>, shards: usize) -> ShardedBuilder {
        ShardedBuilder {
            name: name.into(),
            shards: shards.max(1),
            spread_affinity: true,
        }
    }

    /// Whether each shard gets a soft worker-affinity hint of its own
    /// index (on by default). Disable to reproduce the unhinted
    /// placement — every task through the work-stealing injector — e.g.
    /// for A/B latency measurements.
    pub fn spread_affinity(mut self, enabled: bool) -> ShardedBuilder {
        self.spread_affinity = enabled;
        self
    }

    /// Spawn the replicas. `factory(i)` builds shard `i`'s
    /// [`ObjectBuilder`] — each shard may carry its own partition of
    /// the data, but all shards must export the same entry names for
    /// group-wide interning to succeed.
    ///
    /// # Errors
    ///
    /// Propagates the first shard spawn failure; already-spawned shards
    /// are shut down again so no orphan managers leak.
    pub fn spawn(
        self,
        rt: &Runtime,
        mut factory: impl FnMut(usize) -> ObjectBuilder,
    ) -> Result<ShardedHandle> {
        let mut shards = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            // Each shard prefers a distinct work-stealing worker, so a
            // shard's manager and entry bodies share one worker's LIFO
            // deque (and cache) instead of bouncing through the global
            // injector. Soft: tasks stay stealable under imbalance, and
            // a factory that set its own hint keeps it.
            let b = factory(i);
            let b = if self.spread_affinity {
                b.default_affinity_hint(i)
            } else {
                b
            };
            match b.spawn(rt) {
                Ok(h) => shards.push(h),
                Err(e) => {
                    for h in &shards {
                        h.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ShardedHandle {
            inner: Arc::new(ShardedInner {
                name: self.name,
                uid: NEXT_GROUP_UID.fetch_add(1, Ordering::Relaxed),
                rt: rt.clone(),
                shards,
                tables: Mutex::new(Vec::new()),
                slots: Mutex::new(HashMap::new()),
                combine: Mutex::new(HashMap::new()),
                combined_leads: Counter::new(),
                combined_follows: Counter::new(),
            }),
        })
    }
}

/// Handle to a sharded object group. Cheap to clone; all clones share
/// the same shards, interning tables, and combining map.
#[derive(Clone)]
pub struct ShardedHandle {
    inner: Arc<ShardedInner>,
}

impl std::fmt::Debug for ShardedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("name", &self.inner.name)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl ShardedHandle {
    /// The group's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of shards in the group.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Direct handle to shard `i` (panics if out of range).
    pub fn shard(&self, i: usize) -> &ObjectHandle {
        &self.inner.shards[i]
    }

    /// All shard handles, in shard order.
    pub fn shards(&self) -> &[ObjectHandle] {
        &self.inner.shards
    }

    /// Which shard an explicit routing key lands on.
    pub fn shard_for_key(&self, key: u64) -> usize {
        spread(key, self.inner.shards.len())
    }

    /// Which shard an argument tuple routes to (the stable hash used by
    /// [`call`](Self::call) when no explicit key is given).
    pub fn shard_for_args(&self, args: &[Value]) -> usize {
        self.shard_for_key(hash_values(args))
    }

    /// Intern an entry name group-wide: resolves it on every shard and
    /// returns one copyable [`ShardEntryId`]. Resolve once after
    /// [`ShardedBuilder::spawn`], reuse for every call.
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] if any shard lacks the entry.
    pub fn entry_id(&self, entry: &str) -> Result<ShardEntryId> {
        let inner = &self.inner;
        if let Some(&slot) = inner.slots.lock().get(entry) {
            return Ok(ShardEntryId {
                group: inner.uid,
                slot,
            });
        }
        // Resolve outside the slots lock (entry_id takes per-shard
        // locks); a racing duplicate insert is harmless — both callers
        // intern identical tables and the loser's slot simply wins.
        let ids: Arc<[EntryId]> = inner
            .shards
            .iter()
            .map(|s| s.entry_id(entry))
            .collect::<Result<Vec<_>>>()?
            .into();
        let mut slots = inner.slots.lock();
        if let Some(&slot) = slots.get(entry) {
            return Ok(ShardEntryId {
                group: inner.uid,
                slot,
            });
        }
        let mut tables = inner.tables.lock();
        let slot = tables.len() as u32;
        tables.push(ids);
        drop(tables);
        slots.insert(entry.to_string(), slot);
        Ok(ShardEntryId {
            group: inner.uid,
            slot,
        })
    }

    /// Call an entry, routing by the stable hash of `args` (equal
    /// argument tuples always hit the same shard).
    ///
    /// # Errors
    ///
    /// As [`ObjectHandle::call`] on the routed shard.
    pub fn call(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id(id, args).map(Vec::from)
    }

    /// Call an entry on the shard chosen by an explicit routing key —
    /// use when related calls must serialize through one manager
    /// regardless of their arguments.
    ///
    /// # Errors
    ///
    /// As [`ObjectHandle::call`] on the routed shard.
    pub fn call_key(&self, key: u64, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id_key(id, key, args).map(Vec::from)
    }

    /// Fast path: routed call through an interned [`ShardEntryId`],
    /// routing by argument hash.
    ///
    /// # Errors
    ///
    /// As [`ObjectHandle::call_id`], plus [`AlpsError::ForeignEntryId`]
    /// if the id belongs to a different group.
    pub fn call_id(&self, id: ShardEntryId, args: impl Into<ValVec>) -> Result<ValVec> {
        let args: ValVec = args.into();
        let key = hash_values(&args);
        self.call_id_key(id, key, args)
    }

    /// Fast path: routed call through an interned id and explicit key.
    ///
    /// # Errors
    ///
    /// As [`call_id`](Self::call_id).
    pub fn call_id_key(
        &self,
        id: ShardEntryId,
        key: u64,
        args: impl Into<ValVec>,
    ) -> Result<ValVec> {
        let table = self.inner.table(id)?;
        let shard = spread(key, table.len());
        self.inner.shards[shard].call_id(table[shard], args)
    }

    /// Deadline-bounded routed call (argument-hash routing); see
    /// [`ObjectHandle::call_deadline`] for the timeout semantics.
    ///
    /// # Errors
    ///
    /// As [`ObjectHandle::call_deadline`] on the routed shard.
    pub fn call_deadline(&self, entry: &str, args: Vec<Value>, ticks: u64) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        let args: ValVec = args.into();
        let key = hash_values(&args);
        let table = self.inner.table(id)?;
        let shard = spread(key, table.len());
        self.inner.shards[shard]
            .call_id_deadline(table[shard], args, ticks)
            .map(Vec::from)
    }

    /// Deadline-bounded routed call with an explicit key.
    ///
    /// # Errors
    ///
    /// As [`call_deadline`](Self::call_deadline).
    pub fn call_key_deadline(
        &self,
        key: u64,
        entry: &str,
        args: Vec<Value>,
        ticks: u64,
    ) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        let table = self.inner.table(id)?;
        let shard = spread(key, table.len());
        self.inner.shards[shard]
            .call_id_deadline(table[shard], args, ticks)
            .map(Vec::from)
    }

    /// Retrying routed call (argument-hash routing); see
    /// [`ObjectHandle::call_retry`] for what is and is not retried.
    ///
    /// # Errors
    ///
    /// As [`ObjectHandle::call_retry`] on the routed shard.
    pub fn call_retry(
        &self,
        entry: &str,
        args: Vec<Value>,
        policy: RetryPolicy,
    ) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        let args: ValVec = args.into();
        let key = hash_values(&args);
        let table = self.inner.table(id)?;
        let shard = spread(key, table.len());
        self.inner.shards[shard]
            .call_id_retry(table[shard], args, policy)
            .map(Vec::from)
    }

    /// Retrying routed call with an explicit key.
    ///
    /// # Errors
    ///
    /// As [`call_retry`](Self::call_retry).
    pub fn call_key_retry(
        &self,
        key: u64,
        entry: &str,
        args: Vec<Value>,
        policy: RetryPolicy,
    ) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        let table = self.inner.table(id)?;
        let shard = spread(key, table.len());
        self.inner.shards[shard]
            .call_id_retry(table[shard], args, policy)
            .map(Vec::from)
    }

    /// Scatter-gather: invoke `entry(args)` on **every** shard
    /// concurrently and return the per-shard results in shard order.
    /// Use for queries the routing key cannot localize ("search every
    /// partition").
    ///
    /// The scatter runs each shard's call on its own runtime process;
    /// on the pooled executor those are green tasks, so a wide group
    /// does not cost a thread per shard.
    ///
    /// # Errors
    ///
    /// The first shard error, by shard order, if any shard fails.
    pub fn call_all(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Vec<Value>>> {
        let id = self.entry_id(entry)?;
        let table = self.inner.table(id)?;
        let args: ValVec = ValVec::from(args);
        let handles: Vec<_> = self
            .inner
            .shards
            .iter()
            .zip(table.iter())
            .skip(1)
            .map(|(shard, &eid)| {
                let (shard, args) = (shard.clone(), args.clone());
                self.inner.rt.spawn(move || shard.call_id(eid, args))
            })
            .collect();
        // Shard 0 runs on the calling process — scattering N-1 ways.
        let first = self.inner.shards[0].call_id(table[0], args);
        let mut out = Vec::with_capacity(self.inner.shards.len());
        let mut results = vec![first];
        for h in handles {
            results.push(h.join().map_err(|_| AlpsError::ObjectClosed {
                object: self.inner.name.clone(),
            })?);
        }
        for r in results {
            out.push(Vec::from(r?));
        }
        Ok(out)
    }

    /// Combined read: route like [`call`](Self::call), but if another
    /// caller is *already executing* this entry with an equal argument
    /// tuple, park and share its reply instead of issuing a duplicate
    /// call. Extends the paper's §2.7 request combining across the
    /// shard boundary — duplicates are deduplicated before they reach
    /// any shard's intake, so the shared body runs once per burst.
    ///
    /// Only use for **read-only** entries: followers observe the
    /// leader's reply without the body running on their behalf.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call); followers see a clone of the leader's
    /// error (reported as [`AlpsError::ObjectClosed`] if the leader's
    /// process unwound without completing).
    pub fn call_combined(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id_combined(id, args).map(Vec::from)
    }

    /// [`call_combined`](Self::call_combined) through an interned
    /// [`ShardEntryId`].
    ///
    /// # Errors
    ///
    /// As [`call_combined`](Self::call_combined), plus
    /// [`AlpsError::ForeignEntryId`].
    pub fn call_id_combined(&self, id: ShardEntryId, args: impl Into<ValVec>) -> Result<ValVec> {
        let inner = &self.inner;
        let table = inner.table(id)?;
        let args: ValVec = args.into();
        let key = hash_values(&args);
        let follow = {
            let mut map = inner.combine.lock();
            match map.entry((id.slot, key)) {
                Entry::Occupied(e) => Some(Arc::clone(e.get())),
                Entry::Vacant(v) => {
                    v.insert(Arc::new(CombineCell::new()));
                    None
                }
            }
        };
        if let Some(cell) = follow {
            // Follower: park until the leader publishes. Epoch is read
            // *before* the result check, so a notify landing in between
            // makes the wait return immediately (no lost wakeup).
            inner.combined_follows.incr();
            loop {
                let seen = cell.notifier.epoch();
                if let Some(r) = cell.result.lock().clone() {
                    return r;
                }
                cell.notifier.wait_past(&inner.rt, seen);
            }
        }
        // Leader: execute the routed call and fan the reply out. The
        // guard publishes an error if the call unwinds (process abort)
        // so followers never wait on a dead leader.
        inner.combined_leads.incr();
        let mut guard = LeaderGuard {
            inner,
            key: (id.slot, key),
            cell: Arc::clone(
                inner
                    .combine
                    .lock()
                    .get(&(id.slot, key))
                    .expect("combining cell present until its leader publishes"),
            ),
            published: false,
        };
        let shard = spread(key, table.len());
        let res = inner.shards[shard].call_id(table[shard], args);
        guard.publish(res.clone());
        res
    }

    /// Aggregated counters summed over every shard, plus the group's
    /// own combining counters.
    pub fn stats(&self) -> ShardedStats {
        let mut s = ShardedStats {
            shards: self.inner.shards.len(),
            combined_leads: self.inner.combined_leads.get(),
            combined_follows: self.inner.combined_follows.get(),
            ..ShardedStats::default()
        };
        for o in &self.inner.shards {
            s.absorb_object(&o.stats());
        }
        s
    }

    /// The individual [`ObjectStats`] of shard `i`.
    pub fn shard_stats(&self, i: usize) -> ObjectStats {
        self.inner.shards[i].stats()
    }

    /// Shut down every shard; in-flight and future calls fail with
    /// [`AlpsError::ObjectClosed`].
    pub fn shutdown(&self) {
        for s in &self.inner.shards {
            s.shutdown();
        }
    }

    /// Whether every shard has been shut down.
    pub fn is_closed(&self) -> bool {
        self.inner.shards.iter().all(ObjectHandle::is_closed)
    }
}

/// Point-in-time counter snapshot summed across a group's shards
/// ([`ShardedHandle::stats`]). Shard-level histograms are available per
/// shard via [`ShardedHandle::shard_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Number of shards in the group.
    pub shards: usize,
    /// Total entry calls received, summed over shards.
    pub calls: u64,
    /// Calls accepted by shard managers.
    pub accepts: u64,
    /// Entry executions started.
    pub starts: u64,
    /// Calls finished.
    pub finishes: u64,
    /// Calls answered by *per-manager* combining (paper §2.7) inside a
    /// shard.
    pub combines: u64,
    /// Entry bodies that failed.
    pub body_failures: u64,
    /// Calls that timed out.
    pub timeouts: u64,
    /// Supervised restarts across shards.
    pub restarts: u64,
    /// `call_retry` re-attempts across shards.
    pub retries: u64,
    /// Calls shed by admission control.
    pub sheds: u64,
    /// Combined reads that executed as leader (one routed call each).
    pub combined_leads: u64,
    /// Combined reads answered from a leader's reply — duplicate work
    /// the group never issued.
    pub combined_follows: u64,
}

impl ShardedStats {
    /// Fold one shard's [`ObjectStats`] snapshot into this summary. Every
    /// addition **saturates**: when summaries are folded across processes
    /// (one per remote connection, each potentially long-lived), a wrapped
    /// counter would silently read as near-zero — a pinned `u64::MAX`
    /// reads as what it is, an overflowed tally.
    pub fn absorb_object(&mut self, st: &ObjectStats) {
        self.calls = self.calls.saturating_add(st.calls());
        self.accepts = self.accepts.saturating_add(st.accepts());
        self.starts = self.starts.saturating_add(st.starts());
        self.finishes = self.finishes.saturating_add(st.finishes());
        self.combines = self.combines.saturating_add(st.combines());
        self.body_failures = self.body_failures.saturating_add(st.body_failures());
        self.timeouts = self.timeouts.saturating_add(st.timeouts());
        self.restarts = self.restarts.saturating_add(st.restarts());
        self.retries = self.retries.saturating_add(st.retries());
        self.sheds = self.sheds.saturating_add(st.sheds());
    }

    /// Fold another group summary into this one (e.g. a multi-process
    /// coordinator merging the per-process [`ShardedHandle::stats`]
    /// snapshots it collected over its connections). Shard counts add;
    /// every counter saturates — see [`absorb_object`](Self::absorb_object)
    /// for why wrapping is the wrong failure mode here.
    pub fn absorb(&mut self, other: &ShardedStats) {
        self.shards += other.shards;
        self.calls = self.calls.saturating_add(other.calls);
        self.accepts = self.accepts.saturating_add(other.accepts);
        self.starts = self.starts.saturating_add(other.starts);
        self.finishes = self.finishes.saturating_add(other.finishes);
        self.combines = self.combines.saturating_add(other.combines);
        self.body_failures = self.body_failures.saturating_add(other.body_failures);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.restarts = self.restarts.saturating_add(other.restarts);
        self.retries = self.retries.saturating_add(other.retries);
        self.sheds = self.sheds.saturating_add(other.sheds);
        self.combined_leads = self.combined_leads.saturating_add(other.combined_leads);
        self.combined_follows = self.combined_follows.saturating_add(other.combined_follows);
    }
}

impl std::fmt::Display for ShardedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shards={} calls={} accepts={} starts={} finishes={} combines={} failures={} \
             timeouts={} restarts={} retries={} sheds={} combined_leads={} combined_follows={}",
            self.shards,
            self.calls,
            self.accepts,
            self.starts,
            self.finishes,
            self.combines,
            self.body_failures,
            self.timeouts,
            self.restarts,
            self.retries,
            self.sheds,
            self.combined_leads,
            self.combined_follows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryDef;
    use crate::vals;
    use crate::value::Ty;

    /// Echoes its argument plus the shard index that served it.
    fn echo_builder(shard: usize) -> ObjectBuilder {
        ObjectBuilder::new(format!("Echo#{shard}")).entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int, Ty::Int])
                .body(move |_ctx, args| Ok(vec![args[0].clone(), Value::Int(shard as i64)])),
        )
    }

    #[test]
    fn spread_covers_all_shards_for_dense_keys() {
        for shards in [1usize, 2, 3, 4, 7, 8] {
            let mut hit = vec![0u32; shards];
            for k in 0..1024u64 {
                hit[spread(k, shards)] += 1;
            }
            for (i, &n) in hit.iter().enumerate() {
                assert!(n > 0, "shard {i}/{shards} never hit");
            }
        }
    }

    #[test]
    fn equal_tuples_hash_equal_and_unequal_differ() {
        let a = vals![1i64, "x"];
        let b = vals![1i64, "x"];
        let c = vals![2i64, "x"];
        assert_eq!(hash_values(&a), hash_values(&b));
        assert_ne!(hash_values(&a), hash_values(&c));
        // List nesting is delimited: [1],[2] vs [1,2],[] must differ.
        let d = vec![
            Value::List(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(2)]),
        ];
        let e = vec![
            Value::List(vec![Value::Int(1), Value::Int(2)]),
            Value::List(vec![]),
        ];
        assert_ne!(hash_values(&d), hash_values(&e));
    }

    #[test]
    fn routed_calls_land_on_the_predicted_shard() {
        let rt = Runtime::threaded();
        let group = ShardedBuilder::new("Echo", 4)
            .spawn(&rt, echo_builder)
            .unwrap();
        for i in 0..32i64 {
            let args = vals![i];
            let want = group.shard_for_args(&args) as i64;
            let r = group.call("Echo", args).unwrap();
            assert_eq!(r[0], Value::Int(i));
            assert_eq!(r[1], Value::Int(want), "call {i} routed to wrong shard");
        }
        // Every shard's counters roll up into the aggregate.
        let agg = group.stats();
        assert_eq!(agg.shards, 4);
        assert_eq!(agg.calls, 32);
        assert_eq!(
            (0..4).map(|i| group.shard_stats(i).calls()).sum::<u64>(),
            32
        );
        group.shutdown();
        assert!(group.is_closed());
        rt.shutdown();
    }

    #[test]
    fn explicit_keys_pin_calls_to_one_shard() {
        let rt = Runtime::threaded();
        let group = ShardedBuilder::new("Echo", 4)
            .spawn(&rt, echo_builder)
            .unwrap();
        let pin = group.shard_for_key(99) as i64;
        for i in 0..16i64 {
            let r = group.call_key(99, "Echo", vals![i]).unwrap();
            assert_eq!(r[1], Value::Int(pin));
        }
        assert_eq!(
            group.shard_stats(group.shard_for_key(99)).calls(),
            16,
            "all pinned calls on one shard"
        );
        group.shutdown();
        rt.shutdown();
    }

    #[test]
    fn foreign_ids_are_rejected() {
        let rt = Runtime::threaded();
        let g1 = ShardedBuilder::new("A", 2)
            .spawn(&rt, echo_builder)
            .unwrap();
        let g2 = ShardedBuilder::new("B", 2)
            .spawn(&rt, echo_builder)
            .unwrap();
        let id = g1.entry_id("Echo").unwrap();
        assert!(matches!(
            g2.call_id(id, vals![1i64]),
            Err(AlpsError::ForeignEntryId { .. })
        ));
        g1.shutdown();
        g2.shutdown();
        rt.shutdown();
    }

    #[test]
    fn scatter_gather_hits_every_shard() {
        let rt = Runtime::threaded();
        let group = ShardedBuilder::new("Echo", 4)
            .spawn(&rt, echo_builder)
            .unwrap();
        let rs = group.call_all("Echo", vals![5i64]).unwrap();
        assert_eq!(rs.len(), 4);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r[0], Value::Int(5));
            assert_eq!(r[1], Value::Int(i as i64), "result order is shard order");
        }
        group.shutdown();
        rt.shutdown();
    }

    #[test]
    fn combined_duplicates_execute_once_per_burst() {
        use std::sync::atomic::AtomicU64;
        let rt = Runtime::threaded();
        let gate = Arc::new(AtomicU64::new(0));
        let execs = Arc::new(AtomicU64::new(0));
        let (g2, e2) = (Arc::clone(&gate), Arc::clone(&execs));
        let group = ShardedBuilder::new("Slow", 2)
            .spawn(&rt, move |shard| {
                let (g, e) = (Arc::clone(&g2), Arc::clone(&e2));
                ObjectBuilder::new(format!("Slow#{shard}")).entry(
                    EntryDef::new("Read")
                        .params([Ty::Int])
                        .results([Ty::Int])
                        .body(move |_ctx, args| {
                            e.fetch_add(1, Ordering::SeqCst);
                            // Hold the body open until the followers have
                            // piled onto the combining cell.
                            while g.load(Ordering::SeqCst) == 0 {
                                std::thread::yield_now();
                            }
                            Ok(vec![args[0].clone()])
                        }),
                )
            })
            .unwrap();
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let group = group.clone();
                rt.spawn(move || group.call_combined("Read", vals![42i64]).unwrap())
            })
            .collect();
        // Wait for the burst to assemble: one leader executing, the
        // other seven parked as followers.
        while group.stats().combined_follows < 7 {
            std::thread::yield_now();
        }
        gate.store(1, Ordering::SeqCst);
        for h in hs {
            assert_eq!(h.join().unwrap()[0], Value::Int(42));
        }
        assert_eq!(execs.load(Ordering::SeqCst), 1, "body ran once for 8 calls");
        let s = group.stats();
        assert_eq!(s.combined_leads, 1);
        assert_eq!(s.combined_follows, 7);
        // The burst retired its cell: the next call elects a new leader
        // and re-executes (no stale replies).
        gate.store(1, Ordering::SeqCst);
        assert_eq!(
            group.call_combined("Read", vals![42i64]).unwrap()[0],
            Value::Int(42)
        );
        assert_eq!(execs.load(Ordering::SeqCst), 2);
        group.shutdown();
        rt.shutdown();
    }

    #[test]
    fn combined_distinct_arguments_do_not_combine() {
        let rt = Runtime::threaded();
        let group = ShardedBuilder::new("Echo", 2)
            .spawn(&rt, echo_builder)
            .unwrap();
        for i in 0..4i64 {
            group.call_combined("Echo", vals![i]).unwrap();
        }
        let s = group.stats();
        assert_eq!(s.combined_leads, 4);
        assert_eq!(s.combined_follows, 0);
        group.shutdown();
        rt.shutdown();
    }

    #[test]
    fn spawn_failure_shuts_down_earlier_shards() {
        let rt = Runtime::threaded();
        let err = ShardedBuilder::new("Bad", 3).spawn(&rt, |shard| {
            if shard < 2 {
                echo_builder(shard)
            } else {
                // Duplicate entry name is a definition error at spawn.
                ObjectBuilder::new("Bad#2")
                    .entry(EntryDef::new("E").body(|_, _| Ok(vec![])))
                    .entry(EntryDef::new("E").body(|_, _| Ok(vec![])))
            }
        });
        assert!(err.is_err());
        rt.shutdown();
    }

    #[test]
    fn sharded_stats_display_is_nonempty() {
        let s = ShardedStats {
            shards: 2,
            calls: 5,
            ..ShardedStats::default()
        };
        let shown = s.to_string();
        assert!(shown.contains("shards=2"), "{shown}");
        assert!(shown.contains("calls=5"), "{shown}");
    }

    #[test]
    fn sharded_stats_absorb_saturates_instead_of_wrapping() {
        let mut a = ShardedStats {
            shards: 4,
            calls: u64::MAX - 3,
            retries: 7,
            ..ShardedStats::default()
        };
        let b = ShardedStats {
            shards: 4,
            calls: 10,
            retries: 1,
            combined_leads: u64::MAX,
            combined_follows: 2,
            ..ShardedStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.shards, 8);
        assert_eq!(a.calls, u64::MAX, "near-MAX fold pins, never wraps");
        assert_eq!(a.retries, 8);
        assert_eq!(a.combined_leads, u64::MAX);
        assert_eq!(a.combined_follows, 2);
    }
}
